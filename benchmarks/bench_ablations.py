"""Ablation benchmarks for the design choices called out in DESIGN.md.

1. **Lemma 1 pruning** — building the OPQ with and without the domination
   pruning rule must produce the same Pareto frontier, but the pruned
   enumeration visits far fewer nodes.
2. **Power-of-two partitioning (OPQ-Extended)** — compare against the naive
   alternative of treating every heterogeneous task at the maximum threshold
   (a single OPQ), quantifying how much the partition saves.
3. **Baseline column budget** — the CIP baseline's cost/time trade-off as the
   number of sampled columns per task grows.
4. **Reliability requirement premium** — compare the full SLADE optimum proxy
   (OPQ-Based) against the rod-cutting lower bound that ignores redundancy,
   quantifying what the reliability constraint actually costs.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, report
from repro.algorithms.baseline import CIPBaselineSolver
from repro.algorithms.dp_relaxed import RelaxedDPSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver, build_optimal_priority_queue
from repro.algorithms.opq_extended import OPQExtendedSolver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds


class TestLemma1Pruning:
    @pytest.mark.parametrize("use_pruning", (True, False), ids=("pruned", "unpruned"))
    def test_enumeration_cost(self, benchmark, use_pruning):
        bins = smic_bin_set(20)  # low confidences -> deep enumeration
        queue = benchmark.pedantic(
            build_optimal_priority_queue,
            args=(bins, 0.95),
            kwargs={"use_pruning": use_pruning},
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["nodes"] = queue.stats["nodes"]
        benchmark.extra_info["queue_size"] = len(queue)

    def test_pruning_preserves_the_frontier_and_cuts_nodes(self, benchmark):
        bins = smic_bin_set(14)
        pruned = benchmark.pedantic(
            build_optimal_priority_queue, args=(bins, 0.95),
            kwargs={"use_pruning": True}, rounds=1, iterations=1,
        )
        unpruned = build_optimal_priority_queue(bins, 0.95, use_pruning=False)
        assert [c.counts for c in pruned] == [c.counts for c in unpruned]
        assert pruned.stats["nodes"] < unpruned.stats["nodes"]
        report(
            "Ablation — Lemma 1 pruning (SMIC menu, |B|=14, t=0.95)",
            f"  nodes visited with pruning    : {pruned.stats['nodes']}\n"
            f"  nodes visited without pruning : {unpruned.stats['nodes']}\n"
            f"  frontier size (identical)     : {len(pruned)}",
        )


class TestPartitioningAblation:
    def test_partition_versus_single_opq_at_tmax(self, benchmark):
        config = bench_config("jelly")
        thresholds = normal_thresholds(
            config.n, mu=0.9, sigma=0.05, seed=config.seed, clip=(0.6, 0.99)
        )
        bins = jelly_bin_set(20)
        problem = SladeProblem.heterogeneous(thresholds, bins, name="ablation-partition")

        partitioned = benchmark.pedantic(
            OPQExtendedSolver().solve, args=(problem,), rounds=1, iterations=1
        )
        # Naive alternative: treat every task at the maximum threshold.
        flat_problem = SladeProblem.homogeneous(config.n, max(thresholds), bins)
        flat = OPQSolver().solve(flat_problem)

        report(
            "Ablation — threshold partitioning (Jelly, Normal(0.9, 0.05))",
            f"  OPQ-Extended (partitioned) : {partitioned.total_cost:10.2f} USD\n"
            f"  single OPQ at t_max        : {flat.total_cost:10.2f} USD",
        )
        # Solving everything at t_max can only be more expensive.
        assert partitioned.total_cost <= flat.total_cost + 1e-9


class TestBaselineColumnBudget:
    @pytest.mark.parametrize("columns_per_task", (0, 2, 6), ids=("c0", "c2", "c6"))
    def test_column_budget(self, benchmark, columns_per_task):
        problem = SladeProblem.homogeneous(400, 0.9, jelly_bin_set(20))
        solver = CIPBaselineSolver(
            chunk_size=100, random_columns_per_task=columns_per_task, seed=0,
            verify=False,
        )
        result = benchmark.pedantic(solver.solve, args=(problem,), rounds=1, iterations=1)
        benchmark.extra_info["total_cost"] = result.total_cost
        assert result.plan.is_feasible(problem.task)


class TestReliabilityPremium:
    def test_redundancy_premium_over_single_coverage(self, benchmark):
        """How much does demanding 0.95 reliability cost versus merely looking
        at every task once with the biggest bin?"""
        bins = jelly_bin_set(20)
        problem = SladeProblem.homogeneous(2_000, 0.95, bins)
        with_reliability = benchmark.pedantic(
            OPQSolver().solve, args=(problem,), rounds=1, iterations=1
        ).total_cost
        single_pass = RelaxedDPSolver(allow_unrelaxed=True).solve(problem).total_cost
        premium = with_reliability / single_pass
        report(
            "Ablation — reliability premium (Jelly, n=2000, t=0.95)",
            f"  single-coverage lower bound : {single_pass:10.2f} USD\n"
            f"  reliability-aware plan      : {with_reliability:10.2f} USD\n"
            f"  premium factor              : {premium:10.2f}x",
        )
        assert premium >= 1.0

    def test_greedy_premium_matches_opq_within_factor(self, benchmark):
        bins = jelly_bin_set(20)
        problem = SladeProblem.homogeneous(2_000, 0.95, bins)
        opq = OPQSolver().solve(problem).total_cost
        greedy = benchmark.pedantic(
            GreedySolver().solve, args=(problem,), rounds=1, iterations=1
        ).total_cost
        assert opq <= greedy <= opq * 2.0
