"""HTTP transport: concurrent wire-level clients still coalesce and win.

The transport claim of the HTTP PR, quantified end to end: a fleet of
independent HTTP clients — separate sockets, separate threads, no shared
state — POSTing single solve requests against one ``HttpSladeServer``
completes much faster than solving the same stream cold, because the
server's micro-batching frontend coalesces the concurrent requests onto one
planner and OPQ cache.  The coalescing is asserted from the *outside*, via
the ``/metrics`` endpoint's batch-size counters, exactly as the CI
acceptance criterion demands.

Set ``SLADE_BENCH_SMOKE=1`` for a CI-sized run (fewer clients, same
assertions).
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ThreadPoolExecutor

from benchmarks.conftest import record_result, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.smic import smic_bin_set
from repro.io.serialization import solve_request_to_dict
from repro.service import ServiceConfig, SladeHttpClient, SolveRequest
from repro.service.transport.server import HttpSladeServer
from repro.utils.timing import Stopwatch

#: CI smoke mode: fewer concurrent clients, identical assertions.
SMOKE = os.environ.get("SLADE_BENCH_SMOKE", "0") == "1"

#: Number of concurrent HTTP clients.
CLIENTS = 12 if SMOKE else 32

#: One shared (menu, threshold) pair whose OPQ construction dwarfs both the
#: per-request cover time and the HTTP round-trip overhead: the SMIC menu at
#: a high threshold pays tens of milliseconds per Algorithm 2 run, so the
#: cold path rebuilds it per request while the server builds it once.
THRESHOLD = 0.99
MAX_CARDINALITY = 20


class _ServerThread:
    """One HTTP server on a background event loop (port picked by the OS)."""

    def __init__(self, config: ServiceConfig) -> None:
        self._config = config
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.server = HttpSladeServer(config=self._config)
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self) -> "_ServerThread":
        self._thread.start()
        assert self._ready.wait(timeout=10)
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


def _request_payloads():
    bins = smic_bin_set(MAX_CARDINALITY)
    return [
        solve_request_to_dict(
            SolveRequest(
                problem=SladeProblem.homogeneous(
                    100 + 10 * i, THRESHOLD, bins, name=f"http-{i}"
                ),
                request_id=f"http-{i}",
            )
        )
        for i in range(CLIENTS)
    ]


def test_concurrent_http_clients_coalesce_and_beat_cold_solves():
    payloads = _request_payloads()
    bins = smic_bin_set(MAX_CARDINALITY)
    problems = [
        SladeProblem.homogeneous(100 + 10 * i, THRESHOLD, bins)
        for i in range(CLIENTS)
    ]

    cold_watch = Stopwatch()
    with cold_watch:
        cold_costs = [
            create_solver("opq").solve(problem).total_cost for problem in problems
        ]

    config = ServiceConfig(max_batch_size=16, max_wait_seconds=0.02)
    with _ServerThread(config) as handle:
        base_url = handle.server.base_url
        barrier = threading.Barrier(CLIENTS)

        def fire(payload):
            client = SladeHttpClient(base_url, timeout=120)
            barrier.wait()
            return client.solve(payload, include_plan=False)

        http_watch = Stopwatch()
        with http_watch:
            with ThreadPoolExecutor(max_workers=CLIENTS) as pool:
                replies = list(pool.map(fire, payloads))

        metrics = SladeHttpClient(base_url).metrics().payload

    speedup = (
        cold_watch.elapsed / http_watch.elapsed
        if http_watch.elapsed > 0
        else float("inf")
    )
    coalesced = sum(1 for reply in replies if reply.payload["batch_size"] > 1)
    report(
        f"Concurrent HTTP clients vs per-request cold solves "
        f"({CLIENTS} clients, smic |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  cold per-request solves   : {cold_watch.elapsed * 1000:.1f} ms",
                f"  concurrent HTTP clients   : {http_watch.elapsed * 1000:.1f} ms",
                f"  speedup                   : {speedup:.1f}x",
                f"  requests in shared batch  : {coalesced}/{CLIENTS}",
                f"  flushes / largest batch   : "
                f"{metrics['service.flushes']:.0f} / "
                f"{metrics['service.batch_size.max']:.0f}",
                f"  cache hits / misses       : {metrics['cache.hits']:.0f} / "
                f"{metrics['cache.misses']:.0f}",
                f"  mean queue wait           : "
                f"{metrics['service.queue_wait_seconds.mean'] * 1000:.2f} ms",
            ]
        ),
    )
    record_result(
        "http_concurrent_clients",
        clients=CLIENTS,
        cold_seconds=cold_watch.elapsed,
        http_seconds=http_watch.elapsed,
        speedup=speedup,
        largest_batch=metrics["service.batch_size.max"],
        flushes=metrics["service.flushes"],
        mean_queue_wait_seconds=metrics["service.queue_wait_seconds.mean"],
    )

    # Wire-level responses carry the same plans, only faster.
    assert [reply.status for reply in replies] == [200] * CLIENTS
    assert all(reply.payload["ok"] for reply in replies)
    assert [
        reply.payload["total_cost"] for reply in replies
    ] == cold_costs
    # Coalescing is externally observable: shared batches, one OPQ build.
    assert metrics["service.batch_size.max"] > 1
    assert metrics["service.flushes"] < CLIENTS
    assert metrics["cache.misses"] == 1
    assert metrics["cache.hits"] == CLIENTS - 1
    # And the transport still beats naive per-request solving comfortably.
    assert speedup >= 2.0, f"expected >= 2x speedup, measured {speedup:.1f}x"
