"""Service layer: async micro-batching vs naive per-request solving, and
warm starts from the persistent SQLite plan-cache backend.

Two claims from the service-layer PR are quantified here:

(a) a stream of single requests sharing one ``(menu, threshold)`` pair,
    submitted concurrently to :class:`~repro.service.AsyncSladeService`,
    completes much faster than solving each request cold — the micro-batching
    loop turns the stream into shared-menu batches so Algorithm 2 runs once;

(b) a *second process* opening the same SQLite cache backend starts with a
    non-zero cache hit rate: its very first request is answered without an
    Algorithm 2 run.

Set ``SLADE_BENCH_SMOKE=1`` for a CI-sized run (fewer requests, same
assertions).
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from benchmarks.conftest import record_result, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.service import AsyncSladeService, ServiceConfig, SolveRequest
from repro.utils.timing import Stopwatch

#: CI smoke mode: fewer requests, identical assertions.
SMOKE = os.environ.get("SLADE_BENCH_SMOKE", "0") == "1"

#: Number of requests in the shared-menu stream.
REQUESTS = 16 if SMOKE else 48

#: The shared menu and threshold — the same regime as bench_batch_engine:
#: Algorithm 2 dwarfs Algorithm 3 at this threshold and menu size.
THRESHOLD = 0.95
MAX_CARDINALITY = 20


def _request_stream():
    bins = jelly_bin_set(MAX_CARDINALITY)
    return [
        SolveRequest(
            problem=SladeProblem.homogeneous(
                100 + 10 * i, THRESHOLD, bins, name=f"stream-{i}"
            ),
            request_id=f"stream-{i}",
        )
        for i in range(REQUESTS)
    ]


def test_async_micro_batching_beats_per_request_cold_solves():
    """Claim (a): the micro-batched stream beats naive per-request solving."""
    requests = _request_stream()

    cold_watch = Stopwatch()
    with cold_watch:
        cold_costs = [
            create_solver("opq").solve(request.problem).total_cost
            for request in requests
        ]

    async def scenario():
        async with AsyncSladeService(
            config=ServiceConfig(max_batch_size=16, max_wait_seconds=0.005)
        ) as svc:
            return await svc.submit_many(requests)

    warm_watch = Stopwatch()
    with warm_watch:
        responses = asyncio.run(scenario())

    speedup = (
        cold_watch.elapsed / warm_watch.elapsed
        if warm_watch.elapsed > 0
        else float("inf")
    )
    batched = sum(1 for r in responses if r.batch_size > 1)
    report(
        f"Async micro-batching vs per-request cold solves "
        f"({REQUESTS} requests, jelly |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  cold per-request solves  : {cold_watch.elapsed * 1000:.1f} ms",
                f"  async micro-batched      : {warm_watch.elapsed * 1000:.1f} ms",
                f"  speedup                  : {speedup:.1f}x",
                f"  requests in shared batch : {batched}/{REQUESTS}",
                f"  cache provenance         : "
                f"{sum(1 for r in responses if r.cache == 'hit')} hits / "
                f"{sum(1 for r in responses if r.cache == 'miss')} misses",
            ]
        ),
    )

    record_result(
        "service_async_micro_batching",
        requests=REQUESTS,
        cold_seconds=cold_watch.elapsed,
        batched_seconds=warm_watch.elapsed,
        speedup=speedup,
        coalesced_requests=batched,
    )

    # The plans must be identical, only faster.
    assert [r.request_id for r in responses] == [r.request_id for r in requests]
    assert all(r.ok for r in responses)
    assert [r.total_cost for r in responses] == cold_costs
    # Micro-batching actually coalesced the stream...
    assert any(r.batch_size > 1 for r in responses)
    assert sum(1 for r in responses if r.cache == "miss") == 1
    # ...and beat naive per-request solving comfortably.
    assert speedup >= 3.0, f"expected >= 3x speedup, measured {speedup:.1f}x"


#: Run by the subprocess of the warm-start benchmark: open the shared SQLite
#: backend, serve the same stream, and print this process's cache stats.
_SECOND_PROCESS_SCRIPT = """
import json, sys
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.service import ServiceConfig, SladeService, SolveRequest
from repro.utils.timing import Stopwatch

db_path, threshold, max_cardinality, requests = (
    sys.argv[1], float(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
)
bins = jelly_bin_set(max_cardinality)
service = SladeService(ServiceConfig(cache_backend=f"sqlite:{db_path}"))
watch = Stopwatch()
with watch:
    responses = [
        service.solve(
            SolveRequest(
                problem=SladeProblem.homogeneous(100 + 10 * i, threshold, bins)
            )
        )
        for i in range(requests)
    ]
stats = service.cache_stats
service.close()
print(json.dumps({
    "ok": all(r.ok for r in responses),
    "first_cache": responses[0].cache,
    "hits": stats.hits,
    "misses": stats.misses,
    "hit_rate": stats.hit_rate,
    "wall_seconds": watch.elapsed,
}))
"""


def test_sqlite_backend_warm_start_across_processes(tmp_path):
    """Claim (b): a second process on the same SQLite file starts warm."""
    db_path = tmp_path / "plans.db"
    requests = _request_stream()

    # First process (this one): populate the persistent cache.
    from repro.service import SladeService

    cold_watch = Stopwatch()
    with cold_watch:
        with SladeService(
            ServiceConfig(cache_backend=f"sqlite:{db_path}")
        ) as service:
            first_responses = [service.solve(request) for request in requests]
            first_stats = service.cache_stats
    assert all(r.ok for r in first_responses)
    assert first_stats.misses == 1  # one shared (menu, threshold) pair

    # Second process: a genuinely fresh interpreter on the same file.
    src_root = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_root}{os.pathsep}{env.get('PYTHONPATH', '')}"
    proc = subprocess.run(
        [
            sys.executable, "-c", _SECOND_PROCESS_SCRIPT,
            str(db_path), str(THRESHOLD), str(MAX_CARDINALITY), str(REQUESTS),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    second = json.loads(proc.stdout.strip().splitlines()[-1])

    report(
        f"SQLite plan-cache warm start across processes ({REQUESTS} requests)",
        "\n".join(
            [
                f"  first process (cold file)  : {cold_watch.elapsed * 1000:.1f} ms, "
                f"{first_stats.hits} hits / {first_stats.misses} misses",
                f"  second process (warm file) : {second['wall_seconds'] * 1000:.1f} ms, "
                f"{second['hits']} hits / {second['misses']} misses "
                f"(hit rate {second['hit_rate']:.1%})",
                f"  first request provenance   : {second['first_cache']}",
            ]
        ),
    )

    record_result(
        "service_sqlite_warm_start",
        requests=REQUESTS,
        first_process_seconds=cold_watch.elapsed,
        second_process_seconds=second["wall_seconds"],
        second_process_hit_rate=second["hit_rate"],
    )

    assert second["ok"]
    # The acceptance criterion: the restarted worker begins with a non-zero
    # hit rate — its very first request is served from the persistent store.
    assert second["first_cache"] == "hit"
    assert second["hits"] == REQUESTS
    assert second["misses"] == 0
    assert second["hit_rate"] > 0.0
