"""Figures 6i-6l: homogeneous cost and running time versus the number of tasks.

The paper scales ``n`` from 1,000 to 100,000 and reports (i/j) total cost and
(k/l) running time for both datasets.  Cost grows essentially linearly in ``n``
for every solver; OPQ-Based is the cheapest and by far the fastest because its
per-block work is precomputed once.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE_GRID, bench_config, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import sweep_scale

SOLVERS = ("greedy", "opq", "baseline")


def _bins_for(dataset: str):
    return jelly_bin_set(20) if dataset == "jelly" else smic_bin_set(20)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6k_jelly", "fig6l_smic"])
@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("n", (min(SCALE_GRID), max(SCALE_GRID)))
def test_solver_time_vs_scale(benchmark, dataset, solver_name, n):
    """Running-time panels (Figures 6k/6l) at the extremes of the n grid."""
    config = bench_config(dataset, n=n)
    problem = SladeProblem.homogeneous(
        n, config.threshold, _bins_for(dataset), name=f"{dataset}-n{n}"
    )
    options = dict(config.solver_options.get(solver_name, {}))
    options["verify"] = False

    def run():
        return create_solver(solver_name, **options).solve(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_cost"] = result.total_cost
    benchmark.extra_info["n"] = n
    assert result.plan.is_feasible(problem.task)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6i_jelly", "fig6j_smic"])
def test_cost_vs_scale_shape(benchmark, dataset):
    """Cost panels (Figures 6i/6j): linear growth, OPQ cheapest."""
    config = bench_config(dataset)
    sweep = benchmark.pedantic(
        sweep_scale, args=(config,), kwargs={"n_values": SCALE_GRID},
        rounds=1, iterations=1,
    )
    panel = "i" if dataset == "jelly" else "j"
    report(f"Figure 6{panel} — {dataset}: n vs cost",
           format_sweep_table(sweep, metric="total_cost"))
    report(f"Figure 6{'k' if dataset == 'jelly' else 'l'} — {dataset}: n vs time",
           format_sweep_table(sweep, metric="elapsed_seconds"))

    smallest, largest = min(SCALE_GRID), max(SCALE_GRID)
    growth = largest / smallest
    for solver in SOLVERS:
        series = dict(sweep.series(solver))
        ratio = series[largest] / series[smallest]
        # Roughly linear growth in n (generous envelope around proportionality).
        assert 0.5 * growth <= ratio <= 1.5 * growth
    for n in SCALE_GRID:
        costs = {r.solver: r.total_cost for r in sweep.rows if r.x == n}
        assert costs["opq"] <= costs["greedy"] * 1.02 + 1e-9
        assert costs["baseline"] >= costs["opq"] - 1e-9
