"""Batch planning engine: cached OPQ reuse vs per-instance cold solves.

A sweep of instances sharing one bin menu and threshold pays for Algorithm 2
(OPQ construction) once through the engine but once *per instance* when each
problem is solved cold.  This benchmark quantifies that speedup on a scale
sweep and checks the engine's statistics — the numbers behind the "batching"
item of the ROADMAP north star.

Set ``SLADE_BENCH_SMOKE=1`` for a CI-sized run (fewer instances, same
assertions).
"""

from __future__ import annotations

import os

from benchmarks.conftest import record_result, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.engine import BatchPlanner, BatchSpec, PlanCache
from repro.utils.timing import Stopwatch

#: CI smoke mode: fewer instances, identical assertions.
SMOKE = os.environ.get("SLADE_BENCH_SMOKE", "0") == "1"

#: Number of instances in the shared-menu sweep (the acceptance scenario
#: uses 50; the smoke profile keeps the >= 5x headroom with fewer).
INSTANCES = 12 if SMOKE else 50

#: The shared menu and threshold.  t = 0.95 makes Algorithm 2 roughly 40x
#: more expensive than Algorithm 3 on these task counts, which is exactly
#: the regime the cache targets.
THRESHOLD = 0.95
MAX_CARDINALITY = 20


def _sweep_spec() -> BatchSpec:
    """A cardinality-style sweep: one menu, many task counts."""
    bins = jelly_bin_set(MAX_CARDINALITY)
    n_values = tuple(100 + 10 * i for i in range(INSTANCES))
    return BatchSpec(
        bins=bins, n_values=n_values, thresholds=(THRESHOLD,), name="bench-batch"
    )


def test_batch_engine_speedup_on_shared_bin_sweep():
    """Engine >= 5x faster than cold solves on a shared-menu sweep."""
    spec = _sweep_spec()
    problems = spec.problems()

    cold_watch = Stopwatch()
    with cold_watch:
        cold_costs = [
            create_solver("opq").solve(problem).total_cost for problem in problems
        ]

    planner = BatchPlanner()
    batch = planner.solve_many(spec, solver="opq")
    warm_seconds = batch.stats.wall_seconds

    speedup = cold_watch.elapsed / warm_seconds if warm_seconds > 0 else float("inf")
    report(
        f"Batch engine vs cold solves ({len(problems)} instances, "
        f"jelly |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  cold per-instance solves : {cold_watch.elapsed * 1000:.1f} ms",
                f"  batch engine (cached)    : {warm_seconds * 1000:.1f} ms",
                f"  speedup                  : {speedup:.1f}x",
                f"  cache hits/misses        : {batch.stats.cache_hits}/"
                f"{batch.stats.cache_misses} "
                f"(hit rate {batch.stats.cache_hit_rate:.1%})",
                f"  opq build time           : "
                f"{batch.stats.build_seconds * 1000:.2f} ms",
            ]
        ),
    )

    record_result(
        "batch_engine_shared_menu_sweep",
        instances=len(problems),
        cold_seconds=cold_watch.elapsed,
        batched_seconds=warm_seconds,
        speedup=speedup,
        cache_hit_rate=batch.stats.cache_hit_rate,
    )

    # The plans must be identical, only faster.
    assert [item.total_cost for item in batch] == cold_costs
    assert batch.all_feasible
    # Acceptance criteria: >= 5x on the shared-menu sweep, with cache hits.
    assert batch.stats.cache_hits > 0
    assert batch.stats.cache_hit_rate > 0.0
    assert speedup >= 5.0, f"expected >= 5x speedup, measured {speedup:.1f}x"


def test_batch_engine_heterogeneous_group_reuse():
    """Heterogeneous batches reuse per-group queues across instances."""
    bins = jelly_bin_set(12)
    count = 4 if SMOKE else 10
    problems = [
        SladeProblem.heterogeneous(
            normal_thresholds(120, mu=0.9, sigma=0.03, seed=seed),
            bins,
            name=f"hetero-{seed}",
        )
        for seed in range(count)
    ]

    planner = BatchPlanner()
    batch = planner.solve_many(problems, solver="opq-extended")
    report(
        f"Heterogeneous batch ({count} instances, opq-extended)",
        f"  cache hits/misses: {batch.stats.cache_hits}/"
        f"{batch.stats.cache_misses} "
        f"(hit rate {batch.stats.cache_hit_rate:.1%})",
    )
    assert batch.all_feasible
    # Group thresholds repeat across instances, so all but the first
    # instance's queues come from the cache.
    assert batch.stats.cache_hits > 0


def test_shared_cache_across_batches():
    """A cache passed across planners keeps its queues warm."""
    cache = PlanCache()
    spec = _sweep_spec()
    first = BatchPlanner(cache=cache).solve_many(spec, solver="opq")
    second = BatchPlanner(cache=cache).solve_many(spec, solver="opq")
    assert first.stats.cache_misses > 0
    assert second.stats.cache_misses == 0
    assert second.stats.cache_hit_rate == 1.0
    assert second.total_cost == first.total_cost
