"""Figures 8a-8b: heterogeneous running time versus the number of tasks.

Both datasets, Normal(0.9, 0.03) thresholds, ``n`` swept over the scale grid.
The paper's observation: the overall tendency resembles the homogeneous case,
but OPQ-Extended pays extra for building one optimal priority queue per
threshold group.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SCALE_GRID, bench_config, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import sweep_hetero_scale

SOLVERS = ("greedy", "opq-extended", "baseline")


def _bins_for(dataset: str):
    return jelly_bin_set(20) if dataset == "jelly" else smic_bin_set(20)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig8a_jelly", "fig8b_smic"])
@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("n", (min(SCALE_GRID), max(SCALE_GRID)))
def test_hetero_solver_time_vs_scale(benchmark, dataset, solver_name, n):
    """Running-time panels (Figures 8a/8b)."""
    config = bench_config(dataset, n=n)
    thresholds = normal_thresholds(n, mu=config.mu, sigma=config.sigma, seed=config.seed)
    problem = SladeProblem.heterogeneous(
        thresholds, _bins_for(dataset), name=f"{dataset}-hetero-n{n}"
    )
    options = dict(config.solver_options.get(solver_name, {}))
    options["verify"] = False

    def run():
        return create_solver(solver_name, **options).solve(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_cost"] = result.total_cost
    benchmark.extra_info["n"] = n
    assert result.plan.is_feasible(problem.task)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig8a_jelly", "fig8b_smic"])
def test_hetero_time_vs_scale_shape(benchmark, dataset):
    """Regenerate the full Figure 8 series and check the growth trends."""
    config = bench_config(dataset)
    sweep = benchmark.pedantic(
        sweep_hetero_scale, args=(config,), kwargs={"n_values": SCALE_GRID},
        rounds=1, iterations=1,
    )
    panel = "a" if dataset == "jelly" else "b"
    report(f"Figure 8{panel} — {dataset}: n vs time (heterogeneous)",
           format_sweep_table(sweep, metric="elapsed_seconds"))
    report(f"Figure 8{panel} (companion) — {dataset}: n vs cost (heterogeneous)",
           format_sweep_table(sweep, metric="total_cost"))

    smallest, largest = min(SCALE_GRID), max(SCALE_GRID)
    for solver in SOLVERS:
        cost_series = dict(sweep.series(solver))
        assert cost_series[largest] > cost_series[smallest]
    # The CIP baseline is the slowest of the three at scale, as in the paper.
    # (The paper also reports Greedy slower than OPQ-Extended; our Greedy uses
    # a heap instead of the paper's full re-sort and is therefore faster — the
    # deviation is documented in EXPERIMENTS.md.)
    times = {r.solver: r.elapsed_seconds for r in sweep.rows if r.x == largest}
    assert times["baseline"] >= times["opq-extended"]
    assert times["baseline"] >= times["greedy"]
