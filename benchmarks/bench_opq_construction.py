"""Tables 3-5 and Algorithm 2: optimal priority queue construction.

Benchmarks the OPQ construction cost as a function of the reliability
threshold and the menu size, verifies the paper's worked queue contents
(Tables 3, 4 and 5), and cross-checks Lemma 2 (the head element has the lowest
unit cost) on the evaluation menus.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import report
from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set

TABLE1 = TaskBinSet.from_triples(
    [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)], name="table1"
)


@pytest.mark.parametrize("threshold", (0.87, 0.9, 0.95, 0.97, 0.99))
@pytest.mark.parametrize(
    "bins", (jelly_bin_set(20), smic_bin_set(20)), ids=("jelly", "smic")
)
def test_opq_construction_time(benchmark, bins, threshold):
    """Time Algorithm 2 on the evaluation menus across thresholds."""
    queue = benchmark(build_optimal_priority_queue, bins, threshold)
    benchmark.extra_info["queue_size"] = len(queue)
    benchmark.extra_info["nodes"] = queue.stats["nodes"]
    # Lemma 2: the head has the lowest unit cost on the frontier.
    head_uc = queue.head.unit_cost
    assert all(comb.unit_cost >= head_uc - 1e-12 for comb in queue)


def test_table3_contents(benchmark):
    """Table 3: the OPQ of the Table 1 menu at t = 0.95."""
    queue = benchmark(build_optimal_priority_queue, TABLE1, 0.95)
    rows = [(dict(c.counts), c.lcm, round(c.unit_cost, 4)) for c in queue]
    report("Table 3 — OPQ of the Table 1 menu (t = 0.95)",
           "\n".join(f"  Comb {counts}  LCM={lcm}  UC={uc}" for counts, lcm, uc in rows))
    assert rows == [({3: 2}, 3, 0.16), ({2: 2}, 2, 0.18), ({1: 2}, 1, 0.20)]


def test_table4_and_table5_contents(benchmark):
    """Tables 4-5: the OPQ set of the heterogeneous running example."""
    table4 = benchmark.pedantic(
        build_optimal_priority_queue, args=(TABLE1, 0.632), rounds=1, iterations=1
    )
    table5 = build_optimal_priority_queue(TABLE1, 0.86)
    report(
        "Tables 4-5 — OPQ set of the heterogeneous running example",
        "\n".join(
            [
                "  OPQ0 (t=0.632): " + ", ".join(str(c) for c in table4),
                "  OPQ1 (t=0.86):  " + ", ".join(str(c) for c in table5),
            ]
        ),
    )
    assert [dict(c.counts) for c in table4] == [{3: 1}, {2: 1}, {1: 1}]
    assert [dict(c.counts) for c in table5] == [{1: 1}]
