"""Tables 3-5 and Algorithm 2: optimal priority queue construction.

Benchmarks the OPQ construction cost as a function of the reliability
threshold and the menu size, verifies the paper's worked queue contents
(Tables 3, 4 and 5), and cross-checks Lemma 2 (the head element has the lowest
unit cost) on the evaluation menus.

Two cold-build quality gates ride along:

* ``test_vectorized_core_speedup_gate`` times the pure-Python reference
  against the vectorized core over the full evaluation grid and fails unless
  the vectorized core is at least ``SLADE_OPQ_SPEEDUP_GATE``x (default 10x)
  faster in aggregate *and* every cell's frontier is byte-identical;
* ``test_cold_build_profile_breakdown`` prints a cProfile cumulative-time
  table of where cold-build time goes, so a future regression in the
  enumeration helpers is visible in the benchmark log, not just the totals.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import record_result, report
from repro.algorithms.opq import build_optimal_priority_queue
from repro.algorithms.opq_vec import (
    CORE_NUMPY,
    CORE_PYTHON,
    NUMPY_AVAILABLE,
    build_queue,
)
from repro.core.bins import TaskBinSet
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set

#: The evaluation grid both cold-build gates sweep: every dataset menu at
#: every Table 6 threshold (the same cells as ``test_opq_construction_time``).
GRID = [
    (name, bins, threshold)
    for name, bins in (("jelly", jelly_bin_set(20)), ("smic", smic_bin_set(20)))
    for threshold in (0.87, 0.9, 0.95, 0.97, 0.99)
]

TABLE1 = TaskBinSet.from_triples(
    [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)], name="table1"
)


@pytest.mark.parametrize("threshold", (0.87, 0.9, 0.95, 0.97, 0.99))
@pytest.mark.parametrize(
    "bins", (jelly_bin_set(20), smic_bin_set(20)), ids=("jelly", "smic")
)
def test_opq_construction_time(benchmark, bins, threshold):
    """Time Algorithm 2 on the evaluation menus across thresholds."""
    queue = benchmark(build_optimal_priority_queue, bins, threshold)
    benchmark.extra_info["queue_size"] = len(queue)
    benchmark.extra_info["nodes"] = queue.stats["nodes"]
    # Lemma 2: the head has the lowest unit cost on the frontier.
    head_uc = queue.head.unit_cost
    assert all(comb.unit_cost >= head_uc - 1e-12 for comb in queue)


def _frontier_bytes(queue) -> list:
    """The exact frontier content: counts, LCM, and bit-exact floats."""
    return [
        (tuple(sorted(c.counts)), c.lcm,
         c.unit_cost.hex(), c.residual.hex())
        for c in queue
    ]


def _best_of(builder, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        builder()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(not NUMPY_AVAILABLE, reason="numpy core not importable")
def test_vectorized_core_speedup_gate():
    """The vectorized core must be >= 10x faster cold with identical plans.

    Ratio gate, not an absolute-time gate, so it is robust to slow CI
    runners; the threshold can be tuned for a pathological machine via
    ``SLADE_OPQ_SPEEDUP_GATE``.  Byte-identity is asserted per cell first —
    a fast core that builds different frontiers is a bug, not a speedup.
    """
    gate = float(os.environ.get("SLADE_OPQ_SPEEDUP_GATE", "10"))
    rows = []
    python_total = 0.0
    numpy_total = 0.0
    for name, bins, threshold in GRID:
        reference = build_queue(bins, threshold, core=CORE_PYTHON)
        vectorized = build_queue(bins, threshold, core=CORE_NUMPY)
        assert _frontier_bytes(vectorized) == _frontier_bytes(reference), (
            f"vectorized frontier diverges from the reference on "
            f"{name} t={threshold}"
        )
        assert vectorized.complete == reference.complete

        python_best = _best_of(lambda: build_queue(bins, threshold, core=CORE_PYTHON))
        numpy_best = _best_of(lambda: build_queue(bins, threshold, core=CORE_NUMPY))
        python_total += python_best
        numpy_total += numpy_best
        rows.append((name, threshold, len(reference), python_best, numpy_best))

    ratio = python_total / numpy_total if numpy_total else float("inf")
    report(
        "Algorithm 2 cold build — python vs numpy core (best of 3)",
        "\n".join(
            [f"  {'menu':<6} {'t':>6} {'size':>5} {'python (ms)':>12} "
             f"{'numpy (ms)':>11} {'speedup':>8}"]
            + [
                f"  {name:<6} {threshold:>6.2f} {size:>5} "
                f"{py * 1e3:>12.3f} {np_ * 1e3:>11.3f} {py / np_:>7.1f}x"
                for name, threshold, size, py, np_ in rows
            ]
            + [f"  grid total: python {python_total * 1e3:.1f}ms, "
               f"numpy {numpy_total * 1e3:.1f}ms -> {ratio:.1f}x "
               f"(gate: >= {gate:g}x)"]
        ),
    )
    record_result(
        "opq_vectorized_core_speedup",
        python_grid_seconds=python_total,
        numpy_grid_seconds=numpy_total,
        speedup=ratio,
        gate=gate,
    )
    assert ratio >= gate, (
        f"vectorized core is only {ratio:.1f}x faster over the grid; "
        f"the gate requires >= {gate:g}x (override via SLADE_OPQ_SPEEDUP_GATE)"
    )


def test_cold_build_profile_breakdown():
    """Where cold-build time goes: cProfile top-10 cumulative functions.

    Informational (no timing assertion — profiling overhead would make one
    meaningless), but it pins the structural claim behind the Combination
    quantity-caching fix: the quantities are computed once per node in
    ``from_counts``/``_cache_quantities``, so the ``residual``/``unit_cost``
    property accessors must no longer appear as hot rows of their own.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    for _name, bins, threshold in GRID:
        build_optimal_priority_queue(bins, threshold)
    profiler.disable()

    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer).sort_stats(
        pstats.SortKey.CUMULATIVE
    ).print_stats(10)
    report("Algorithm 2 cold build — cProfile cumulative top 10 (python core)",
           buffer.getvalue().rstrip())

    stats = pstats.Stats(profiler)
    # (file, line, name) -> (ncalls, primitive, tottime, cumtime, callers)
    per_function = {key[2]: value for key, value in stats.stats.items()}
    assert "_cache_quantities" in per_function, (
        "quantity caching no longer runs during enumeration — did "
        "from_counts stop precomputing?"
    )
    calls = per_function["_cache_quantities"][0]
    nodes = sum(
        build_optimal_priority_queue(bins, threshold).stats["nodes"]
        for _name, bins, threshold in GRID
    )
    # One cache fill per constructed Combination: visited nodes plus the
    # frontier-insert copies; anything superlinear means recomputation crept
    # back in.
    assert calls <= nodes * 3, (
        f"_cache_quantities ran {calls} times for {nodes} enumerated nodes; "
        "quantities are being recomputed instead of cached"
    )


def test_table3_contents(benchmark):
    """Table 3: the OPQ of the Table 1 menu at t = 0.95."""
    queue = benchmark(build_optimal_priority_queue, TABLE1, 0.95)
    rows = [(dict(c.counts), c.lcm, round(c.unit_cost, 4)) for c in queue]
    report("Table 3 — OPQ of the Table 1 menu (t = 0.95)",
           "\n".join(f"  Comb {counts}  LCM={lcm}  UC={uc}" for counts, lcm, uc in rows))
    assert rows == [({3: 2}, 3, 0.16), ({2: 2}, 2, 0.18), ({1: 2}, 1, 0.20)]


def test_table4_and_table5_contents(benchmark):
    """Tables 4-5: the OPQ set of the heterogeneous running example."""
    table4 = benchmark.pedantic(
        build_optimal_priority_queue, args=(TABLE1, 0.632), rounds=1, iterations=1
    )
    table5 = build_optimal_priority_queue(TABLE1, 0.86)
    report(
        "Tables 4-5 — OPQ set of the heterogeneous running example",
        "\n".join(
            [
                "  OPQ0 (t=0.632): " + ", ".join(str(c) for c in table4),
                "  OPQ1 (t=0.86):  " + ", ".join(str(c) for c in table5),
            ]
        ),
    )
    assert [dict(c.counts) for c in table4] == [{3: 1}, {2: 1}, {1: 1}]
    assert [dict(c.counts) for c in table5] == [{1: 1}]
