"""Figures 6a-6d: homogeneous cost and running time versus reliability threshold.

For both datasets (Jelly → 6a/6c, SMIC → 6b/6d) the benchmark runs Greedy,
OPQ-Based and the CIP baseline across the paper's threshold grid, times each
solver with ``pytest-benchmark`` (the running-time panels), records the
decomposition costs (the cost panels) and asserts the paper's qualitative
conclusions: cost decreases with lower thresholds, OPQ-Based is the most
cost-effective, the baseline the least.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import THRESHOLD_GRID, bench_config, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import sweep_threshold

SOLVERS = ("greedy", "opq", "baseline")


def _bins_for(dataset: str, max_cardinality: int = 20):
    return jelly_bin_set(max_cardinality) if dataset == "jelly" else smic_bin_set(max_cardinality)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6a_6c_jelly", "fig6b_6d_smic"])
@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("threshold", THRESHOLD_GRID)
def test_solver_time_vs_threshold(benchmark, dataset, solver_name, threshold):
    """Running-time panels (Figures 6c/6d): time one solver at one threshold."""
    config = bench_config(dataset)
    problem = SladeProblem.homogeneous(
        config.n, threshold, _bins_for(dataset), name=f"{dataset}-t{threshold}"
    )
    options = dict(config.solver_options.get(solver_name, {}))
    options["verify"] = False

    def run():
        return create_solver(solver_name, **options).solve(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_cost"] = result.total_cost
    benchmark.extra_info["n"] = problem.n
    assert result.plan.is_feasible(problem.task)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6a_jelly", "fig6b_smic"])
def test_cost_vs_threshold_shape(benchmark, dataset):
    """Cost panels (Figures 6a/6b): regenerate the series and check the shape."""
    config = bench_config(dataset)
    sweep = benchmark.pedantic(
        sweep_threshold, args=(config,), kwargs={"thresholds": THRESHOLD_GRID},
        rounds=1, iterations=1,
    )
    report(f"Figure 6{'a' if dataset == 'jelly' else 'b'} — {dataset}: threshold vs cost "
           f"(n={config.n})", format_sweep_table(sweep, metric="total_cost"))
    report(f"Figure 6{'c' if dataset == 'jelly' else 'd'} — {dataset}: threshold vs time "
           f"(n={config.n})", format_sweep_table(sweep, metric="elapsed_seconds"))

    lowest, highest = min(THRESHOLD_GRID), max(THRESHOLD_GRID)
    for solver in SOLVERS:
        series = dict(sweep.series(solver))
        # Cost decreases (weakly) when the reliability threshold decreases.
        assert series[lowest] <= series[highest] + 1e-9
    for threshold in THRESHOLD_GRID:
        costs = {r.solver: r.total_cost for r in sweep.rows if r.x == threshold}
        # OPQ-Based is the most cost-effective, the baseline the least.
        assert costs["opq"] <= costs["greedy"] * 1.02 + 1e-9
        assert costs["baseline"] >= costs["opq"] - 1e-9
