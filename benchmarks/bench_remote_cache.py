"""Remote plan cache: warm network hits vs cold Algorithm 2 builds, the
latency split between the tiered backend's local and remote tiers, and the
sharded ring's warm hits (including reads failing over past a dead shard).

Three claims from the networked-cache PRs are quantified here:

(a) a *warm remote hit* — one round trip to a ``repro cached`` server plus an
    unpickle — is far cheaper than a cold OPQ build for a realistic menu, so
    joining a warm fleet beats starting cold by a wide margin;

(b) in the tiered backend, a promoted (local) hit is cheaper again than a
    remote hit, which is the whole point of keeping a near tier: hot
    fingerprints never leave the process;

(c) on a three-shard consistent-hash ring with replication factor 2, a warm
    sharded hit keeps the same >= 3x margin over a cold build — even while
    one shard is dead and every read of its keys pays the fail-over to the
    surviving replica.

Set ``SLADE_BENCH_SMOKE=1`` for a CI-sized run (fewer iterations, same
assertions).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import record_result, report
from repro.algorithms.opq import build_optimal_priority_queue
from repro.datasets.jelly import jelly_bin_set
from repro.engine.backends import (
    MemoryBackend,
    RemoteBackend,
    ShardedBackend,
    TieredBackend,
)
from repro.engine.backends.server import CacheServerThread
from repro.engine.fingerprint import opq_key
from repro.utils.timing import Stopwatch

#: CI smoke mode: fewer repetitions, identical assertions.
SMOKE = os.environ.get("SLADE_BENCH_SMOKE", "0") == "1"

#: Repetitions for the per-operation latency measurements.
HIT_ITERATIONS = 50 if SMOKE else 200

#: The same regime as bench_batch_engine / bench_service: Algorithm 2 at this
#: menu size and threshold dwarfs everything else.
THRESHOLD = 0.95
MAX_CARDINALITY = 20


def test_warm_remote_hit_beats_cold_build():
    """Claim (a): joining a warm fleet is >= 3x cheaper than building cold."""
    bins = jelly_bin_set(MAX_CARDINALITY)
    key = opq_key(bins, THRESHOLD)

    build_watch = Stopwatch()
    with build_watch:
        queue = build_optimal_priority_queue(bins, THRESHOLD)

    with CacheServerThread() as server:
        backend = RemoteBackend(server.host, server.port)
        backend.put(key, queue)

        started = time.perf_counter()
        for _ in range(HIT_ITERATIONS):
            assert backend.get(key) is not None
        remote_hit_seconds = (time.perf_counter() - started) / HIT_ITERATIONS
        backend.close()

    speedup = (
        build_watch.elapsed / remote_hit_seconds
        if remote_hit_seconds > 0
        else float("inf")
    )
    report(
        f"Warm remote hit vs cold OPQ build "
        f"(jelly |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  cold Algorithm 2 build : {build_watch.elapsed * 1000:.2f} ms",
                f"  warm remote hit        : {remote_hit_seconds * 1000:.3f} ms "
                f"(mean of {HIT_ITERATIONS})",
                f"  speedup                : {speedup:.0f}x",
            ]
        ),
    )
    record_result(
        "remote_cache_warm_hit_vs_cold_build",
        cold_build_seconds=build_watch.elapsed,
        remote_hit_seconds=remote_hit_seconds,
        speedup=speedup,
        iterations=HIT_ITERATIONS,
    )
    assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.1f}x"


def test_tiered_local_hits_beat_remote_hits():
    """Claim (b): the near tier turns repeat hits into in-process lookups."""
    bins = jelly_bin_set(MAX_CARDINALITY)
    key = opq_key(bins, THRESHOLD)
    queue = build_optimal_priority_queue(bins, THRESHOLD)

    with CacheServerThread() as server:
        far = RemoteBackend(server.host, server.port)
        far.put(key, queue)

        # Remote-hit latency: a fresh tiered backend per probe, so the near
        # tier is always cold and every get pays the wire.
        started = time.perf_counter()
        for _ in range(HIT_ITERATIONS):
            tiered = TieredBackend(MemoryBackend(), far)
            assert tiered.get(key) is not None
        remote_hit_seconds = (time.perf_counter() - started) / HIT_ITERATIONS

        # Local-hit latency: one warm tiered backend, repeat gets.
        tiered = TieredBackend(MemoryBackend(), far)
        assert tiered.get(key) is not None  # promote once
        started = time.perf_counter()
        for _ in range(HIT_ITERATIONS):
            assert tiered.get(key) is not None
        local_hit_seconds = (time.perf_counter() - started) / HIT_ITERATIONS
        assert tiered.local_hits == HIT_ITERATIONS
        far.close()

    split = (
        remote_hit_seconds / local_hit_seconds
        if local_hit_seconds > 0
        else float("inf")
    )
    report(
        f"Tiered backend: local vs remote hit latency "
        f"(jelly |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  remote-tier hit (promote) : {remote_hit_seconds * 1e6:.1f} us",
                f"  local-tier hit            : {local_hit_seconds * 1e6:.1f} us",
                f"  local advantage           : {split:.0f}x",
            ]
        ),
    )
    record_result(
        "remote_cache_tiered_latency_split",
        remote_hit_seconds=remote_hit_seconds,
        local_hit_seconds=local_hit_seconds,
        local_advantage=split,
        iterations=HIT_ITERATIONS,
    )
    # An in-process dict lookup must beat a TCP round trip + unpickle.
    assert local_hit_seconds < remote_hit_seconds


def test_sharded_warm_hits_beat_cold_builds_even_during_failover():
    """Claim (c): the replicated ring keeps the >= 3x warm margin with a
    shard down, reads paying the fail-over to the surviving replica."""
    bins = jelly_bin_set(MAX_CARDINALITY)
    key = opq_key(bins, THRESHOLD)

    build_watch = Stopwatch()
    with build_watch:
        queue = build_optimal_priority_queue(bins, THRESHOLD)

    servers = [CacheServerThread() for _ in range(3)]
    try:
        backend = ShardedBackend(
            [(s.host, s.port) for s in servers], replicas=2, timeout=0.5
        )
        backend.put(key, queue)

        # Healthy ring: warm hits straight off the primary.
        started = time.perf_counter()
        for _ in range(HIT_ITERATIONS):
            assert backend.get(key) is not None
        healthy_hit_seconds = (time.perf_counter() - started) / HIT_ITERATIONS

        # Kill the key's primary shard: every read now walks the ring to
        # the replica (the worst warm case a single shard death creates).
        primary = backend.owners(key)[0]
        next(s for s in servers if s.address == primary).stop()
        started = time.perf_counter()
        for _ in range(HIT_ITERATIONS):
            assert backend.get(key) is not None
        failover_hit_seconds = (time.perf_counter() - started) / HIT_ITERATIONS
        assert backend.failovers >= HIT_ITERATIONS
        backend.close()
    finally:
        for server in servers:
            server.stop()

    healthy_speedup = (
        build_watch.elapsed / healthy_hit_seconds
        if healthy_hit_seconds > 0
        else float("inf")
    )
    failover_speedup = (
        build_watch.elapsed / failover_hit_seconds
        if failover_hit_seconds > 0
        else float("inf")
    )
    report(
        f"Sharded ring (3 shards, R=2): warm hits vs cold OPQ build "
        f"(jelly |B|={MAX_CARDINALITY}, t={THRESHOLD})",
        "\n".join(
            [
                f"  cold Algorithm 2 build  : {build_watch.elapsed * 1000:.2f} ms",
                f"  healthy warm hit        : {healthy_hit_seconds * 1000:.3f} ms "
                f"(mean of {HIT_ITERATIONS})",
                f"  one-shard-dead failover : {failover_hit_seconds * 1000:.3f} ms",
                f"  healthy speedup         : {healthy_speedup:.0f}x",
                f"  failover speedup        : {failover_speedup:.0f}x",
            ]
        ),
    )
    record_result(
        "sharded_cache_warm_hit_vs_cold_build",
        cold_build_seconds=build_watch.elapsed,
        healthy_hit_seconds=healthy_hit_seconds,
        failover_hit_seconds=failover_hit_seconds,
        healthy_speedup=healthy_speedup,
        failover_speedup=failover_speedup,
        iterations=HIT_ITERATIONS,
    )
    assert healthy_speedup >= 3.0, f"expected >= 3x, measured {healthy_speedup:.1f}x"
    assert failover_speedup >= 3.0, (
        f"expected >= 3x during fail-over, measured {failover_speedup:.1f}x"
    )
