"""Figures 7a-7d: heterogeneous cost and running time versus sigma and mu.

Per-task reliability thresholds are drawn from a Normal distribution (the
paper's default).  The sweeps vary its standard deviation (7a/7b) and its mean
(7c/7d) on the Jelly dataset and compare Greedy, OPQ-Extended and the CIP
baseline, checking the paper's qualitative conclusions: cost rises with the
mean, the baseline is the least effective, and running time grows with sigma
(more distinct thresholds mean more OPQ constructions for OPQ-Extended).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import MU_GRID, SIGMA_GRID, bench_config, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import sweep_hetero_mu, sweep_hetero_sigma

SOLVERS = ("greedy", "opq-extended", "baseline")


@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("sigma", (min(SIGMA_GRID), max(SIGMA_GRID)))
def test_solver_time_vs_sigma(benchmark, solver_name, sigma):
    """Running-time panel (Figure 7b) at the extremes of the sigma grid."""
    config = bench_config("jelly")
    thresholds = normal_thresholds(config.n, mu=config.mu, sigma=sigma, seed=config.seed)
    problem = SladeProblem.heterogeneous(thresholds, jelly_bin_set(20),
                                         name=f"jelly-sigma{sigma}")
    options = dict(config.solver_options.get(solver_name, {}))
    options["verify"] = False

    def run():
        return create_solver(solver_name, **options).solve(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_cost"] = result.total_cost
    assert result.plan.is_feasible(problem.task)


def test_cost_vs_sigma_shape(benchmark):
    """Cost panel (Figure 7a)."""
    config = bench_config("jelly")
    sweep = benchmark.pedantic(
        sweep_hetero_sigma, args=(config,), kwargs={"sigmas": SIGMA_GRID},
        rounds=1, iterations=1,
    )
    report(f"Figure 7a — jelly: sigma vs cost (mu={config.mu}, n={config.n})",
           format_sweep_table(sweep, metric="total_cost"))
    report("Figure 7b — jelly: sigma vs time",
           format_sweep_table(sweep, metric="elapsed_seconds"))

    for sigma in SIGMA_GRID:
        costs = {r.solver: r.total_cost for r in sweep.rows if r.x == sigma}
        # Both dedicated heuristics clearly beat the baseline.
        assert costs["baseline"] >= costs["opq-extended"] - 1e-9
        assert costs["baseline"] >= costs["greedy"] - 1e-9


def test_cost_vs_mu_shape(benchmark):
    """Cost panel (Figure 7c): cost decreases with decreasing mean threshold."""
    config = bench_config("jelly")
    sweep = benchmark.pedantic(
        sweep_hetero_mu, args=(config,), kwargs={"mus": MU_GRID},
        rounds=1, iterations=1,
    )
    report(f"Figure 7c — jelly: mu vs cost (sigma={config.sigma}, n={config.n})",
           format_sweep_table(sweep, metric="total_cost"))
    report("Figure 7d — jelly: mu vs time",
           format_sweep_table(sweep, metric="elapsed_seconds"))

    lowest, highest = min(MU_GRID), max(MU_GRID)
    for solver in SOLVERS:
        series = dict(sweep.series(solver))
        assert series[lowest] <= series[highest] + 1e-9
    for mu in MU_GRID:
        costs = {r.solver: r.total_cost for r in sweep.rows if r.x == mu}
        assert costs["baseline"] >= costs["opq-extended"] - 1e-9
