"""Benchmarks for the extensions beyond the paper's core algorithms.

These are not paper artefacts; they quantify the extensions documented in
DESIGN.md so regressions in their behaviour are caught the same way as in the
reproduced figures:

* optimality gap of the OPQ-Based solver against the Lemma 2 lower bound,
* streaming (online) regret against the offline OPQ-Based plan,
* budgeted decomposition throughput (bisection over forward solves),
* plan serialisation round-trip time.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_config, report
from repro.algorithms.budgeted import BudgetedDecomposer
from repro.algorithms.online import OnlineDecomposer
from repro.algorithms.opq import OPQSolver
from repro.analysis.bounds import lower_bound, optimality_gap
from repro.core.problem import SladeProblem
from repro.core.task import AtomicTask
from repro.datasets.jelly import jelly_bin_set
from repro.io.serialization import plan_from_dict, plan_to_dict


class TestOptimalityGap:
    def test_opq_gap_against_lower_bound(self, benchmark):
        config = bench_config("jelly")
        problem = SladeProblem.homogeneous(config.n, 0.9, jelly_bin_set(20))
        plan = OPQSolver().solve(problem).plan
        gap = benchmark.pedantic(
            optimality_gap, args=(plan, problem), rounds=1, iterations=1
        )
        report(
            "Extension — OPQ-Based optimality gap (Jelly, t=0.9)",
            f"  lower bound : {lower_bound(problem):10.2f} USD\n"
            f"  OPQ plan    : {plan.total_cost:10.2f} USD\n"
            f"  gap         : {gap:10.3f}x (Theorem 2 allows log n)",
        )
        assert 1.0 - 1e-9 <= gap <= 1.25


class TestStreamingRegret:
    def test_online_regret_vs_offline(self, benchmark):
        config = bench_config("jelly")
        bins = jelly_bin_set(20)
        n, threshold = config.n, 0.9

        def run_stream():
            stream = OnlineDecomposer(bins)
            stream.submit_many(AtomicTask(i, threshold) for i in range(n))
            stream.flush()
            return stream

        stream = benchmark.pedantic(run_stream, rounds=1, iterations=1)
        offline = OPQSolver().solve(SladeProblem.homogeneous(n, threshold, bins))
        regret = stream.total_cost / offline.total_cost - 1.0
        report(
            "Extension — streaming regret (Jelly, t=0.9)",
            f"  offline OPQ-Based : {offline.total_cost:10.2f} USD\n"
            f"  online stream     : {stream.total_cost:10.2f} USD\n"
            f"  regret            : {regret * 100:10.2f}%",
        )
        assert 0.0 <= regret <= 0.15


class TestBudgetedThroughput:
    @pytest.mark.parametrize("budget", (10.0, 30.0), ids=("tight", "generous"))
    def test_budgeted_decomposition(self, benchmark, budget):
        config = bench_config("jelly")
        decomposer = BudgetedDecomposer(jelly_bin_set(20))
        result = benchmark.pedantic(
            decomposer.decompose, args=(config.n, budget), rounds=1, iterations=1
        )
        benchmark.extra_info["reliability"] = result.reliability
        assert result.cost <= budget + 1e-9


class TestSerializationRoundTrip:
    def test_plan_round_trip(self, benchmark):
        config = bench_config("jelly")
        problem = SladeProblem.homogeneous(config.n, 0.9, jelly_bin_set(20))
        plan = OPQSolver().solve(problem).plan

        def round_trip():
            return plan_from_dict(plan_to_dict(plan))

        restored = benchmark(round_trip)
        assert restored.total_cost == pytest.approx(plan.total_cost)
