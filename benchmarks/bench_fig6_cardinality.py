"""Figures 6e-6h: homogeneous cost and running time versus maximum cardinality.

The sweep varies the paper's ``|B|`` knob — the largest bin cardinality made
available to the decomposer — and checks that all solvers get (weakly) cheaper
as more bin sizes become available, that the curves flatten once reasonably
large bins exist, and that the solver ordering matches the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import CARDINALITY_GRID, bench_config, report
from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.experiments.report import format_sweep_table
from repro.experiments.sweeps import sweep_max_cardinality

SOLVERS = ("greedy", "opq", "baseline")
TIMED_CARDINALITIES = (1, 6, 14, 20)


def _bins_for(dataset: str, max_cardinality: int):
    return (
        jelly_bin_set(max_cardinality)
        if dataset == "jelly"
        else smic_bin_set(max_cardinality)
    )


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6g_jelly", "fig6h_smic"])
@pytest.mark.parametrize("solver_name", SOLVERS)
@pytest.mark.parametrize("max_cardinality", TIMED_CARDINALITIES)
def test_solver_time_vs_cardinality(benchmark, dataset, solver_name, max_cardinality):
    """Running-time panels (Figures 6g/6h)."""
    config = bench_config(dataset)
    problem = SladeProblem.homogeneous(
        config.n, config.threshold, _bins_for(dataset, max_cardinality),
        name=f"{dataset}-B{max_cardinality}",
    )
    options = dict(config.solver_options.get(solver_name, {}))
    options["verify"] = False

    def run():
        return create_solver(solver_name, **options).solve(problem)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["total_cost"] = result.total_cost
    assert result.plan.is_feasible(problem.task)


@pytest.mark.parametrize("dataset", ["jelly", "smic"], ids=["fig6e_jelly", "fig6f_smic"])
def test_cost_vs_cardinality_shape(benchmark, dataset):
    """Cost panels (Figures 6e/6f)."""
    config = bench_config(dataset)
    sweep = benchmark.pedantic(
        sweep_max_cardinality, args=(config,),
        kwargs={"cardinalities": CARDINALITY_GRID}, rounds=1, iterations=1,
    )
    panel = "e" if dataset == "jelly" else "f"
    report(f"Figure 6{panel} — {dataset}: max cardinality vs cost (n={config.n})",
           format_sweep_table(sweep, metric="total_cost"))

    smallest, largest = min(CARDINALITY_GRID), max(CARDINALITY_GRID)
    for solver in SOLVERS:
        series = dict(sweep.series(solver))
        # More available bin sizes never hurt.
        assert series[largest] <= series[smallest] + 1e-9
    # With only singleton bins every solver pays the same (no batching choice).
    singleton_costs = {r.solver: r.total_cost for r in sweep.rows if r.x == smallest}
    assert singleton_costs["opq"] <= singleton_costs["baseline"] + 1e-9
