"""Shared fixtures and helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  Two scale
profiles are supported:

* the default profile keeps task counts small enough that the whole suite runs
  in a few minutes on a laptop while preserving every qualitative trend;
* setting ``SLADE_BENCH_FULL=1`` switches to the paper's instance sizes
  (n up to 100,000), which takes considerably longer — use it when producing
  the numbers recorded in ``EXPERIMENTS.md`` at full scale.

The helpers also print the regenerated series as plain-text tables so a
benchmark run doubles as a figure reproduction run.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Sequence

import pytest

from repro.experiments.config import ExperimentConfig

#: When set, benchmarks append their headline numbers to this JSON file so
#: CI can upload the perf trajectory as a per-commit artifact.
RESULTS_ENV = "SLADE_BENCH_RESULTS"

#: Full-scale mode reproduces the paper's axis ranges.
FULL_SCALE = os.environ.get("SLADE_BENCH_FULL", "0") == "1"

#: Default number of atomic tasks for sweep benchmarks.
BENCH_N = int(os.environ.get("SLADE_BENCH_N", "10000" if FULL_SCALE else "2000"))

#: Task counts used by the scalability benchmarks (Figures 6i-l and 8a-b).
SCALE_GRID: Sequence[int] = (
    (1_000, 5_000, 10_000, 30_000, 50_000, 100_000)
    if FULL_SCALE
    else (500, 1_000, 2_000, 5_000)
)

#: Reliability thresholds of Figures 6a-d.
THRESHOLD_GRID: Sequence[float] = (0.87, 0.9, 0.92, 0.95, 0.97)

#: Maximum cardinalities of Figures 6e-h.
CARDINALITY_GRID: Sequence[int] = (
    tuple(range(1, 21)) if FULL_SCALE else (1, 2, 4, 6, 8, 10, 14, 20)
)

#: Sigma / mu grids of Figures 7a-d.
SIGMA_GRID: Sequence[float] = (0.01, 0.02, 0.03, 0.04, 0.05)
MU_GRID: Sequence[float] = (0.87, 0.9, 0.92, 0.95, 0.97)

#: Baseline chunk size (smaller in quick mode to keep LP solves snappy).
BASELINE_OPTIONS: Dict[str, object] = {
    "chunk_size": 256 if FULL_SCALE else 128,
    "seed": 0,
}


def bench_config(dataset: str, n: int = None) -> ExperimentConfig:
    """An :class:`ExperimentConfig` for benchmarks at the current scale."""
    return ExperimentConfig(
        dataset=dataset,
        n=n or BENCH_N,
        solver_options={"baseline": dict(BASELINE_OPTIONS)},
    )


@pytest.fixture(scope="session")
def jelly_config() -> ExperimentConfig:
    """Benchmark configuration on the Jelly dataset."""
    return bench_config("jelly")


@pytest.fixture(scope="session")
def smic_config() -> ExperimentConfig:
    """Benchmark configuration on the SMIC dataset."""
    return bench_config("smic")


def report(title: str, text: str) -> None:
    """Print a regenerated figure table under a clear banner."""
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)
    print(text)


def record_result(benchmark: str, **metrics) -> None:
    """Append one benchmark's headline numbers to ``$SLADE_BENCH_RESULTS``.

    A no-op when the environment variable is unset, so local runs stay
    side-effect free.  The file is a JSON list of flat records
    (``{"benchmark": ..., "recorded_at": ..., "git_sha": ..., metric: value,
    ...}``); every record carries its wall-clock timestamp and commit SHA so
    a number in a CI artifact is attributable to the change that produced
    it.  Benchmarks within one pytest process run sequentially, so
    read-modify-write is safe.
    """
    path_text = os.environ.get(RESULTS_ENV)
    if not path_text:
        return
    from repro.loadgen.trajectory import git_sha, utc_now_iso

    path = Path(path_text)
    records = json.loads(path.read_text()) if path.exists() else []
    records.append({
        "benchmark": benchmark,
        "recorded_at": utc_now_iso(),
        "git_sha": git_sha(Path(__file__).resolve().parent) or "unknown",
        **metrics,
    })
    path.write_text(json.dumps(records, indent=2) + "\n")
