"""Serve SLADE over HTTP and drive it with the stdlib client.

This example boots an in-process :class:`~repro.service.HttpSladeServer`
(the same transport ``repro serve --http HOST:PORT`` runs), then plays three
roles against it:

1. a well-behaved tenant posting single solves and a batch;
2. a greedy tenant that exhausts its token bucket and collects a structured
   429 envelope — without slowing the well-behaved tenant down;
3. an operator scraping ``/healthz`` and ``/metrics``.

Run it directly::

    PYTHONPATH=src python examples/http_service_roundtrip.py
"""

from __future__ import annotations

import asyncio
import threading

from repro.service import (
    AdmissionController,
    ServiceConfig,
    SladeHttpClient,
)
from repro.service.transport.server import HttpSladeServer

#: A tiny three-bin menu: [cardinality, confidence, cost].
BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]


def solve_payload(n: int, threshold: float, request_id: str) -> dict:
    """The compact inline request form the JSON-lines loop also accepts."""
    return {
        "kind": "solve_request",
        "version": 1,
        "request_id": request_id,
        "n": n,
        "threshold": threshold,
        "bins": BINS,
    }


def main() -> None:
    ready = threading.Event()
    holder: dict = {}

    def run_server() -> None:
        async def serve() -> None:
            # Each tenant gets a bucket of 5 requests refilling slowly:
            # team-a's scripted traffic spends exactly 5, the greedy tenant
            # asks for 6 and collects a 429 on the last one.
            server = HttpSladeServer(
                config=ServiceConfig(max_batch_size=8, max_wait_seconds=0.02),
                admission=AdmissionController(rate=0.2, burst=5),
            )
            await server.start("127.0.0.1", 0)
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = stop = asyncio.Event()
            ready.set()
            await stop.wait()
            await server.close()

        asyncio.run(serve())

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    ready.wait(timeout=10)
    base_url = holder["server"].base_url
    print(f"server listening on {base_url}\n")

    # Role 1: a well-behaved tenant.
    team_a = SladeHttpClient(base_url, tenant="team-a")
    reply = team_a.solve(solve_payload(1_000, 0.9, "quickstart-1"))
    body = reply.payload
    print(f"[team-a] solve      -> HTTP {reply.status}, ok={body['ok']}, "
          f"cost={body['total_cost']:.2f}, cache={body['cache']}")
    batch = team_a.solve_batch(
        [solve_payload(500 * (i + 1), 0.9, f"batch-{i}") for i in range(3)],
        include_plan=False,
    )
    costs = [f"{entry['total_cost']:.2f}" for entry in batch.payload["responses"]]
    sizes = {entry["batch_size"] for entry in batch.payload["responses"]}
    print(f"[team-a] batch of 3 -> HTTP {batch.status}, costs={costs}, "
          f"micro-batch sizes={sorted(sizes)}")

    # Role 2: a greedy tenant hits its bucket; team-a is unaffected.
    greedy = SladeHttpClient(base_url, tenant="team-greedy")
    statuses = [
        greedy.solve(solve_payload(100, 0.9, f"greedy-{i}"),
                     include_plan=False).status
        for i in range(5)
    ]
    print(f"[greedy] 5 rapid solves -> statuses {statuses}")
    rejected = greedy.solve(solve_payload(100, 0.9, "greedy-x"),
                            include_plan=False)
    if rejected.status == 429:
        print(f"[greedy] rejection envelope: {rejected.payload['error']} "
              f"(Retry-After: {rejected.header('Retry-After')}s)")
    follow_up = team_a.solve(solve_payload(100, 0.9, "quickstart-2"),
                             include_plan=False)
    print(f"[team-a] still admitted -> HTTP {follow_up.status}, "
          f"cache={follow_up.payload['cache']}\n")

    # Role 3: the operator's view.
    health = team_a.healthz().payload
    print(f"healthz: {health}")
    metrics = team_a.metrics().payload
    for key in (
        "cache.hits", "cache.misses", "service.batch_size.max",
        "admission.admitted", "admission.rate_limited",
        "http.responses.200", "http.responses.429",
    ):
        print(f"  {key:<28} {metrics.get(key, 0.0):g}")

    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(timeout=10)
    print("\nserver drained and stopped cleanly")


if __name__ == "__main__":
    main()
