"""Reproduce the Section 2 motivation study (Figure 3) on the simulated crowd.

The paper's motivation experiments measure how worker confidence and effective
per-task cost change as atomic tasks are packed into larger bins, and how the
offered reward limits which bin sizes finish within the response-time
threshold.  This script regenerates all three panels (Jelly per price, SMIC
per price, Jelly per difficulty) and prints the observations that motivate the
SLADE problem.

Run with::

    python examples/reproduce_motivation.py
"""

from __future__ import annotations

from repro.experiments.motivation import difficulty_series, motivation_series
from repro.experiments.report import format_series

CARDINALITIES = tuple(range(2, 31, 4))


def panel_a_jelly() -> None:
    print("=" * 70)
    print("Figure 3a — Jelly: confidence vs cardinality per price")
    print("=" * 70)
    series = motivation_series(
        dataset="jelly", cardinalities=CARDINALITIES, probes_per_cardinality=3, seed=3
    )
    print(format_series(series.confidence))
    for cost in sorted(series.in_time):
        print(f"  cost {cost}: completes in time up to cardinality "
              f"{series.usable_range(cost)}")
    high, low = series.confidence_drop(0.10)
    print(f"  confidence drop at $0.10: {high:.3f} -> {low:.3f}, while the per-task")
    print(f"  cost drops from {0.10 / CARDINALITIES[0]:.4f} to "
          f"{0.10 / CARDINALITIES[-1]:.4f} USD — the mismatch SLADE exploits.")


def panel_b_smic() -> None:
    print()
    print("=" * 70)
    print("Figure 3b — SMIC: confidence vs cardinality per price")
    print("=" * 70)
    series = motivation_series(
        dataset="smic", cardinalities=CARDINALITIES, probes_per_cardinality=3, seed=3
    )
    print(format_series(series.confidence))
    print("  SMIC confidence sits well below Jelly at every cardinality —")
    print("  micro-expression labelling is genuinely harder (Example 3).")


def panel_c_difficulty() -> None:
    print()
    print("=" * 70)
    print("Figure 3c — Jelly: confidence vs cardinality per difficulty level")
    print("=" * 70)
    curves = difficulty_series(
        difficulties=(1, 2, 3), cardinalities=tuple(range(2, 21, 3)), cost=0.10, seed=3
    )
    print(format_series(curves, series_label="difficulty"))
    print("  Harder dot-counting variants (difficulty 3) lose confidence faster")
    print("  as bins grow, which is why bin menus must be calibrated per task type.")


if __name__ == "__main__":
    panel_a_jelly()
    panel_b_smic()
    panel_c_difficulty()
