"""Micro-expression screening campaign (the paper's Example 3 / SMIC dataset).

A campaign records thousands of portrait photos and asks the crowd to label
each as showing a positive or negative micro-expression.  The task is *hard*:
even trained workers hover around 70-85% accuracy, so reaching a high
reliability per photo requires several independent reviews — exactly the
regime where choosing bin sizes carefully pays off.

The example compares all three solvers from the paper on the SMIC menu across
several reliability targets, and shows how the per-photo cost reacts.

Run with::

    python examples/micro_expression_campaign.py
"""

from __future__ import annotations

from repro import CIPBaselineSolver, GreedySolver, OPQSolver, SladeProblem
from repro.datasets import smic_bin_set

N_PHOTOS = 3_000
TARGETS = (0.85, 0.90, 0.95, 0.97)


def main() -> None:
    print("=" * 70)
    print("Micro-expression screening campaign (SMIC)")
    print("=" * 70)

    bins = smic_bin_set(max_cardinality=20)
    print("\nTask bin menu (minimum in-time price per cardinality):")
    sample = [1, 5, 10, 15, 20]
    print("  cardinality : " + "  ".join(f"{l:>5}" for l in sample))
    print("  confidence  : " + "  ".join(f"{bins[l].confidence:>5.2f}" for l in sample))
    print("  cost (USD)  : " + "  ".join(f"{bins[l].cost:>5.2f}" for l in sample))

    solvers = [
        OPQSolver(),
        GreedySolver(),
        CIPBaselineSolver(chunk_size=128, seed=0),
    ]

    print(f"\nDecomposing {N_PHOTOS} photos at different reliability targets:")
    header = f"  {'target':>6} | " + " | ".join(f"{s.name:>18}" for s in solvers)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for target in TARGETS:
        problem = SladeProblem.homogeneous(
            N_PHOTOS, target, bins, name=f"smic-{target}"
        )
        cells = []
        for solver in solvers:
            result = solver.solve(problem)
            cents_per_photo = result.plan.cost_per_task(problem.task) * 100
            cells.append(f"{result.total_cost:7.2f} ({cents_per_photo:4.2f}c)")
        print(f"  {target:>6} | " + " | ".join(f"{c:>18}" for c in cells))

    print("\nReading the table:")
    print("  * cost per photo rises steeply with the reliability target because")
    print("    SMIC workers are only ~70-85% accurate — more reviews are needed;")
    print("  * the OPQ-Based plans are the cheapest (or tied with Greedy), and")
    print("    the CIP baseline the most expensive, matching the paper's Figure 6b.")


if __name__ == "__main__":
    main()
