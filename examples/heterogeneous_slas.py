"""Heterogeneous reliability targets: per-task service levels.

Real screening pipelines rarely need the same reliability everywhere.  In a
content-moderation queue, posts flagged by an upstream classifier as
borderline need very reliable human review, while clear-cut posts only need a
light touch.  This is the heterogeneous SLADE problem (Section 6): every
atomic task carries its own reliability threshold.

The example builds such a mixed workload, solves it with Greedy, OPQ-Extended
and the CIP baseline, and inspects how the plans treat the demanding tasks
versus the easy ones.

Run with::

    python examples/heterogeneous_slas.py
"""

from __future__ import annotations

import numpy as np

from repro import CIPBaselineSolver, GreedySolver, OPQExtendedSolver, SladeProblem
from repro.datasets import jelly_bin_set, normal_thresholds

N_POSTS = 4_000
SEED = 11


def build_thresholds() -> list[float]:
    """80% routine posts at ~0.85, 15% sensitive at ~0.95, 5% critical at 0.99."""
    rng = np.random.default_rng(SEED)
    routine = normal_thresholds(int(N_POSTS * 0.80), mu=0.85, sigma=0.02, seed=SEED)
    sensitive = normal_thresholds(int(N_POSTS * 0.15), mu=0.95, sigma=0.01, seed=SEED + 1)
    critical = [0.99] * (N_POSTS - len(routine) - len(sensitive))
    thresholds = routine + sensitive + critical
    rng.shuffle(thresholds)
    return [float(t) for t in thresholds]


def main() -> None:
    print("=" * 70)
    print("Content moderation with per-post reliability targets")
    print("=" * 70)

    thresholds = build_thresholds()
    bins = jelly_bin_set(max_cardinality=20)
    problem = SladeProblem.heterogeneous(thresholds, bins, name="moderation")

    print(f"\n{N_POSTS} posts; threshold distribution:")
    for low, high, label in [(0.0, 0.9, "routine (<0.90)"),
                             (0.9, 0.97, "sensitive (0.90-0.97)"),
                             (0.97, 1.0, "critical (>0.97)")]:
        count = sum(1 for t in thresholds if low <= t < high)
        print(f"  {label:<22}: {count:5d} posts")

    solvers = [
        OPQExtendedSolver(),
        GreedySolver(),
        CIPBaselineSolver(chunk_size=128, seed=0),
    ]

    print("\nSolver comparison:")
    print(f"  {'solver':<14} {'cost (USD)':>11} {'cents/post':>11} "
          f"{'postings':>9} {'time (s)':>9}")
    results = {}
    for solver in solvers:
        result = solver.solve(problem)
        results[solver.name] = result
        print(
            f"  {solver.name:<14} {result.total_cost:>11.2f} "
            f"{result.plan.cost_per_task(problem.task) * 100:>11.2f} "
            f"{len(result.plan):>9} {result.elapsed_seconds:>9.3f}"
        )

    # How differently are the demanding posts treated?
    plan = results["opq-extended"].plan
    reliabilities = plan.reliabilities()
    critical_ids = [i for i, t in enumerate(thresholds) if t >= 0.97]
    routine_ids = [i for i, t in enumerate(thresholds) if t < 0.9]
    critical_reviews = np.mean([len(plan.assignments_of(i)) for i in critical_ids[:200]])
    routine_reviews = np.mean([len(plan.assignments_of(i)) for i in routine_ids[:200]])

    print("\nInside the OPQ-Extended plan:")
    print(f"  avg reviews per critical post : {critical_reviews:.2f}")
    print(f"  avg reviews per routine post  : {routine_reviews:.2f}")
    print(f"  min achieved reliability      : {min(reliabilities.values()):.3f}")
    print("\nCritical posts are reviewed more often than routine ones, yet every")
    print("post meets its own target — without paying the critical price for all.")


if __name__ == "__main__":
    main()
