"""Fishing-line discovery: the paper's Example 1, end to end.

A satellite sweep produces tens of thousands of image tiles; the crowd must
flag every tile that might contain an illegal fishing line, and missing one is
expensive (false negatives matter much more than false positives).  This
example runs the complete SLADE workflow against the simulated crowd platform:

1. **Calibrate** — post probe bins with known ground truth to learn the
   ``(cardinality, confidence, cost)`` menu, exactly as Section 3.1 describes.
2. **Decompose** — plan the 5,000-tile job with the OPQ-Based solver so every
   tile reaches 0.95 reliability at minimal cost.
3. **Execute** — post every planned bin to the simulated workers, aggregate
   answers with the any-yes rule, and measure the achieved detection rate.

Run with::

    python examples/fishing_line_discovery.py
"""

from __future__ import annotations

from repro import OPQSolver, SladeProblem
from repro.crowd import PlanExecutor, ProbeCalibrator, jelly_platform
from repro.datasets import make_fishing_line_workload

N_TILES = 5_000
RELIABILITY_TARGET = 0.95
SEED = 2024


def main() -> None:
    print("=" * 70)
    print("Fishing-line discovery (Example 1)")
    print("=" * 70)

    # ------------------------------------------------------------------ step 1
    # Calibrate the bin menu on the live (simulated) marketplace.  Image
    # screening behaves like the Jelly task: easy individually, mildly harder
    # in long batches.
    platform = jelly_platform(seed=SEED)
    calibrator = ProbeCalibrator(
        platform,
        candidate_costs=(0.05, 0.08, 0.10),
        assignments_per_probe=10,
        probes_per_cardinality=3,
        seed=SEED,
    )
    calibration = calibrator.calibrate(cardinalities=range(1, 13))
    bins = calibration.bin_set(name="fishing-line-menu")

    print(f"\nProbe calibration spent {calibration.probe_spend:.2f} USD and produced:")
    print(f"  {'cardinality':>11} {'confidence':>11} {'cost':>7} {'cost/tile':>10}")
    for task_bin in bins:
        print(
            f"  {task_bin.cardinality:>11} {task_bin.confidence:>11.3f} "
            f"{task_bin.cost:>7.2f} {task_bin.cost_per_task:>10.4f}"
        )

    # ------------------------------------------------------------------ step 2
    # Decompose the tile sweep.  Positives (real fishing lines) are rare, but
    # the requester cannot afford to miss them, hence the 0.95 threshold.
    tiles = make_fishing_line_workload(
        n=N_TILES, threshold=RELIABILITY_TARGET, positive_rate=0.02, seed=SEED
    )
    problem = SladeProblem(tiles, bins, name="fishing-line-discovery")
    result = OPQSolver().solve(problem)
    plan = result.plan

    print(f"\nDecomposition plan ({result.solver}):")
    print(f"  postings        : {len(plan)}")
    print(f"  planned cost    : {plan.total_cost:.2f} USD "
          f"({plan.cost_per_task(tiles) * 100:.2f} cents per tile)")
    print(f"  bin usage       : {plan.bin_usage()}")
    print(f"  min reliability : {min(plan.reliabilities().values()):.3f} "
          f"(target {RELIABILITY_TARGET})")

    naive_cost = 2 * bins[1].cost * N_TILES
    print(f"  naive plan cost : {naive_cost:.2f} USD (two singleton reviews per tile)")

    # ------------------------------------------------------------------ step 3
    # Execute the plan on the simulated crowd and check what actually happened.
    report = PlanExecutor(platform).execute(plan, tiles)
    positives = sum(1 for tile in tiles if tile.payload["truth"])

    print("\nExecution on the simulated crowd:")
    print(f"  realised spend      : {report.realised_spend:.2f} USD")
    print(f"  true fishing lines  : {positives}")
    print(f"  detection rate      : {report.detection_rate:.3f}")
    print(f"  false-negative rate : {report.false_negative_rate:.3f}")
    print("\nThe detection rate should sit near the planned reliability target —")
    print("the plan's guarantees survive contact with the (simulated) crowd.")


if __name__ == "__main__":
    main()
