"""Quickstart: decompose a large-scale crowdsourcing task with SLADE.

This walks through the paper's running example (Table 1 / Example 4) and then
scales the same workflow up to a 10,000-task job on the synthetic Jelly menu:

1. describe the available task bins ``(cardinality, confidence, cost)``,
2. build a SLADE problem (atomic tasks + reliability threshold),
3. solve it with the Greedy heuristic and the OPQ-Based approximation,
4. inspect the resulting decomposition plans.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GreedySolver, OPQSolver, SladeProblem, TaskBinSet
from repro.datasets import jelly_bin_set


def running_example() -> None:
    """The four-task running example the paper solves by hand."""
    print("=" * 70)
    print("Running example (Table 1, four atomic tasks, threshold 0.95)")
    print("=" * 70)

    # Table 1: an l-cardinality bin is (cardinality, confidence, cost).
    bins = TaskBinSet.from_triples(
        [(1, 0.90, 0.10), (2, 0.85, 0.18), (3, 0.80, 0.24)], name="table1"
    )
    problem = SladeProblem.homogeneous(n=4, threshold=0.95, bins=bins)

    for solver in (GreedySolver(), OPQSolver()):
        result = solver.solve(problem)
        print(f"\n{solver.name} plan — total cost {result.total_cost:.2f} USD")
        for assignment in result.plan:
            tasks = ", ".join(f"a{i + 1}" for i in assignment.task_ids)
            print(f"  {assignment.task_bin}: [{tasks}]")
    print()
    print("The paper derives 0.74 for Greedy (Example 5) and 0.68 for")
    print("OPQ-Based (Example 9); the optimum is 0.66 (Example 4).")


def large_scale_example() -> None:
    """A 10,000-task decomposition on the synthetic Jelly menu."""
    print()
    print("=" * 70)
    print("Large-scale example (Jelly menu, n = 10,000, threshold 0.9)")
    print("=" * 70)

    bins = jelly_bin_set(max_cardinality=20)
    problem = SladeProblem.homogeneous(n=10_000, threshold=0.9, bins=bins)

    for solver in (GreedySolver(), OPQSolver()):
        result = solver.solve(problem)
        usage = sorted(result.plan.bin_usage().items())
        top = ", ".join(f"{count}x {l}-bins" for l, count in usage[-3:])
        print(
            f"{solver.name:>8}: cost {result.total_cost:8.2f} USD "
            f"({result.plan.cost_per_task(problem.task) * 100:.2f} cents/task), "
            f"{len(result.plan)} postings, {result.elapsed_seconds * 1000:.0f} ms "
            f"[{top}]"
        )

    naive = 2 * bins[1].cost * problem.n
    print(f"\nNaive plan (two singleton bins per task): {naive:.2f} USD")
    print("Batching with SLADE cuts the spend by roughly an order of magnitude")
    print("while guaranteeing every atomic task a reliability of at least 0.9.")


if __name__ == "__main__":
    running_example()
    large_scale_example()
