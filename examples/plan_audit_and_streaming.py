"""Auditing plans, working under a budget, and decomposing a live stream.

Three workflows that go beyond the paper's offline formulation but fall out of
its machinery naturally:

1. **Audit** a candidate plan before spending money on it: compare solvers,
   check the Lemma 2 lower bound, and quantify the optimality gap
   (`repro.analysis`).
2. **Budgeted decomposition**: "I have 25 USD for these 2,000 tiles — how
   reliable can every tile be?" (`repro.algorithms.budgeted`).
3. **Streaming decomposition**: tiles arrive in hourly batches and bins must
   be posted continuously without losing the batching discount
   (`repro.algorithms.online`), with plans serialised to JSON between steps
   (`repro.io`).

Run with::

    python examples/plan_audit_and_streaming.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro import (
    BudgetedDecomposer,
    GreedySolver,
    OnlineDecomposer,
    OPQSolver,
    SladeProblem,
)
from repro.analysis import compare_plans, lower_bound, optimality_gap
from repro.analysis.plan_stats import format_comparison
from repro.core.task import AtomicTask
from repro.datasets import jelly_bin_set
from repro.io import save_plan

N_TILES = 2_000
THRESHOLD = 0.92


def audit_candidate_plans() -> None:
    print("=" * 70)
    print("1. Auditing candidate plans")
    print("=" * 70)
    bins = jelly_bin_set(20)
    problem = SladeProblem.homogeneous(N_TILES, THRESHOLD, bins, name="audit")

    plans = {
        "opq": OPQSolver().solve(problem).plan,
        "greedy": GreedySolver().solve(problem).plan,
    }
    print(format_comparison(compare_plans(plans, problem)))

    bound = lower_bound(problem)
    print(f"\nLemma 2 lower bound on the optimum: {bound:.2f} USD")
    for label, plan in plans.items():
        gap = optimality_gap(plan, problem, precomputed_lower=bound)
        print(f"  {label:<7} optimality gap: {gap:.3f}x")
    print("Both heuristics sit within a few percent of the provable optimum —")
    print("far inside the log(n) worst-case guarantee of Theorem 2.")


def decompose_under_budget() -> None:
    print()
    print("=" * 70)
    print("2. Budget-constrained decomposition")
    print("=" * 70)
    bins = jelly_bin_set(20)
    decomposer = BudgetedDecomposer(bins)
    for budget in (8.0, 15.0, 40.0):
        result = decomposer.decompose(n=N_TILES, budget=budget)
        print(
            f"  budget {budget:6.2f} USD -> reliability {result.reliability:.3f} "
            f"(spend {result.cost:6.2f}, {result.utilisation * 100:5.1f}% of budget, "
            f"{result.iterations} bisection steps)"
        )
    print("More budget buys more redundancy per tile, with diminishing returns —")
    print("the marginal dollar buys less reliability as the target approaches 1.")


def stream_and_persist() -> None:
    print()
    print("=" * 70)
    print("3. Streaming decomposition with serialised plans")
    print("=" * 70)
    bins = jelly_bin_set(20)
    stream = OnlineDecomposer(bins)

    batches = 4
    per_batch = 450
    next_id = 0
    for batch in range(batches):
        emitted = stream.submit_many(
            AtomicTask(next_id + i, THRESHOLD) for i in range(per_batch)
        )
        next_id += per_batch
        print(
            f"  batch {batch + 1}: submitted {per_batch} tiles, emitted "
            f"{len(emitted)} postings, pending {stream.pending_tasks}, "
            f"spend so far {stream.total_cost:.2f} USD"
        )
    stream.flush()
    print(f"  after flush: pending {stream.pending_tasks}, total spend "
          f"{stream.total_cost:.2f} USD")

    offline = OPQSolver().solve(
        SladeProblem.homogeneous(next_id, THRESHOLD, bins)
    )
    print(f"  offline plan for the same {next_id} tiles: {offline.total_cost:.2f} USD")
    print("  streaming regret: "
          f"{(stream.total_cost / offline.total_cost - 1) * 100:.2f}%")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "stream-plan.json"
        save_plan(stream.plan, path)
        size_kb = path.stat().st_size / 1024
        postings = len(json.loads(path.read_text())["assignments"])
        print(f"  plan serialised to {path.name}: {postings} postings, {size_kb:.1f} KiB")


if __name__ == "__main__":
    audit_candidate_plans()
    decompose_under_budget()
    stream_and_persist()
