#!/usr/bin/env python
"""CI perf-trajectory gate: replay the pinned profile, compare, (record).

Boots the production-shaped deployment the trajectory measures — **three**
``repro cached`` shards behind one ``repro serve --http`` host with
``--cache sharded://a,b,c?replicas=2`` — then replays the pinned
``ci-short-v2`` workload (the classic ``ci-short`` mix plus a
mixed-deadline class) through the real ``repro loadtest`` CLI and distils
the report into a :mod:`repro.loadgen.trajectory` entry.

The fresh entry is gated against the **last committed entry for the same
profile** of ``BENCH_trajectory.json`` with the wide default tolerances
(overridable via
``SLADE_TRAJ_*`` environment variables, below): CI fails on an absolute
regression — throughput collapse, latency blow-up, or a non-zero error
budget — that the per-PR ratio benchmarks cannot see.  With ``--record``
the fresh entry is appended to the trajectory file so the PR commits its
own point on the curve.

Artifacts: the full loadtest report is written to ``loadtest-report.json``
(``$SLADE_LOADTEST_REPORT`` overrides) for CI upload.

Run from the repository root::

    python scripts/ci_perf_trajectory.py [--record] [--label "PR 7"]

Environment knobs (all optional):

* ``SLADE_TRAJ_MIN_THROUGHPUT_RATIO`` (default 0.4)
* ``SLADE_TRAJ_MAX_LATENCY_RATIO`` (default 3.0)
* ``SLADE_TRAJ_LATENCY_FLOOR`` seconds (default 0.25)
* ``SLADE_TRAJ_MAX_ERROR_BUDGET`` (default 0.01)
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import os
import queue
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
USING_SRC_TREE = importlib.util.find_spec("repro") is None
if USING_SRC_TREE:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.loadgen.trajectory import (  # noqa: E402
    DEFAULT_LATENCY_FLOOR_SECONDS,
    DEFAULT_MAX_ERROR_BUDGET,
    DEFAULT_MAX_LATENCY_RATIO,
    DEFAULT_MIN_THROUGHPUT_RATIO,
    TRAJECTORY_FILENAME,
    append_entry,
    entry_from_report,
    gate_entry,
    load_trajectory,
)

STARTUP_TIMEOUT = 60
SHUTDOWN_TIMEOUT = 30
LOADTEST_TIMEOUT = 300
REPORT_PATH = Path(os.environ.get("SLADE_LOADTEST_REPORT", "loadtest-report.json"))
TRAJECTORY_PATH = REPO_ROOT / TRAJECTORY_FILENAME
PROFILE = "ci-short-v2"

_checks = 0


def check(condition: bool, label: str) -> None:
    global _checks
    _checks += 1
    if condition:
        print(f"  ok: {label}")
    else:
        print(f"  FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)


def env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    return float(raw) if raw else default


def child_env() -> dict:
    env = dict(os.environ)
    if USING_SRC_TREE:
        env["PYTHONPATH"] = (
            f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        )
    return env


class Subprocess:
    """One banner-printing repro subprocess with clean-shutdown checks."""

    def __init__(self, label: str, args: list, banner_prefix: str) -> None:
        self.label = label
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=child_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        lines: "queue.Queue[str]" = queue.Queue()
        reader = threading.Thread(
            target=lambda: lines.put(self.proc.stderr.readline()), daemon=True
        )
        reader.start()
        try:
            line = lines.get(timeout=STARTUP_TIMEOUT).strip()
        except queue.Empty:
            self.proc.kill()
            self.proc.communicate()
            raise SystemExit(
                f"{label} printed nothing within {STARTUP_TIMEOUT}s"
            ) from None
        if not line.startswith(banner_prefix):
            out, err = self.proc.communicate(timeout=10)
            raise SystemExit(
                f"{label} failed to start: {line!r}\nstdout: {out}\nstderr: {err}"
            )
        self.address = line.rsplit(" ", 1)[1]
        print(f"{label} up at {self.address} (pid {self.proc.pid})")

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            _out, err = self.proc.communicate(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.communicate()
            check(False, f"{self.label} drained within the shutdown timeout")
            return
        check(
            self.proc.returncode == 0,
            f"{self.label} exited 0 on SIGTERM "
            f"(got {self.proc.returncode}): {err.strip()!r}",
        )

    def kill_if_alive(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate()


def run_loadtest(address: str) -> dict:
    """Replay the pinned profile via the real CLI; return the report doc."""
    REPORT_PATH.unlink(missing_ok=True)
    completed = subprocess.run(
        [
            sys.executable, "-m", "repro", "loadtest",
            "--url", address,
            "--profile", PROFILE,
            "--output", str(REPORT_PATH),
        ],
        env=child_env(),
        capture_output=True,
        text=True,
        timeout=LOADTEST_TIMEOUT,
    )
    sys.stdout.write(completed.stdout)
    check(
        completed.returncode == 0,
        f"repro loadtest exited 0 (got {completed.returncode}): "
        f"{completed.stderr.strip()[-500:]!r}",
    )
    check(REPORT_PATH.exists(), f"loadtest wrote its report to {REPORT_PATH}")
    return json.loads(REPORT_PATH.read_text())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--record", action="store_true",
        help=f"append the fresh entry to {TRAJECTORY_FILENAME}",
    )
    parser.add_argument(
        "--label", default=os.environ.get("SLADE_TRAJ_LABEL"),
        help="name the change being measured (recorded in the entry)",
    )
    args = parser.parse_args()

    print("[1/4] boot the three-shard cache ring")
    shards = [
        Subprocess(f"shard-{index}", ["cached", "127.0.0.1:0"],
                   "cache listening on ")
        for index in range(3)
    ]
    spec = "sharded://" + ",".join(s.address for s in shards) + "?replicas=2"
    report = None
    try:
        print("\n[2/4] boot the serve host against the ring")
        host = Subprocess(
            "serve-host",
            ["serve", "--http", "127.0.0.1:0", "--cache", spec],
            "listening on ",
        )
        try:
            print(f"\n[3/4] replay the pinned {PROFILE!r} profile open-loop")
            report = run_loadtest(host.address)
            host.stop()
        finally:
            host.kill_if_alive()
        for shard in shards:
            shard.stop()
    finally:
        for shard in shards:
            shard.kill_if_alive()

    print("\n[4/4] gate the fresh entry against the committed trajectory")
    fresh = entry_from_report(report, label=args.label)
    check(fresh["requests"] > 0, "the replay scheduled at least one request")
    overall = report["overall"]
    check(overall.get("infeasible", 0) == 0,
          "no served plan failed its reliability threshold")
    deadline = overall.get("deadline", {})
    check(deadline.get("requests", 0) > 0,
          "the mix exercised the deadline class")
    print(
        f"  deadline: {deadline.get('met', 0)} met / "
        f"{deadline.get('missed', 0)} missed / "
        f"{deadline.get('expired', 0)} expired / "
        f"{deadline.get('degraded', 0)} best-so-far "
        f"(hit rate {deadline.get('hit_rate', 0.0):.1%})"
    )
    # Entries from retired profiles measure a different offered load; gate
    # only against our own profile's curve (a profile bump re-seeds it).
    history = [
        entry for entry in load_trajectory(TRAJECTORY_PATH)
        if entry.get("profile") == PROFILE
    ]
    if history:
        baseline = history[-1]
        # Entries recorded before the vectorized core existed carry no
        # opq_core field; they were all built by the pure-Python core.
        baseline_core = baseline.get("opq_core", "python")
        if baseline_core != fresh["opq_core"]:
            print(
                f"  NOTICE: OPQ core changed — baseline was recorded with "
                f"the {baseline_core!r} core, this run used "
                f"{fresh['opq_core']!r}; absolute numbers are not directly "
                f"comparable (the wide tolerance band still applies)"
            )
        violations = gate_entry(
            fresh,
            baseline,
            min_throughput_ratio=env_float(
                "SLADE_TRAJ_MIN_THROUGHPUT_RATIO", DEFAULT_MIN_THROUGHPUT_RATIO
            ),
            max_latency_ratio=env_float(
                "SLADE_TRAJ_MAX_LATENCY_RATIO", DEFAULT_MAX_LATENCY_RATIO
            ),
            latency_floor_seconds=env_float(
                "SLADE_TRAJ_LATENCY_FLOOR", DEFAULT_LATENCY_FLOOR_SECONDS
            ),
            max_error_budget=env_float(
                "SLADE_TRAJ_MAX_ERROR_BUDGET", DEFAULT_MAX_ERROR_BUDGET
            ),
        )
        for violation in violations:
            print(f"  REGRESSION: {violation}", file=sys.stderr)
        check(not violations, "no absolute regression against "
              f"{baseline.get('label') or baseline.get('git_sha', '?')[:12]}")
        print(
            f"  baseline {baseline['throughput_rps']:.1f} rps "
            f"p99 {baseline['latency_seconds']['p99'] * 1000:.1f}ms -> "
            f"fresh {fresh['throughput_rps']:.1f} rps "
            f"p99 {fresh['latency_seconds']['p99'] * 1000:.1f}ms"
        )
    else:
        # First run ever: nothing to gate against, but the error budget
        # ceiling still applies — a broken deployment must not seed the file.
        budget = fresh["error_budget"]
        ceiling = env_float("SLADE_TRAJ_MAX_ERROR_BUDGET", DEFAULT_MAX_ERROR_BUDGET)
        check(budget <= ceiling,
              f"first-entry error budget {budget:.2%} under {ceiling:.2%}")
        print("  no committed baseline yet; gate limited to the error budget")

    if args.record:
        entries = append_entry(TRAJECTORY_PATH, fresh)
        print(f"  recorded entry {len(entries)} in {TRAJECTORY_PATH.name}")
    print(f"\nperf trajectory: all {_checks} checks passed")


if __name__ == "__main__":
    main()
