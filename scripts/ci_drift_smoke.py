#!/usr/bin/env python
"""CI smoke test for the closed calibration loop, over a real subprocess.

Boots ``repro serve --http`` with an aggressive drift sweep, then walks the
drift scenario end to end on the wire:

1. steady-state solves on a calibrated menu fill the plan cache;
2. ``POST /v2/feedback`` reports that the three-task bin's accuracy has
   collapsed from its calibrated 0.8 to ~0.5;
3. the server's background sweep recalibrates on its own — no restart, no
   cache flush, no failed request — and ``drift.*`` metrics confirm the
   targeted invalidation;
4. the same client, still sending the *stale* menu, receives plans priced
   at the observed accuracy whose reliability guarantee therefore holds
   against the crowd's true behaviour;
5. the server drains to exit 0 on SIGTERM.

Exits non-zero on the first failed check.  Run from the repository root::

    python scripts/ci_drift_smoke.py
"""

from __future__ import annotations

import importlib.util
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
USING_SRC_TREE = importlib.util.find_spec("repro") is None
if USING_SRC_TREE:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import SladeHttpClient  # noqa: E402

#: The calibrated menu; the optimal 0.95 plan uses two three-task bins.
BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]
TRUE_ACCURACY = 0.5
DECAYED_CARDINALITY = 3
THRESHOLD = 0.95
STARTUP_TIMEOUT = 60
SHUTDOWN_TIMEOUT = 30
SWEEP_TIMEOUT = 30

_checks = 0


def check(condition: bool, label: str) -> None:
    global _checks
    _checks += 1
    if condition:
        print(f"  ok: {label}")
    else:
        print(f"  FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)


def solve_payload(request_id: str) -> dict:
    return {
        "kind": "solve_request",
        "version": 1,
        "n": 30,
        "threshold": THRESHOLD,
        "bins": BINS,
        "request_id": request_id,
    }


def start_server() -> "subprocess.Popen[str]":
    env = dict(os.environ)
    if USING_SRC_TREE:
        env["PYTHONPATH"] = (
            f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        )
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--http", "127.0.0.1:0",
         "--drift-window", "100",
         "--drift-min-observations", "20",
         "--drift-tolerance", "0.05",
         "--drift-check-seconds", "0.1"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def read_banner(proc: "subprocess.Popen[str]") -> str:
    lines: "queue.Queue[str]" = queue.Queue()
    reader = threading.Thread(
        target=lambda: lines.put(proc.stderr.readline()), daemon=True
    )
    reader.start()
    try:
        line = lines.get(timeout=STARTUP_TIMEOUT).strip()
    except queue.Empty:
        proc.kill()
        proc.communicate()
        raise SystemExit(
            f"server printed nothing within {STARTUP_TIMEOUT}s"
        ) from None
    if not line.startswith("listening on http://"):
        out, err = proc.communicate(timeout=10)
        raise SystemExit(
            f"server failed to start: {line!r}\nstdout: {out}\nstderr: {err}"
        )
    return line.split(" ", 2)[2]


def main() -> None:
    proc = start_server()
    try:
        base_url = read_banner(proc)
        print(f"server up at {base_url} (pid {proc.pid})")
        client = SladeHttpClient(base_url, tenant="drift-smoke", timeout=60)

        print("\n[1/4] steady state on the calibrated menu")
        before = [client.solve(solve_payload(f"pre-{i}")) for i in range(5)]
        check(all(r.status == 200 and r.payload["ok"] for r in before),
              "5 solves on the calibrated menu all ok")
        baseline_cost = before[0].payload["total_cost"]
        check(all(abs(r.payload["total_cost"] - baseline_cost) < 1e-9
                  for r in before),
              "steady-state cost is stable")

        print("\n[2/4] probe outcomes reveal the decay")
        feedback = {
            "bins": BINS,
            "observations": [
                [DECAYED_CARDINALITY, index % 10 < int(TRUE_ACCURACY * 10)]
                for index in range(40)
            ],
        }
        posted = client.feedback(feedback)
        check(posted.status == 200 and posted.payload["recorded"] == 40,
              "POST /v2/feedback recorded 40 observations")

        print("\n[3/4] the background sweep recalibrates")
        deadline = time.monotonic() + SWEEP_TIMEOUT
        metrics = {}
        while time.monotonic() < deadline:
            metrics = client.metrics().payload
            if metrics.get("drift.recalibrations"):
                break
            time.sleep(0.1)
        check(metrics.get("drift.recalibrations", 0.0) >= 1.0,
              "drift.recalibrations on /metrics")
        check(metrics.get("drift.invalidated_keys", 0.0) >= 1.0,
              "stale entries removed with targeted deletes")
        check(metrics.get("drift.failed_revalidations", 0.0) == 0.0,
              "no failed revalidations")
        check(metrics.get("drift.revalidated_entries", 0.0) >= 1.0,
              "recorded thresholds re-planned at the new epoch")

        print("\n[4/4] stale-menu traffic now prices the true accuracy")
        after = [client.solve(solve_payload(f"post-{i}")) for i in range(5)]
        check(all(r.status == 200 and r.payload["ok"] for r in after),
              "5 solves after recalibration all ok (zero request errors)")
        recalibrated_cost = after[-1].payload["total_cost"]
        check(recalibrated_cost > baseline_cost,
              f"guarantee priced at true accuracy costs more "
              f"({recalibrated_cost:.2f} > {baseline_cost:.2f})")
        plan = after[-1].solve_response().plan
        reliabilities = plan.reliabilities()
        check(bool(reliabilities)
              and min(reliabilities.values()) >= THRESHOLD - 1e-9,
              "served plans meet the threshold against the true accuracies")
        final = client.metrics().payload
        check(final.get("service.failures", 0.0) == 0.0,
              "no service failures across the run")
        check(final.get("drift.monitored_menus", 0.0) == 1.0,
              "drift gauges exposed on /metrics")

        proc.send_signal(signal.SIGTERM)
        try:
            _out, err = proc.communicate(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate()
            check(False, "server drained within the shutdown timeout")
            return
        check(proc.returncode == 0,
              f"server exited 0 on SIGTERM (stderr: {err.strip()!r})")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    print(f"\ndrift smoke: all {_checks} checks passed")


if __name__ == "__main__":
    main()
