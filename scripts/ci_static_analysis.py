#!/usr/bin/env python
"""CI driver for the static-analysis job.

Three stages, reported into ``static-analysis-report.json`` (uploaded as a
CI artifact):

1. **repro lint** — the project's own AST rules (SLD001–SLD005) over
   ``src/repro``, gated against the committed ``lint-baseline.json``.
   Any *new* finding fails the job.
2. **typed-core mypy** — ``repro.engine.backends`` and
   ``repro.service.transport`` must type-check clean under the strict-ish
   sections of ``mypy.ini``.  Failures gate.
3. **full-tree mypy** — informational only: the permissive run over all of
   ``src/repro`` is recorded in the report but never fails the job.

Run locally with ``--skip-mypy`` when mypy is not installed; stage 1 is
dependency-free.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
REPORT_PATH = REPO_ROOT / "static-analysis-report.json"

#: The strict-ish packages; keep in sync with the mypy.ini sections.
TYPED_CORE = (
    "src/repro/engine/backends",
    "src/repro/service/transport",
)


def run_repro_lint() -> "tuple[bool, dict]":
    sys.path.insert(0, str(SRC))
    from repro.lint.reporters import render_json, render_text
    from repro.lint.runner import run_lint

    result = run_lint(
        [SRC / "repro"],
        baseline_path=REPO_ROOT / "lint-baseline.json",
        root=REPO_ROOT,
    )
    print(render_text(result))
    return (not result.failed), render_json(result)


def run_mypy(targets: "list[str]") -> "tuple[bool, dict]":
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini", *targets],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    output = (proc.stdout + proc.stderr).strip()
    print(output or "(no mypy output)")
    return proc.returncode == 0, {
        "targets": targets,
        "returncode": proc.returncode,
        "output": output.splitlines(),
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--skip-mypy",
        action="store_true",
        help="run only the dependency-free repro-lint stage",
    )
    args = parser.parse_args(argv)

    report: dict = {"kind": "static_analysis_report", "version": 1}
    failures: "list[str]" = []

    print("== repro lint ==")
    lint_ok, report["lint"] = run_repro_lint()
    if not lint_ok:
        failures.append("repro lint reported new findings")

    if args.skip_mypy:
        report["mypy"] = {"skipped": True}
    else:
        print("\n== mypy (typed core, gating) ==")
        core_ok, core_report = run_mypy(list(TYPED_CORE))
        if not core_ok:
            failures.append("typed-core mypy failed")

        print("\n== mypy (full tree, informational) ==")
        _, full_report = run_mypy(["src/repro"])
        report["mypy"] = {
            "typed_core": core_report,
            "full_tree": full_report,
        }

    report["failures"] = failures
    REPORT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nreport written to {REPORT_PATH.name}")
    if failures:
        print("FAILED: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("static analysis clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
