#!/usr/bin/env python
"""CI smoke test: fleets warming themselves through `repro cached`.

Part one — the single-server fleet.  Boots one cache server, then runs two
sequential `repro serve --http` processes pointed at it:

1. the **first host** pays the cold OPQ builds and writes them through to the
   shared cache;
2. the **second host** must serve every request from the shared cache — its
   `/metrics` must show **zero cold builds** (`cache.misses == 0`) and plans
   byte-identical to the first host's.

Part two — the sharded fleet.  Boots **three** cache servers and a serve
host with `--cache sharded://a,b,c?replicas=2`:

3. the host pays one cold build per fingerprint, each written to two ring
   successors;
4. one shard is then **killed with SIGKILL** mid-run, and the same traffic
   replayed: every request must still succeed (zero request errors), the
   cold-build count must not grow (reads fail over to the surviving
   replica), and plans stay byte-identical;
5. a second host joins the degraded ring and must start warm.

STATS documents are written to ``cache-server-stats.json`` (part one) and
``cache-shard-<i>-stats.json`` (one per surviving shard) so CI uploads them
as artifacts alongside ``bench-results.json``.  Every process except the
murdered shard must drain to exit 0 on SIGTERM, and no listener may survive.

Exits non-zero on the first failed check.  Run from the repository root::

    python scripts/ci_fleet_smoke.py

Uses the installed package when available and falls back to the in-repo
sources otherwise, so it works both in CI (after ``pip install .``) and in a
plain checkout.
"""

from __future__ import annotations

import importlib.util
import json
import os
import queue
import signal
import subprocess
import sys
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
USING_SRC_TREE = importlib.util.find_spec("repro") is None
if USING_SRC_TREE:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import SladeHttpClient, TransportError  # noqa: E402

BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]
STARTUP_TIMEOUT = 60
SHUTDOWN_TIMEOUT = 30
STATS_PATH = Path(os.environ.get("SLADE_CACHE_STATS", "cache-server-stats.json"))
SHARD_STATS_TEMPLATE = os.environ.get(
    "SLADE_SHARD_STATS", "cache-shard-{index}-stats.json"
)
#: Distinct fingerprints for the sharded phase, so every shard owns keys.
SHARD_THRESHOLDS = [0.90, 0.92, 0.93, 0.95, 0.96, 0.97]

_checks = 0


def check(condition: bool, label: str) -> None:
    global _checks
    _checks += 1
    if condition:
        print(f"  ok: {label}")
    else:
        print(f"  FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)


def solve_payload(n: int, threshold: float = 0.95) -> dict:
    return {
        "kind": "solve_request",
        "version": 1,
        "n": n,
        "threshold": threshold,
        "bins": BINS,
    }


def drive_shard_traffic(client, label: str) -> list:
    """One solve per SHARD_THRESHOLDS fingerprint; returns canonical plans."""
    plans = []
    for i, threshold in enumerate(SHARD_THRESHOLDS):
        reply = client.solve(solve_payload(60 + 10 * i, threshold))
        check(reply.status == 200 and reply.payload["ok"] is True,
              f"{label}: solve t={threshold} ok")
        plans.append(json.dumps(reply.payload["plan"], sort_keys=True))
    return plans


class Subprocess:
    """One banner-printing repro subprocess with clean-shutdown checks."""

    def __init__(self, label: str, args: list, banner_prefix: str) -> None:
        self.label = label
        env = dict(os.environ)
        if USING_SRC_TREE:
            env["PYTHONPATH"] = (
                f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
            )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        lines: "queue.Queue[str]" = queue.Queue()
        reader = threading.Thread(
            target=lambda: lines.put(self.proc.stderr.readline()), daemon=True
        )
        reader.start()
        try:
            line = lines.get(timeout=STARTUP_TIMEOUT).strip()
        except queue.Empty:
            self.proc.kill()
            self.proc.communicate()
            raise SystemExit(
                f"{label} printed nothing within {STARTUP_TIMEOUT}s"
            ) from None
        if not line.startswith(banner_prefix):
            out, err = self.proc.communicate(timeout=10)
            raise SystemExit(
                f"{label} failed to start: {line!r}\nstdout: {out}\nstderr: {err}"
            )
        self.address = line.rsplit(" ", 1)[1]
        print(f"{label} up at {self.address} (pid {self.proc.pid})")

    def stop(self) -> None:
        self.proc.send_signal(signal.SIGTERM)
        try:
            _out, err = self.proc.communicate(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.communicate()
            check(False, f"{self.label} drained within the shutdown timeout")
            return
        check(
            self.proc.returncode == 0,
            f"{self.label} exited 0 on SIGTERM "
            f"(got {self.proc.returncode}): {err.strip()!r}",
        )

    def kill_if_alive(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate()


def run_serve_host(label: str, cache_address: str) -> "tuple[list, dict]":
    """Boot one fleet member, drive solves, return (plans, metrics)."""
    host = Subprocess(
        label,
        ["serve", "--http", "127.0.0.1:0",
         "--cache", f"tiered:memory+remote://{cache_address}"],
        "listening on ",
    )
    try:
        client = SladeHttpClient(host.address, timeout=60)
        plans = []
        for i in range(4):
            reply = client.solve(solve_payload(100 + 25 * i))
            check(reply.status == 200 and reply.payload["ok"] is True,
                  f"{label}: solve {i} ok")
            plans.append(json.dumps(reply.payload["plan"], sort_keys=True))
        metrics = client.metrics().payload
        host.stop()
        return plans, metrics
    finally:
        host.kill_if_alive()


def run_sharded_fleet_smoke() -> None:
    """Part two: three shards, replication factor 2, one SIGKILLed mid-run."""
    from repro.engine.backends import RemoteBackend

    print("\n[4/6] boot a three-shard cache ring")
    shards = [
        Subprocess(f"shard-{index}", ["cached", "127.0.0.1:0", "--stats"],
                   "cache listening on ")
        for index in range(3)
    ]
    victim, survivors = shards[0], shards[1:]
    spec = "sharded://" + ",".join(s.address for s in shards) + \
        "?replicas=2&timeout=0.5"
    try:
        print("\n[5/6] one host pays the cold builds, then loses a shard")
        host = Subprocess(
            "sharded-host",
            ["serve", "--http", "127.0.0.1:0", "--cache", spec],
            "listening on ",
        )
        try:
            client = SladeHttpClient(host.address, timeout=60)
            cold_plans = drive_shard_traffic(client, "sharded-host (cold)")
            metrics = client.metrics().payload
            check(metrics.get("cache.misses", 0) == len(SHARD_THRESHOLDS),
                  "sharded host built each fingerprint exactly once")

            # Murder one shard outright: no drain, no goodbye.
            victim.proc.kill()
            victim.proc.communicate()
            print(f"shard-0 ({victim.address}) SIGKILLed")

            warm_plans = drive_shard_traffic(client, "sharded-host (degraded)")
            check(warm_plans == cold_plans,
                  "plans byte-identical across the shard death")
            metrics = client.metrics().payload
            check(metrics.get("cache.misses", 0) == len(SHARD_THRESHOLDS),
                  "zero new cold builds after the shard death "
                  "(reads failed over to replicas)")
            check(metrics.get("sharded_cache.fail_open", 0) == 0,
                  "no whole-ring fail-open while two shards survive")
            host.stop()
        finally:
            host.kill_if_alive()

        print("\n[6/6] a second host joins the degraded ring fully warm")
        joiner = Subprocess(
            "sharded-joiner",
            ["serve", "--http", "127.0.0.1:0", "--cache", spec],
            "listening on ",
        )
        try:
            client = SladeHttpClient(joiner.address, timeout=60)
            joiner_plans = drive_shard_traffic(client, "sharded-joiner")
            check(joiner_plans == cold_plans,
                  "joiner plans byte-identical to the first host's")
            metrics = client.metrics().payload
            check(metrics.get("cache.misses", 0) == 0,
                  "joiner /metrics shows zero cold builds on a degraded ring")
            joiner.stop()
        finally:
            joiner.kill_if_alive()

        # Per-shard STATS artifacts from the survivors.  Placement depends
        # on the ephemeral ports, so an individual survivor may own zero of
        # the test keys — but with R=2 every key kept at least one surviving
        # replica, so the survivors together hold >= one copy per key.
        surviving_keys = 0
        for index, shard in enumerate(shards):
            if shard is victim:
                continue
            shard_host, shard_port = shard.address.rsplit(":", 1)
            probe = RemoteBackend(shard_host, int(shard_port))
            stats = probe.server_stats()
            probe.close()
            check(stats is not None, f"shard-{index} STATS answered")
            surviving_keys += stats["keys"]
            path = Path(SHARD_STATS_TEMPLATE.format(index=index))
            path.write_text(json.dumps(stats, indent=2) + "\n")
            print(f"shard-{index} stats written to {path}")
        check(surviving_keys >= len(SHARD_THRESHOLDS),
              "survivors hold at least one replica of every fingerprint")

        for shard in survivors:
            shard.stop()
    finally:
        for shard in shards:
            shard.kill_if_alive()


def main() -> None:
    print("[1/6] boot the shared cache server")
    cached = Subprocess(
        "cache server", ["cached", "127.0.0.1:0", "--stats"],
        "cache listening on ",
    )
    try:
        print("\n[2/6] first fleet member pays the cold builds")
        first_plans, first_metrics = run_serve_host("host-1", cached.address)
        check(first_metrics.get("cache.misses", 0) == 1,
              "host-1 built the shared menu exactly once")
        check(first_metrics.get("remote_cache.server_keys", 0) == 1,
              "host-1 wrote the build through to the cache server")

        print("\n[3/6] second fleet member starts fully warm")
        second_plans, second_metrics = run_serve_host("host-2", cached.address)
        check(second_metrics.get("cache.misses", 0) == 0,
              "host-2 /metrics shows zero cold builds")
        check(second_metrics.get("tiered.remote_hits", 0) >= 1,
              "host-2 promoted the shared entry from the cache server")
        check(second_plans == first_plans,
              "fleet plans are byte-identical across hosts")

        # Preserve the server's view of the exchange for the CI artifact.
        from repro.engine.backends import RemoteBackend

        host, port = cached.address.rsplit(":", 1)
        probe = RemoteBackend(host, int(port))
        stats = probe.server_stats()
        probe.close()
        check(stats is not None, "cache server STATS answered")
        check(stats["keys"] == 1 and stats["hits"] >= 1,
              "cache server stored one key and served at least one hit")
        STATS_PATH.write_text(json.dumps(stats, indent=2) + "\n")
        print(f"cache server stats written to {STATS_PATH}")

        cached.stop()
        try:
            SladeHttpClient(f"http://{cached.address}", timeout=2).healthz()
            check(False, "cache port released after shutdown")
        except TransportError:
            check(True, "cache port released after shutdown")
    finally:
        cached.kill_if_alive()

    run_sharded_fleet_smoke()

    print(f"\nfleet smoke: all {_checks} checks passed")


if __name__ == "__main__":
    main()
