#!/usr/bin/env python
"""CI smoke test: boot `repro serve --http`, drive it over the wire, shut it
down cleanly, and fail loudly on any broken round-trip or leaked process.

Four server runs cover the transport surface:

1. **functional** (no admission limits): solve, batch, healthz and metrics
   round-trips, including the micro-batch counters that prove concurrent
   requests coalesce;
2. **admission** (tight per-tenant bucket): tenant A collects a structured
   429 with ``Retry-After`` while tenant B keeps being admitted;
3. **deadline** (v2 surface): a budgeted solve answers with a provenance
   block, an already-expired budget answers a structured 503 without any
   planner work, and a misspelled request field is rejected;
4. **auth** (``--auth-token``): solve endpoints demand the shared secret
   (401 envelope otherwise) while health/metrics stay open.

Each run ends with SIGTERM; the server must drain and exit 0 within the
timeout, and its process must actually be gone afterwards.

Exits non-zero on the first failed check.  Run from the repository root::

    python scripts/ci_http_smoke.py

Uses the installed package when available and falls back to the in-repo
sources otherwise, so it works both in CI (after ``pip install .``) and in a
plain checkout.
"""

from __future__ import annotations

import importlib.util
import os
import queue
import signal
import subprocess
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
# Prefer the installed package: in CI this script runs after `pip install .`
# and must exercise the wheel, not the checkout (a packaging regression has
# to fail here).  Only a plain checkout falls back to src/.
USING_SRC_TREE = importlib.util.find_spec("repro") is None
if USING_SRC_TREE:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import SladeHttpClient, TransportError  # noqa: E402

BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]
STARTUP_TIMEOUT = 60
SHUTDOWN_TIMEOUT = 30

_checks = 0


def check(condition: bool, label: str) -> None:
    global _checks
    _checks += 1
    if condition:
        print(f"  ok: {label}")
    else:
        print(f"  FAIL: {label}", file=sys.stderr)
        raise SystemExit(1)


def solve_payload(n: int, threshold: float = 0.9, **extra) -> dict:
    payload = {
        "kind": "solve_request",
        "version": 1,
        "n": n,
        "threshold": threshold,
        "bins": BINS,
    }
    payload.update(extra)
    return payload


class Server:
    """One `repro serve --http` subprocess with clean-shutdown checks."""

    def __init__(self, *extra_args: str) -> None:
        env = dict(os.environ)
        if USING_SRC_TREE:
            env["PYTHONPATH"] = (
                f"{REPO_ROOT / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
            )
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--http", "127.0.0.1:0", "--stats", *extra_args],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        # Read the banner on a thread so a server that hangs *without*
        # printing anything still fails within STARTUP_TIMEOUT rather than
        # blocking this job on a stderr readline forever.
        lines: "queue.Queue[str]" = queue.Queue()
        reader = threading.Thread(
            target=lambda: lines.put(self.proc.stderr.readline()), daemon=True
        )
        reader.start()
        try:
            line = lines.get(timeout=STARTUP_TIMEOUT).strip()
        except queue.Empty:
            self.proc.kill()
            self.proc.communicate()
            raise SystemExit(
                f"server printed nothing within {STARTUP_TIMEOUT}s"
            ) from None
        if not line.startswith("listening on http://"):
            out, err = self.proc.communicate(timeout=10)
            raise SystemExit(
                f"server failed to start: {line!r}\nstdout: {out}\nstderr: {err}"
            )
        self.base_url = line.split(" ", 2)[2]
        print(f"server up at {self.base_url} (pid {self.proc.pid})")

    def stop(self) -> None:
        """SIGTERM must drain to exit 0; the process must be gone after."""
        self.proc.send_signal(signal.SIGTERM)
        try:
            _out, err = self.proc.communicate(timeout=SHUTDOWN_TIMEOUT)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.communicate()
            check(False, "server drained within the shutdown timeout")
            return
        check(self.proc.returncode == 0,
              f"server exited 0 on SIGTERM (got {self.proc.returncode}): {err.strip()!r}")
        # The leak probe: nothing (the process or any child it left behind)
        # may still be answering on the port after the exit.
        try:
            SladeHttpClient(self.base_url, timeout=2).healthz()
            check(False, "port released after shutdown (no leaked listener)")
        except TransportError:
            check(True, "port released after shutdown (no leaked listener)")

    def kill_if_alive(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.communicate()


def functional_phase() -> None:
    print("\n[1/4] functional round-trips")
    server = Server()
    try:
        client = SladeHttpClient(server.base_url, tenant="smoke", timeout=60)

        health = client.healthz()
        check(health.status == 200 and health.payload["status"] == "ok",
              "GET /healthz")

        reply = client.solve(solve_payload(1_000))
        check(reply.status == 200 and reply.payload["ok"] is True,
              "POST /v1/solve returns an ok response")
        check(reply.payload["plan"] is not None, "response carries the plan")
        check(reply.payload["cache"] == "miss", "first solve is a cache miss")

        batch = client.solve_batch(
            [solve_payload(200 * (i + 1)) for i in range(4)], include_plan=False
        )
        rows = batch.payload["responses"]
        check(batch.status == 200 and len(rows) == 4, "POST /v1/solve/batch")
        check(all(row["ok"] for row in rows), "batch rows all ok")
        check(all(row["cache"] == "hit" for row in rows),
              "batch rides the warmed cache")

        # Concurrent single solves coalesce into shared micro-batches.
        with ThreadPoolExecutor(max_workers=6) as pool:
            replies = list(pool.map(
                lambda i: SladeHttpClient(server.base_url, timeout=60).solve(
                    solve_payload(100 + i), include_plan=False),
                range(6),
            ))
        check(all(r.status == 200 and r.payload["ok"] for r in replies),
              "6 concurrent solves all ok")

        metrics = client.metrics()
        check(metrics.status == 200, "GET /metrics?format=json")
        check(metrics.payload["cache.misses"] == 1.0,
              "one OPQ build across every request")
        check(metrics.payload["service.batch_size.max"] > 1,
              "micro-batch counters show coalescing")
        text = client.metrics(fmt="text")
        check(text.text.startswith("slade_"), "GET /metrics Prometheus text")

        bad = client._request("POST", "/v1/solve", None, None)
        check(bad.status == 400 and bad.payload["error"]["type"] == "JSONDecodeError",
              "malformed JSON answers a structured 400 envelope")

        server.stop()
    finally:
        server.kill_if_alive()


def admission_phase() -> None:
    print("\n[2/4] admission control")
    server = Server("--rate", "0.05", "--burst", "2")
    try:
        tenant_a = SladeHttpClient(server.base_url, tenant="tenant-a", timeout=60)
        tenant_b = SladeHttpClient(server.base_url, tenant="tenant-b", timeout=60)

        check(tenant_a.solve(solve_payload(100), include_plan=False).status == 200,
              "tenant A: first request admitted")
        check(tenant_a.solve(solve_payload(101), include_plan=False).status == 200,
              "tenant A: burst capacity admitted")
        rejected = tenant_a.solve(solve_payload(102), include_plan=False)
        check(rejected.status == 429, "tenant A: bucket exhausted -> 429")
        check(rejected.payload["error"]["type"] == "RateLimitedError",
              "429 carries the RateLimitedError envelope")
        check(int(rejected.header("Retry-After", "0")) >= 1,
              "429 carries Retry-After")
        check(tenant_b.solve(solve_payload(103), include_plan=False).status == 200,
              "tenant B: unaffected by tenant A's quota")

        metrics = tenant_b.metrics().payload
        check(metrics["admission.rate_limited"] == 1.0,
              "admission counters recorded the rejection")
        check(metrics["http.responses.429"] == 1.0,
              "HTTP status counters recorded the rejection")

        server.stop()
    finally:
        server.kill_if_alive()


def deadline_phase() -> None:
    print("\n[3/4] deadline propagation (v2 surface)")
    server = Server()
    try:
        client = SladeHttpClient(server.base_url, tenant="smoke", timeout=60)

        reply = client.solve(solve_payload(500), deadline_ms=5_000)
        check(reply.status == 200 and reply.payload["ok"] is True,
              "budgeted POST /v2/solve returns ok")
        check(reply.payload.get("schema_version") == 2,
              "response carries schema_version 2")
        provenance = reply.payload.get("provenance") or {}
        check(provenance.get("quality") in ("optimal", "refined", "greedy"),
              f"provenance carries a quality marker ({provenance.get('quality')})")
        check(provenance.get("tier") in ("cache", "build", "greedy", "solver"),
              f"provenance names the answering tier ({provenance.get('tier')})")
        check(0 < provenance.get("remaining_budget_ms", -1.0) <= 5_000,
              "provenance reports the remaining budget at completion")

        builds_before = client.metrics().payload.get("cache.misses", 0.0)
        expired = client.solve(solve_payload(501), deadline_ms=0.001)
        check(expired.status == 503, "already-expired budget -> 503")
        check(expired.payload["error"]["type"] == "DeadlineExceededError",
              "503 carries the DeadlineExceededError envelope")
        metrics = client.metrics().payload
        check(metrics.get("cache.misses", 0.0) == builds_before,
              "expired request triggered no planner work")
        check(metrics.get("deadline.expired", 0.0) == 1.0,
              "deadline.expired counter recorded the rejection")
        check(metrics.get("deadline.hits", 0.0) >= 1.0,
              "deadline.hits counter recorded the served budget")

        typo = client.solve(solve_payload(502, dead_line_ms=50))
        check(typo.status == 400
              and typo.payload["error"]["type"] == "RequestValidationError",
              "unknown request field -> structured 400")

        v1 = SladeHttpClient(server.base_url, timeout=60, api_version="v1")
        check(v1.solve(solve_payload(500), include_plan=False).status == 200,
              "legacy /v1/solve alias still answers")

        server.stop()
    finally:
        server.kill_if_alive()


def auth_phase() -> None:
    print("\n[4/4] shared-secret auth")
    server = Server("--auth-token", "smoke-secret")
    try:
        anonymous = SladeHttpClient(server.base_url, tenant="smoke", timeout=60)
        wrong = SladeHttpClient(server.base_url, auth_token="wrong", timeout=60)
        trusted = SladeHttpClient(
            server.base_url, tenant="smoke", auth_token="smoke-secret", timeout=60
        )

        denied = anonymous.solve(solve_payload(100), include_plan=False)
        check(denied.status == 401, "missing token -> 401")
        check(denied.payload["error"]["type"] == "AuthenticationError",
              "401 carries the AuthenticationError envelope")
        check(wrong.solve(solve_payload(100), include_plan=False).status == 401,
              "wrong token -> 401")
        check(trusted.solve(solve_payload(100), include_plan=False).status == 200,
              "bearer token admitted")
        check(anonymous.healthz().status == 200, "healthz stays open")
        metrics = anonymous.metrics()
        check(metrics.status == 200, "metrics stays open")
        check(metrics.payload.get("admission.unauthorized", 0.0) == 2.0,
              "admission.unauthorized counted both rejections")

        server.stop()
    finally:
        server.kill_if_alive()


def main() -> None:
    functional_phase()
    admission_phase()
    deadline_phase()
    auth_phase()
    print(f"\nhttp smoke: all {_checks} checks passed")


if __name__ == "__main__":
    main()
