"""Online (incremental) decomposition for streaming atomic tasks.

Real crowdsourcing pipelines rarely see the whole task set at once: satellite
tiles arrive as the satellite downlinks them, moderation items as users post
them.  The paper's OPQ machinery is a natural fit for this setting because the
expensive part — building the optimal priority queue for a threshold — does
not depend on the tasks at all.  The :class:`OnlineDecomposer` therefore:

* builds (and caches) one OPQ per reliability threshold it encounters,
* buffers arriving atomic tasks per threshold until a full block (the head
  combination's LCM) accumulates, at which point the block is emitted at the
  provably lowest per-task cost (Corollary 1),
* flushes partially filled blocks on demand (``flush()``), accepting the same
  remainder premium the offline Algorithm 3 pays on its final block.

The emitted postings over the lifetime of a stream therefore cost at most what
the offline OPQ-Based solver would have paid on the same task set plus one
remainder block per distinct threshold — a bounded, quantifiable regret.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.algorithms.opq import Combination, OptimalPriorityQueue, build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.plan import BinAssignment, DecompositionPlan
from repro.core.task import AtomicTask


@dataclass
class _ThresholdBuffer:
    """Pending atomic tasks sharing one reliability threshold."""

    queue: OptimalPriorityQueue
    pending: List[int] = field(default_factory=list)

    @property
    def block_size(self) -> int:
        return self.queue.head.lcm


class OnlineDecomposer:
    """Incrementally decompose a stream of atomic tasks into task bins.

    Parameters
    ----------
    bins:
        The task bin menu (assumed stable over the stream; re-create the
        decomposer after re-calibration).
    threshold_granularity:
        Thresholds are rounded to this granularity before being grouped, so a
        stream with thousands of marginally different thresholds does not
        build thousands of optimal priority queues.  The rounded value is
        always rounded *up*, so no task is ever grouped below its requirement.
    """

    def __init__(self, bins: TaskBinSet, threshold_granularity: float = 0.01) -> None:
        if not 0.0 < threshold_granularity < 1.0:
            raise InvalidProblemError(
                "threshold_granularity must lie strictly between 0 and 1; "
                f"got {threshold_granularity}"
            )
        self.bins = bins
        self.threshold_granularity = threshold_granularity
        self._buffers: Dict[float, _ThresholdBuffer] = {}
        self._plan = DecompositionPlan(solver="online")
        self._seen_tasks: set[int] = set()
        self._emitted = 0

    # -- helpers ---------------------------------------------------------------------

    def _bucket(self, threshold: float) -> float:
        """Round a threshold up to the configured granularity."""
        steps = int(threshold / self.threshold_granularity)
        bucket = steps * self.threshold_granularity
        if bucket < threshold - 1e-12:
            bucket += self.threshold_granularity
        return min(round(bucket, 10), 0.999999)

    def _buffer_for(self, threshold: float) -> _ThresholdBuffer:
        bucket = self._bucket(threshold)
        if bucket not in self._buffers:
            queue = build_optimal_priority_queue(self.bins, bucket)
            self._buffers[bucket] = _ThresholdBuffer(queue=queue)
        return self._buffers[bucket]

    def _emit_block(
        self, combination: Combination, task_ids: List[int]
    ) -> List[BinAssignment]:
        assignments = []
        for task_bin, members in combination.postings_for_block(task_ids):
            assignments.append(self._plan.add(task_bin, members))
        self._emitted += len(task_ids)
        return assignments

    # -- public API --------------------------------------------------------------------

    def submit(self, task: AtomicTask) -> List[BinAssignment]:
        """Accept one arriving atomic task.

        Returns the bin postings emitted as a consequence (empty while the
        task's threshold group is still filling its current block).
        """
        if task.task_id in self._seen_tasks:
            raise InvalidProblemError(
                f"atomic task {task.task_id} was already submitted to this stream"
            )
        self._seen_tasks.add(task.task_id)
        buffer = self._buffer_for(task.threshold)
        buffer.pending.append(task.task_id)
        if len(buffer.pending) >= buffer.block_size:
            block, buffer.pending = (
                buffer.pending[: buffer.block_size],
                buffer.pending[buffer.block_size:],
            )
            return self._emit_block(buffer.queue.head, block)
        return []

    def submit_many(self, tasks: Iterable[AtomicTask]) -> List[BinAssignment]:
        """Accept a batch of arriving tasks; returns all emitted postings."""
        emitted: List[BinAssignment] = []
        for task in tasks:
            emitted.extend(self.submit(task))
        return emitted

    def flush(self) -> List[BinAssignment]:
        """Emit postings for every partially filled block.

        Mirrors the remainder handling of the offline Algorithm 3: each
        threshold group's leftovers are covered by the cheapest combination
        whose block still fits (falling back to a partially filled head
        block), so every submitted task is guaranteed its reliability after a
        flush.
        """
        emitted: List[BinAssignment] = []
        for buffer in self._buffers.values():
            while buffer.pending:
                remaining = len(buffer.pending)
                candidates = [c for c in buffer.queue if c.lcm <= remaining]
                if candidates:
                    combination = candidates[0]
                    block, buffer.pending = (
                        buffer.pending[: combination.lcm],
                        buffer.pending[combination.lcm:],
                    )
                else:
                    combination = min(
                        buffer.queue.elements(), key=lambda c: c.block_cost
                    )
                    block, buffer.pending = buffer.pending, []
                emitted.extend(self._emit_block(combination, block))
        return emitted

    # -- inspection ---------------------------------------------------------------------

    @property
    def plan(self) -> DecompositionPlan:
        """The plan accumulated so far (only emitted postings)."""
        return self._plan

    @property
    def pending_tasks(self) -> int:
        """Number of submitted tasks not yet covered by any posting."""
        return sum(len(buffer.pending) for buffer in self._buffers.values())

    @property
    def emitted_tasks(self) -> int:
        """Number of submitted tasks already covered by emitted postings."""
        return self._emitted

    @property
    def total_cost(self) -> float:
        """Cost of the postings emitted so far."""
        return self._plan.total_cost

    def threshold_groups(self) -> List[Tuple[float, int]]:
        """The active threshold buckets and their pending counts."""
        return sorted(
            (bucket, len(buffer.pending)) for bucket, buffer in self._buffers.items()
        )
