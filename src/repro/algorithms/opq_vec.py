"""Vectorized Algorithm 2: the OPQ construction core on flat numpy arrays.

:func:`repro.algorithms.opq.build_optimal_priority_queue` walks the
combination tree one Python object at a time — a ``Combination`` dataclass,
an LCM reduction, and an O(frontier) domination scan *per node*.  On the
evaluation menus that object code is the entire cold-build tail.  This module
re-implements the same enumeration breadth-first over flat arrays: one level
of the tree is a batch of partial combinations held as

* a ``(states, bins)`` int16 count matrix,
* parallel float vectors of accumulated residual and unit cost,
* an int64 vector of running LCMs, and
* the per-state start index that keeps multisets canonical (children only
  extend with bin indices ``>= start``, so each multiset is generated once).

Per level, child generation, feasibility, and the Lemma 1 domination prune
are single numpy expressions over the whole batch.

**Exact-equivalence contract.**  The vectorized core returns queues
*byte-identical* to the pure-Python reference (same elements, same order,
bit-equal floats), which the equivalence suite asserts across the golden
grid and under hypothesis-generated menus.  Three details make that hold:

1. *Float parity.*  Residual and unit cost are accumulated path-
   incrementally — one elementwise add per tree level — which replays the
   reference's exact FP operation sequence, instead of a dot product whose
   reassociation could flip low bits.
2. *Sound pruning only.*  During the sweep, candidates are filtered with a
   strictly-order-independent test (dropped iff some kept candidate has
   ``lcm <= lcm_i`` **and** ``uc < uc_i - 1e-15``).  Anything the reference
   would reject under its tolerance-bearing, order-*dependent* insertion is
   left in the pool.  Partial states are pruned with a lower bound on any
   completion's unit cost (``uc + remaining_demand * best_remaining_ratio``),
   which can only drop states whose every completion the reference would
   also reject.
3. *Reference replay for ties.*  Survivors are replayed through the real
   ``OptimalPriorityQueue.insert`` in depth-first order (derivable from the
   count vector alone: index ``j`` repeated ``count_j`` times, ascending),
   so exact-tie survivors match the reference's first-wins behaviour.

**Core selection.**  :func:`resolve_core` picks the active core from an
explicit argument, the ``SLADE_OPQ_CORE`` environment variable (``auto`` /
``python`` / ``numpy``), or availability: ``auto`` means numpy when
importable, with an automatic fallback to the pure-Python reference when it
is not (or when a menu's cardinalities could overflow int64 LCMs).
:func:`build_queue` is the dispatching entry point the plan cache and the
anytime ladder call.
"""

from __future__ import annotations

import math
import os
import time
from typing import Iterable, List, Optional, Tuple

from repro.algorithms.opq import (
    Combination,
    OptimalPriorityQueue,
    build_optimal_priority_queue,
)
from repro.core.bins import TaskBinSet
from repro.core.errors import InfeasiblePlanError
from repro.utils.logmath import residual_from_reliability

try:  # pragma: no cover - exercised via the fallback tests' monkeypatching
    import numpy as np
except ImportError:  # pragma: no cover - the CI image ships numpy
    np = None  # type: ignore[assignment]

#: Whether the vectorized core can run in this interpreter.
NUMPY_AVAILABLE = np is not None

#: Environment variable consulted when no explicit core is requested.
CORE_ENV_VAR = "SLADE_OPQ_CORE"

CORE_AUTO = "auto"
CORE_PYTHON = "python"
CORE_NUMPY = "numpy"
CORES = (CORE_AUTO, CORE_PYTHON, CORE_NUMPY)

#: Running LCMs are tracked in int64; a menu whose distinct cardinalities
#: could multiply past this bound is routed to the arbitrary-precision
#: Python core instead (the product bounds every reachable LCM).
_LCM_SAFE_LIMIT = 2 ** 62


def resolve_core(requested: Optional[str] = None) -> str:
    """The concrete core (``"python"`` or ``"numpy"``) a build will use.

    ``requested`` beats the ``SLADE_OPQ_CORE`` environment variable beats
    ``auto``.  ``auto`` resolves to numpy when available; an explicit
    ``numpy`` request degrades to ``python`` (rather than failing) when
    numpy is absent, so a pinned config keeps working on a slim install.
    """
    name = (requested or os.environ.get(CORE_ENV_VAR) or CORE_AUTO)
    name = name.strip().lower()
    if name not in CORES:
        raise ValueError(
            f"unknown OPQ core {name!r}; expected one of {', '.join(CORES)}"
        )
    if name == CORE_PYTHON:
        return CORE_PYTHON
    return CORE_NUMPY if NUMPY_AVAILABLE else CORE_PYTHON


def _lcm_fits_int64(bins: TaskBinSet) -> bool:
    """Whether every reachable LCM of the menu fits the int64 sweep arrays."""
    product = math.prod({task_bin.cardinality for task_bin in bins.bins()})
    return product < _LCM_SAFE_LIMIT


def build_queue(
    bins: TaskBinSet,
    threshold: float,
    max_assignments: Optional[int] = None,
    use_pruning: bool = True,
    deadline: Optional[float] = None,
    seed: Optional[Iterable[Combination]] = None,
    core: Optional[str] = None,
) -> OptimalPriorityQueue:
    """Build the OPQ with the selected core (see :func:`resolve_core`).

    The signature is a superset of
    :func:`~repro.algorithms.opq.build_optimal_priority_queue`; both cores
    accept every parameter, so callers can switch cores without branching.
    """
    if resolve_core(core) == CORE_NUMPY and _lcm_fits_int64(bins):
        return build_optimal_priority_queue_vec(
            bins, threshold,
            max_assignments=max_assignments,
            use_pruning=use_pruning,
            deadline=deadline,
            seed=seed,
        )
    return build_optimal_priority_queue(
        bins, threshold,
        max_assignments=max_assignments,
        use_pruning=use_pruning,
        deadline=deadline,
        seed=seed,
    )


def _strict_survivors(lcm, uc):
    """Mask of candidates no other candidate *strictly* dominates.

    Candidate ``i`` is dropped iff some ``j`` has ``lcm_j <= lcm_i`` and
    ``uc_j < uc_i - 1e-15`` — deliberately *stricter* than the reference's
    insertion test, so every element the reference might keep (including
    exact ties within tolerance) survives to the replay stage, and the
    outcome is independent of array order.  Sort by LCM; then the cheapest
    unit cost over the LCM-prefix decides, in O(n log n) instead of the
    O(n^2) pairwise mask a frontier-sized batch cannot afford.
    """
    order = np.argsort(lcm, kind="stable")
    sorted_lcm = lcm[order]
    sorted_uc = uc[order]
    prefix_min = np.minimum.accumulate(sorted_uc)
    # Ties in LCM all qualify as dominators of each other, so compare
    # against the prefix minimum through the *last* position sharing the
    # LCM value (self-inclusion is harmless under the strict margin).
    last_same = np.searchsorted(sorted_lcm, sorted_lcm, side="right") - 1
    dominated = prefix_min[last_same] < sorted_uc - 1e-15
    keep = np.ones(len(lcm), dtype=bool)
    keep[order] = ~dominated
    return keep


def build_optimal_priority_queue_vec(
    bins: TaskBinSet,
    threshold: float,
    max_assignments: Optional[int] = None,
    use_pruning: bool = True,
    deadline: Optional[float] = None,
    seed: Optional[Iterable[Combination]] = None,
) -> OptimalPriorityQueue:
    """Algorithm 2 on flat numpy arrays; byte-identical to the reference.

    Parameters mirror
    :func:`~repro.algorithms.opq.build_optimal_priority_queue`.  The
    ``deadline`` is checked once per tree level (the batch analogue of the
    reference's per-64-nodes stride); a truncated queue carries whatever
    satisfying combinations complete levels produced, every one of which
    individually satisfies the threshold.  ``stats`` counts generated child
    states as ``nodes`` and lower-bound-pruned states as ``pruned`` — the
    breadth-first analogues of the reference's depth-first counters, not
    equal to them.
    """
    if np is None:  # pragma: no cover - callers dispatch via build_queue
        raise RuntimeError(
            "the vectorized OPQ core needs numpy; use build_queue() for "
            "automatic fallback"
        )
    demand = residual_from_reliability(threshold)
    ordered_bins = bins.bins()
    bin_count = len(ordered_bins)
    contrib = np.array([b.residual_contribution for b in ordered_bins])
    cards = np.array([b.cardinality for b in ordered_bins], dtype=np.int64)
    unit_costs = np.array([b.cost / b.cardinality for b in ordered_bins])
    usable = np.flatnonzero(contrib > 0.0)
    if usable.size == 0:
        raise InfeasiblePlanError(
            "no task bin has positive confidence; the OPQ would be empty"
        )
    natural_bound = max(1, int(demand / contrib[usable].min()) + 1)
    if max_assignments is None:
        max_assignments = natural_bound

    # Cheapest way to buy one unit of residual from bin index j upward: the
    # lower-bound prune charges every unfinished state for its remaining
    # demand at this rate, which no completion can beat.
    ratio = np.full(bin_count, np.inf)
    ratio[usable] = unit_costs[usable] / contrib[usable]
    suffix_best_ratio = np.minimum.accumulate(ratio[::-1])[::-1]

    # The current level: one row/slot per partial combination.
    counts = np.zeros((1, bin_count), dtype=np.int16)
    acc = np.zeros(1)
    uc = np.zeros(1)
    lcm = np.ones(1, dtype=np.int64)
    start = np.zeros(1, dtype=np.int64)

    # Coarse frontier of satisfying candidates seen so far (strict Pareto).
    frontier_lcm = np.zeros(0, dtype=np.int64)
    frontier_uc = np.zeros(0)

    # Satisfying candidates kept for the replay stage.
    pool_counts: List = []
    pool_lcm: List = []
    pool_uc: List = []

    stats = {"nodes": 0, "pruned": 0, "inserted": 0, "seeded": 0}
    truncated = False

    seed_pool: List[Combination] = []
    if seed is not None:
        for donated in seed:
            if donated.residual < demand - 1e-12:
                continue  # the donor threshold was lower; not feasible here
            if any(card not in bins for card, _count in donated.counts):
                continue  # foreign menu; cannot participate in this build
            seed_pool.append(donated)
        if seed_pool:
            seed_lcm = np.array([c.lcm for c in seed_pool], dtype=np.int64)
            seed_uc = np.array([c.unit_cost for c in seed_pool])
            merged_lcm = np.concatenate([frontier_lcm, seed_lcm])
            merged_uc = np.concatenate([frontier_uc, seed_uc])
            kept = _strict_survivors(merged_lcm, merged_uc)
            frontier_lcm = merged_lcm[kept]
            frontier_uc = merged_uc[kept]

    # The reference visits the first level unconditionally (its recursion
    # guard is `used + 1 < max_assignments`), so a cap below one still
    # yields the single-assignment candidates.
    levels = max(1, max_assignments)
    for depth in range(levels):
        if deadline is not None and time.monotonic() >= deadline:
            truncated = True
            break
        if counts.shape[0] == 0:
            break
        # Ragged child expansion: each state spawns one child per bin index
        # in [start, bin_count) — a flat arange minus per-parent offsets.
        reps = bin_count - start
        parent = np.repeat(np.arange(counts.shape[0]), reps)
        offsets = np.concatenate([np.zeros(1, dtype=np.int64),
                                  np.cumsum(reps)[:-1]])
        child_bin = (np.arange(reps.sum()) - np.repeat(offsets, reps)
                     + np.repeat(start, reps))
        viable = contrib[child_bin] > 0.0
        parent = parent[viable]
        child_bin = child_bin[viable]
        stats["nodes"] += int(child_bin.size)
        child_acc = acc[parent] + contrib[child_bin]
        child_uc = uc[parent] + unit_costs[child_bin]
        child_lcm = np.lcm(lcm[parent], cards[child_bin])
        satisfied = child_acc >= demand - 1e-12

        if satisfied.any():
            sat_index = np.flatnonzero(satisfied)
            merged_lcm = np.concatenate([frontier_lcm, child_lcm[sat_index]])
            merged_uc = np.concatenate([frontier_uc, child_uc[sat_index]])
            kept = _strict_survivors(merged_lcm, merged_uc)
            prior = frontier_lcm.size
            frontier_lcm = merged_lcm[kept]
            frontier_uc = merged_uc[kept]
            selected = sat_index[kept[prior:]]
            if selected.size:
                kept_counts = counts[parent[selected]].copy()
                kept_counts[np.arange(selected.size), child_bin[selected]] += 1
                pool_counts.append(kept_counts)
                pool_lcm.append(child_lcm[selected])
                pool_uc.append(child_uc[selected])

        if depth + 1 >= levels:
            break
        open_index = np.flatnonzero(~satisfied)
        if open_index.size == 0:
            break
        if use_pruning and frontier_lcm.size:
            # Lemma 1, batched: a partial state dies when some frontier
            # element has lcm <= the state's running lcm (which every
            # completion's lcm is a multiple of) and uc <= the cheapest
            # conceivable completion cost.
            open_lcm = child_lcm[open_index]
            completion_floor = (
                child_uc[open_index]
                + (demand - child_acc[open_index])
                * suffix_best_ratio[child_bin[open_index]]
            )
            dominated = (
                (frontier_lcm[None, :] <= open_lcm[:, None])
                & (frontier_uc[None, :] <= completion_floor[:, None] + 1e-15)
            ).any(axis=1)
            stats["pruned"] += int(dominated.sum())
            open_index = open_index[~dominated]
            if open_index.size == 0:
                break
        next_counts = counts[parent[open_index]].copy()
        next_counts[np.arange(open_index.size), child_bin[open_index]] += 1
        counts = next_counts
        acc = child_acc[open_index]
        uc = child_uc[open_index]
        lcm = child_lcm[open_index]
        start = child_bin[open_index]

    queue = OptimalPriorityQueue(threshold)
    replay: List[Tuple[Tuple[int, ...], Combination]] = []
    if pool_counts:
        all_counts = np.concatenate(pool_counts)
        all_lcm = np.concatenate(pool_lcm)
        all_uc = np.concatenate(pool_uc)
        for row_index in np.flatnonzero(_strict_survivors(all_lcm, all_uc)):
            row = all_counts[row_index]
            combination = Combination.from_counts(
                {int(cards[j]): int(row[j])
                 for j in range(bin_count) if row[j] > 0},
                bins,
            )
            replay.append((_dfs_key(row), combination))
    index_of = {int(card): j for j, card in enumerate(cards)}
    for combination in seed_pool:
        row = np.zeros(bin_count, dtype=np.int16)
        for card, count in combination.counts:
            row[index_of[card]] = count
        replay.append((_dfs_key(row), combination))
    # Reference replay: insert in depth-first order so exact-tie survivors
    # match the recursive enumeration's first-wins insertion.  A seed that
    # the enumeration would have found sorts into exactly its cold-build
    # position (duplicates are rejected by insert); one it would not have
    # found is strictly dominated and cannot survive.
    replay.sort(key=lambda entry: entry[0])
    for _key, combination in replay:
        if queue.insert(combination):
            stats["inserted"] += 1
    stats["seeded"] = len(seed_pool)

    if len(queue) == 0:
        raise InfeasiblePlanError(
            f"no combination of at most {max_assignments} bin assignments "
            f"reaches reliability threshold {threshold}"
            + (" within the enumeration deadline" if truncated else "")
        )
    queue.stats = stats
    queue.complete = not truncated and max_assignments >= natural_bound
    return queue


def _dfs_key(count_row) -> Tuple[int, ...]:
    """The reference enumeration's visit order, recovered from the counts.

    The recursive core extends combinations with nondecreasing bin indices,
    so a multiset's index sequence (index ``j`` repeated ``count_j`` times,
    ascending) is exactly its depth-first path; tuple comparison of these
    sequences reproduces the visit order without tracking paths.
    """
    return tuple(
        int(j) for j in range(len(count_row)) for _ in range(int(count_row[j]))
    )
