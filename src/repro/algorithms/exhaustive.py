"""Exact solver for tiny SLADE instances (test oracle).

The SLADE problem is NP-hard (Theorem 1), so no polynomial exact algorithm is
expected; this module provides a uniform-cost search over complete plan states
that is practical only for a handful of atomic tasks and small bin sets.  Its
single purpose is to provide ground-truth optima for the unit tests and for
the worked examples in the paper (Examples 4, 9 and 11), so the approximation
quality of the production solvers can be asserted rather than assumed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Tuple

from repro.algorithms.base import Solver
from repro.core.errors import InvalidProblemError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import RESIDUAL_EPSILON, residual_from_reliability


class ExactSolver(Solver):
    """Optimal SLADE solver via uniform-cost search (exponential time).

    Parameters
    ----------
    max_tasks:
        Hard limit on the number of atomic tasks; larger instances are
        rejected so the oracle cannot be accidentally unleashed on a
        benchmark-sized problem.
    residual_quantum:
        Residual values are quantised to this granularity when forming search
        states, which keeps the visited-set finite in the presence of floating
        point noise without affecting optimality at the tolerances the tests
        assert.
    verify:
        See :class:`~repro.algorithms.base.Solver`.
    """

    name = "exact"

    def __init__(
        self,
        max_tasks: int = 8,
        residual_quantum: float = 1e-6,
        verify: bool = True,
    ) -> None:
        super().__init__(verify=verify)
        self.max_tasks = max_tasks
        self.residual_quantum = residual_quantum

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        if problem.n > self.max_tasks:
            raise InvalidProblemError(
                f"ExactSolver is limited to {self.max_tasks} atomic tasks; "
                f"got {problem.n}"
            )

        task_ids = [atomic.task_id for atomic in problem.task]
        demands = tuple(
            residual_from_reliability(atomic.threshold) for atomic in problem.task
        )
        bins = problem.bins.bins()

        def quantise(residuals: Tuple[float, ...]) -> Tuple[int, ...]:
            return tuple(
                max(0, int(math.ceil(r / self.residual_quantum - 1e-12)))
                for r in residuals
            )

        start = demands
        start_key = quantise(start)
        goal_key = tuple(0 for _ in start)

        # Uniform-cost search: state = remaining residual per task (quantised),
        # action = posting one bin filled with any subset of still-unsatisfied
        # tasks of size min(cardinality, #unsatisfied).
        frontier: List[Tuple[float, int, Tuple[float, ...], List[Tuple[int, Tuple[int, ...]]]]] = []
        counter = itertools.count()
        heapq.heappush(frontier, (0.0, next(counter), start, []))
        best_seen: Dict[Tuple[int, ...], float] = {start_key: 0.0}
        expanded = 0

        while frontier:
            cost, _tie, residuals, actions = heapq.heappop(frontier)
            key = quantise(residuals)
            if key == goal_key:
                plan = DecompositionPlan(solver=self.name)
                for cardinality, members in actions:
                    plan.add(problem.bins[cardinality], members)
                self.record("expanded_states", expanded)
                return plan
            if cost > best_seen.get(key, float("inf")) + 1e-12:
                continue
            expanded += 1

            unsatisfied = [
                index for index, r in enumerate(residuals) if r > RESIDUAL_EPSILON
            ]
            for task_bin in bins:
                contribution = task_bin.residual_contribution
                if contribution <= 0.0:
                    continue
                size = min(task_bin.cardinality, len(unsatisfied))
                for subset in itertools.combinations(unsatisfied, size):
                    new_residuals = list(residuals)
                    for index in subset:
                        new_residuals[index] = max(0.0, new_residuals[index] - contribution)
                    new_state = tuple(new_residuals)
                    new_key = quantise(new_state)
                    new_cost = cost + task_bin.cost
                    if new_cost < best_seen.get(new_key, float("inf")) - 1e-12:
                        best_seen[new_key] = new_cost
                        members = tuple(task_ids[index] for index in subset)
                        heapq.heappush(
                            frontier,
                            (
                                new_cost,
                                next(counter),
                                new_state,
                                actions + [(task_bin.cardinality, members)],
                            ),
                        )

        raise InvalidProblemError(
            "exhaustive search exhausted the frontier without satisfying every "
            "task; the bin set cannot reach the requested thresholds"
        )
