"""The anytime wrapper: a feasible answer now, the optimal one budget permitting.

The SLADE algorithms are all-or-nothing: Algorithm 3 needs the full optimal
priority queue, and building that queue (Algorithm 2) *is* the latency tail at
production scale.  :class:`AnytimeSolver` hedges between answering early at
coarse quality and late at fine quality:

1. **Cached ladder rung** — if a *complete* OPQ for the instance is already in
   the plan cache, the optimal answer is cheap; take it and stop.
2. **Greedy floor** — otherwise run Algorithm 1 first.  It needs no queue, it
   handles heterogeneous thresholds natively, and its plan is feasible by
   construction, so there is always something to return.
3. **Budgeted refinement** — with budget remaining, run Algorithm 2 under a
   deadline.  Enumeration abandoned at the deadline leaves a *truncated*
   Pareto frontier whose every element still satisfies the threshold, so
   Algorithm 3 over it yields a feasible (possibly suboptimal) plan.  The
   cheapest feasible plan across the rungs wins.

Every built queue is **published** back to the plan cache: a complete frontier
overwrites a coarse one left by an earlier budget-starved request, so the
fleet's cache monotonically refines toward optimality (see
:meth:`repro.engine.cache.PlanCache.publish`).

The result's ``quality`` metadata records how far the ladder got:
``"optimal"`` — refinement ran to completion (the answer is what the
all-or-nothing path would produce, or a cheaper feasible plan); ``"refined"``
— a truncated frontier contributed; ``"greedy"`` — only the immediate
heuristic fit the budget.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.algorithms.base import Solver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import (
    OptimalPriorityQueue,
    OPQSolver,
    QueueFactory,
    queue_is_complete,
)
from repro.algorithms.opq_vec import build_queue
from repro.algorithms.opq_extended import (
    assign_to_groups,
    group_thresholds,
    ThresholdGroup,
)
from repro.core.errors import InfeasiblePlanError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import residual_from_reliability

#: The ladder rung markers carried in solver metadata and response provenance.
QUALITY_OPTIMAL = "optimal"
QUALITY_REFINED = "refined"
QUALITY_GREEDY = "greedy"

#: Below this many seconds of remaining budget, starting an Algorithm 2 run is
#: pointless: the stride-based deadline check cannot stop it much faster.
MIN_REFINE_SECONDS = 1e-4


class AnytimeSolver(Solver):
    """Deadline-aware wrapper over greedy (Algorithm 1) and OPQ (Algorithms 2-5).

    Parameters
    ----------
    verify:
        See :class:`~repro.algorithms.base.Solver`.
    budget_seconds:
        Wall-clock budget for one :meth:`solve` call, measured from entry.
        ``None`` means unbounded: the solver behaves like the plain OPQ path
        (plus the greedy safety net) and always reports ``"optimal"``.
    queue_factory:
        Optional queue supplier.  When the injected object additionally
        exposes ``peek(bins, threshold)`` and ``publish(bins, threshold,
        queue, build_seconds)`` — :class:`~repro.engine.cache.PlanCache` and
        the service facade's recorder both do — cached queues are reused
        without paying for cold builds, and fresh builds are published back
        so refined frontiers overwrite coarse cached ones.
    """

    name = "anytime"
    accepts_queue_factory = True
    accepts_budget = True

    def __init__(
        self,
        verify: bool = True,
        budget_seconds: Optional[float] = None,
        queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(verify=verify)
        if budget_seconds is not None and budget_seconds < 0:
            raise ValueError(
                f"budget_seconds must be >= 0; got {budget_seconds}"
            )
        self.budget_seconds = budget_seconds
        self._queue_factory = queue_factory

    # -- cache plumbing (duck-typed off the injected factory) -----------------

    def _peek(self, problem: SladeProblem, threshold: float):
        peek = getattr(self._queue_factory, "peek", None)
        if peek is None:
            return None
        return peek(problem.bins, threshold)

    def _seed(self, problem: SladeProblem, threshold: float):
        """Warm-start elements from the cache's plan curve, when it has one."""
        seed_for = getattr(self._queue_factory, "seed_for", None)
        if seed_for is None:
            return None
        return seed_for(problem.bins, threshold)

    def _publish(
        self,
        problem: SladeProblem,
        threshold: float,
        queue: OptimalPriorityQueue,
        build_seconds: float,
    ) -> None:
        publish = getattr(self._queue_factory, "publish", None)
        if publish is not None:
            publish(problem.bins, threshold, queue, build_seconds)

    # -- the ladder ------------------------------------------------------------

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        deadline = (
            None if self.budget_seconds is None
            else time.monotonic() + self.budget_seconds
        )
        self.record("budget_seconds", self.budget_seconds)
        thresholds = self._group_reliabilities(problem)

        # Rung 1: a complete cached frontier makes the optimal answer cheap.
        cached = [self._peek(problem, t) for t in thresholds]
        if all(q is not None and queue_is_complete(q) for q in cached):
            plan = self._opq_plan(problem, thresholds, cached)
            self.record("quality", QUALITY_OPTIMAL)
            self.record("tier", "cache")
            return plan

        # Rung 2: the greedy floor — always feasible, never queue-bound.
        greedy = GreedySolver(verify=False)
        best = greedy._solve(problem)
        best_cost = best.total_cost
        quality = QUALITY_GREEDY
        tier = "greedy"

        # Rung 3: refine toward the full Pareto frontier, budget permitting.
        remaining = (
            float("inf") if deadline is None else deadline - time.monotonic()
        )
        if remaining > MIN_REFINE_SECONDS:
            refined = self._refine(problem, thresholds, cached, deadline)
            if refined is not None:
                plan, complete, built = refined
                if plan.total_cost <= best_cost:
                    best, best_cost = plan, plan.total_cost
                    tier = "build" if built else "cache"
                quality = QUALITY_OPTIMAL if complete else QUALITY_REFINED
        elif all(q is not None for q in cached):
            # No budget to build, but an earlier request left (possibly
            # truncated) frontiers in the cache: solving over them is cheap
            # and at least as good as greedy more often than not.
            plan = self._opq_plan(problem, thresholds, cached)
            if plan.total_cost <= best_cost:
                best, best_cost = plan, plan.total_cost
                tier = "cache"
            quality = QUALITY_REFINED

        self.record("quality", quality)
        self.record("tier", tier)
        return best

    def _refine(
        self,
        problem: SladeProblem,
        thresholds: List[float],
        cached: List[Optional[OptimalPriorityQueue]],
        deadline: Optional[float],
    ) -> Optional[Tuple[DecompositionPlan, bool, bool]]:
        """Build (or reuse) the per-group queues under the deadline and solve.

        Returns ``(plan, complete, built)`` — whether every frontier is
        exhaustive and whether any queue had to be constructed — or ``None``
        when the budget expired before any frontier element was found (the
        greedy floor stands).
        """
        queues: List[OptimalPriorityQueue] = []
        built = False
        for threshold, hit in zip(thresholds, cached):
            if hit is not None and queue_is_complete(hit):
                queues.append(hit)
                continue
            started = time.monotonic()
            try:
                queue = build_queue(
                    problem.bins, threshold, deadline=deadline,
                    seed=self._seed(problem, threshold),
                )
            except InfeasiblePlanError:
                # Deadline elapsed before a single feasible combination was
                # enumerated (or the instance is genuinely infeasible, in
                # which case the greedy rung already raised).
                return None
            built = True
            self._publish(
                problem, threshold, queue, time.monotonic() - started
            )
            # A stale truncated cache entry is superseded in-process too: the
            # fresh build is at least as refined as what peek returned.
            queues.append(queue)
        complete = all(queue_is_complete(q) for q in queues)
        self.record(
            "refined_groups",
            sum(1 for q in queues if not queue_is_complete(q)),
        )
        plan = self._opq_plan(problem, thresholds, queues)
        return plan, complete, built

    # -- OPQ dispatch over prebuilt queues -------------------------------------

    @staticmethod
    def _group_reliabilities(problem: SladeProblem) -> List[float]:
        """The reliability each needed queue is built for (one per group)."""
        if problem.is_homogeneous:
            return [problem.homogeneous_threshold]
        return group_thresholds(problem.task.thresholds)

    def _opq_plan(
        self,
        problem: SladeProblem,
        thresholds: List[float],
        queues: List[OptimalPriorityQueue],
    ) -> DecompositionPlan:
        """Algorithm 3 (or the Algorithm 5 group loop) over prebuilt queues."""
        if problem.is_homogeneous:
            solver = OPQSolver(verify=False, prebuilt_queue=queues[0])
            plan = solver._solve(problem)
            plan.solver = self.name
            return plan

        groups = [
            ThresholdGroup(
                index, residual_from_reliability(threshold), queue
            )
            for index, (threshold, queue) in enumerate(zip(thresholds, queues))
        ]
        residuals = {
            atomic.task_id: residual_from_reliability(atomic.threshold)
            for atomic in problem.task
        }
        membership = assign_to_groups(residuals, groups)
        plan = DecompositionPlan(solver=self.name)
        for group in groups:
            task_ids = membership[group.index]
            if not task_ids:
                continue
            sub_task = problem.task.subset(
                task_ids, name=f"{problem.task.name}-group{group.index}"
            )
            sub_problem = SladeProblem(
                sub_task,
                problem.bins,
                name=f"{problem.name}-group{group.index}",
            )
            sub_solver = OPQSolver(verify=False, prebuilt_queue=group.queue)
            plan.extend(sub_solver._solve(sub_problem))
        return plan
