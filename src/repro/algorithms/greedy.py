"""Algorithm 1: the cost-confidence-ratio greedy heuristic.

In every iteration the greedy solver scores each task bin ``b_l`` by the
cost-confidence ratio of Equation 4,

    ratio(b_l) = c_l / min( l * (-ln(1 - r_l)),  sum of the l largest
                            remaining threshold residuals ),

picks the bin with the smallest ratio, assigns it to the ``l`` atomic tasks
with the largest remaining residuals, and subtracts the bin's contribution
``-ln(1 - r_l)`` from each of them.  It terminates once every residual reaches
zero.  The heuristic works unchanged for heterogeneous thresholds because the
thresholds only influence the initial residuals (Section 6).

The paper maintains a fully sorted task list and re-sorts after every
iteration, giving ``O(n^2 log n)``.  This implementation keeps the residuals
in a max-heap and only materialises the top ``max_cardinality`` entries per
iteration, which preserves the algorithm's choices exactly (ties broken by
task id, matching the paper's stable initial ordering) while staying usable at
the paper's largest instance sizes in pure Python.
"""

from __future__ import annotations

import heapq
from typing import List, Tuple

from repro.algorithms.base import Solver
from repro.core.errors import InfeasiblePlanError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import RESIDUAL_EPSILON, residual_from_reliability


class GreedySolver(Solver):
    """Greedy cost-confidence-ratio solver (Algorithm 1).

    Parameters
    ----------
    verify:
        See :class:`~repro.algorithms.base.Solver`.

    Notes
    -----
    The solver handles both the homogeneous and the heterogeneous SLADE
    problem: per-task thresholds simply seed different initial residuals.
    """

    name = "greedy"

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        bins = problem.bins.bins()
        contributions = [task_bin.residual_contribution for task_bin in bins]
        if max(contributions) <= 0.0:
            raise InfeasiblePlanError(
                "all task bins have zero confidence; greedy cannot make progress"
            )

        # Max-heap of (negative residual, task_id): Python's heapq is a
        # min-heap, so residuals are negated.  Ties fall back to the task id,
        # reproducing the paper's stable ordering of equal residuals.
        heap: List[Tuple[float, int]] = []
        for atomic in problem.task:
            residual = residual_from_reliability(atomic.threshold)
            if residual > RESIDUAL_EPSILON:
                heap.append((-residual, atomic.task_id))
        heapq.heapify(heap)

        plan = DecompositionPlan(solver=self.name)
        max_cardinality = problem.bins.max_cardinality
        iterations = 0

        while heap:
            iterations += 1

            # Peek the up-to-max_cardinality largest residuals by popping them;
            # they are pushed back (possibly reduced) after the assignment.
            popped: List[Tuple[float, int]] = []
            while heap and len(popped) < max_cardinality:
                popped.append(heapq.heappop(heap))
            residuals = [-neg for neg, _task_id in popped]

            prefix = [0.0]
            for value in residuals:
                prefix.append(prefix[-1] + value)

            # Score every bin by Equation 4 and keep the minimiser.
            best_bin = None
            best_ratio = float("inf")
            for task_bin, contribution in zip(bins, contributions):
                if contribution <= 0.0:
                    continue
                usable = min(task_bin.cardinality, len(residuals))
                denominator = min(
                    task_bin.cardinality * contribution, prefix[usable]
                )
                if denominator <= 0.0:
                    continue
                ratio = task_bin.cost / denominator
                if ratio < best_ratio - 1e-15:
                    best_ratio = ratio
                    best_bin = task_bin
            if best_bin is None:  # pragma: no cover - guarded by contribution check
                raise InfeasiblePlanError("no task bin can contribute reliability")

            contribution = best_bin.residual_contribution
            take = min(best_bin.cardinality, len(residuals))
            chosen = popped[:take]
            untouched = popped[take:]

            plan.add(best_bin, [task_id for _neg, task_id in chosen])

            # Reduce the chosen residuals and return still-unsatisfied tasks
            # (and the untouched peeked ones) to the heap.
            for neg_residual, task_id in chosen:
                remaining = -neg_residual - contribution
                if remaining > RESIDUAL_EPSILON:
                    heapq.heappush(heap, (-remaining, task_id))
            for entry in untouched:
                heapq.heappush(heap, entry)

        self.record("iterations", iterations)
        return plan
