"""Solver registry: map algorithm names to factories.

The experiment harness, the CLI, and the benchmarks refer to solvers by name
(``"greedy"``, ``"opq"``, ``"opq-extended"``, ``"baseline"``, ...).  The
registry centralises construction so a new solver becomes available everywhere
by registering it once.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.anytime import AnytimeSolver
from repro.algorithms.base import Solver
from repro.algorithms.baseline import CIPBaselineSolver
from repro.algorithms.dp_relaxed import RelaxedDPSolver
from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver
from repro.algorithms.opq_extended import OPQExtendedSolver

SolverFactory = Callable[..., Solver]

_REGISTRY: Dict[str, SolverFactory] = {}


def register_solver(name: str, factory: SolverFactory, overwrite: bool = False) -> None:
    """Register a solver factory under ``name``.

    Raises
    ------
    ValueError
        If the name is taken and ``overwrite`` is ``False``.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"solver {name!r} is already registered")
    _REGISTRY[name] = factory


def _get_factory(name: str) -> SolverFactory:
    """Look up a registered factory, raising a helpful error when unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown solver {name!r}; known solvers: {known}") from None


def create_solver(name: str, **kwargs) -> Solver:
    """Instantiate a registered solver by name, forwarding keyword arguments."""
    return _get_factory(name)(**kwargs)


def available_solvers() -> List[str]:
    """Names of all registered solvers, sorted alphabetically."""
    return sorted(_REGISTRY)


def solver_accepts_queue_factory(name: str) -> bool:
    """Whether the named solver can take an injected OPQ cache.

    The batch planning engine uses this to decide whether to pass its
    :class:`~repro.engine.cache.PlanCache` as the ``queue_factory`` keyword
    when instantiating the solver.  Factories that are not classes (plain
    functions registered by extensions) default to ``False`` unless they set
    the ``accepts_queue_factory`` attribute themselves.
    """
    return bool(getattr(_get_factory(name), "accepts_queue_factory", False))


def solver_accepts_budget(name: str) -> bool:
    """Whether the named solver can take a ``budget_seconds`` wall-clock bound.

    The service facade uses this to decide whether a request's remaining
    deadline budget can be forwarded into the solver (today only the
    ``"anytime"`` wrapper); solvers without the capability get the usual
    all-or-nothing dispatch plus the facade's own pre-dispatch expiry check.
    """
    return bool(getattr(_get_factory(name), "accepts_budget", False))


# Built-in solvers.
register_solver("anytime", AnytimeSolver)
register_solver("greedy", GreedySolver)
register_solver("opq", OPQSolver)
register_solver("opq-extended", OPQExtendedSolver)
register_solver("baseline", CIPBaselineSolver)
register_solver("dp-relaxed", RelaxedDPSolver)
register_solver("exact", ExactSolver)
