"""Budget-constrained decomposition: the dual of the SLADE problem.

SLADE minimises cost subject to per-task reliability thresholds.  Requesters
often face the inverse question — *"I have B dollars; how reliable can I make
every atomic task?"* — which the paper lists as the natural companion problem
(its motivation experiments already fix budgets per bin).  This module answers
it by binary search over the uniform reliability target:

* for a candidate threshold ``t`` the homogeneous SLADE solver (OPQ-Based by
  default) gives a near-minimal cost ``C(t)``;
* ``C(t)`` is non-decreasing in ``t``, so the largest affordable ``t`` can be
  found by bisection on the residual scale (where the search space is smooth);
* the plan returned is the SLADE plan for that threshold, so it inherits the
  underlying solver's approximation behaviour.

Because ``C(t)`` is produced by an approximation algorithm the result is a
near-optimal feasible answer, not a proven optimum — the docstrings and the
result object are explicit about which guarantee the caller gets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.algorithms.base import SolveResult, Solver
from repro.algorithms.opq import OPQSolver
from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import (
    reliability_from_residual,
    residual_from_reliability,
)


@dataclass(frozen=True)
class BudgetedResult:
    """Outcome of a budget-constrained decomposition.

    Attributes
    ----------
    reliability:
        The uniform reliability target the budget affords.
    plan:
        The decomposition plan achieving it (every task meets ``reliability``).
    cost:
        The plan's total cost (never exceeds the budget).
    budget:
        The budget that was given.
    iterations:
        Number of bisection steps performed.
    """

    reliability: float
    plan: DecompositionPlan
    cost: float
    budget: float
    iterations: int

    @property
    def utilisation(self) -> float:
        """Fraction of the budget actually spent."""
        if self.budget <= 0.0:
            return 0.0
        return self.cost / self.budget


class BudgetedDecomposer:
    """Maximise the uniform reliability of a task set under a budget.

    Parameters
    ----------
    bins:
        The task bin menu.
    solver:
        The homogeneous SLADE solver used to price each candidate threshold;
        defaults to :class:`~repro.algorithms.opq.OPQSolver`.
    min_reliability, max_reliability:
        Search interval for the reliability target.  The upper end is capped
        below 1.0 because no finite plan reaches certainty.
    tolerance:
        Bisection stops once the bracket width (in residual space) drops below
        this value.
    max_iterations:
        Hard cap on bisection steps.
    """

    def __init__(
        self,
        bins: TaskBinSet,
        solver: Optional[Solver] = None,
        min_reliability: float = 0.5,
        max_reliability: float = 0.999,
        tolerance: float = 1e-3,
        max_iterations: int = 40,
    ) -> None:
        if not 0.0 < min_reliability < max_reliability < 1.0:
            raise InvalidProblemError(
                "reliability search interval must satisfy "
                f"0 < min < max < 1; got [{min_reliability}, {max_reliability}]"
            )
        if tolerance <= 0.0:
            raise InvalidProblemError(f"tolerance must be positive; got {tolerance}")
        if max_iterations < 1:
            raise InvalidProblemError(
                f"max_iterations must be at least 1; got {max_iterations}"
            )
        self.bins = bins
        self.solver = solver or OPQSolver(verify=False)
        self.min_reliability = min_reliability
        self.max_reliability = max_reliability
        self.tolerance = tolerance
        self.max_iterations = max_iterations

    # -- internals -----------------------------------------------------------------

    def _cost_at(self, n: int, reliability: float) -> SolveResult:
        problem = SladeProblem.homogeneous(
            n, reliability, self.bins, name=f"budgeted-t{reliability:.4f}"
        )
        return self.solver.solve(problem)

    # -- public API -------------------------------------------------------------------

    def decompose(self, n: int, budget: float) -> BudgetedResult:
        """Find the highest uniform reliability affordable for ``n`` tasks.

        Parameters
        ----------
        n:
            Number of atomic tasks.
        budget:
            Total incentive budget (same unit as the bin costs).

        Returns
        -------
        BudgetedResult
            The affordable reliability, its plan and the realised cost.

        Raises
        ------
        InvalidProblemError
            If even the minimum reliability of the search interval does not
            fit in the budget.
        """
        if n <= 0:
            raise InvalidProblemError(f"n must be positive; got {n}")
        if budget <= 0.0:
            raise InvalidProblemError(f"budget must be positive; got {budget}")

        low = residual_from_reliability(self.min_reliability)
        high = residual_from_reliability(self.max_reliability)

        cheapest = self._cost_at(n, self.min_reliability)
        if cheapest.total_cost > budget:
            raise InvalidProblemError(
                f"a budget of {budget} cannot even fund reliability "
                f"{self.min_reliability} (cheapest plan costs "
                f"{cheapest.total_cost:.2f})"
            )

        best_result = cheapest
        best_residual = low
        iterations = 0

        # Does the budget already cover the top of the search interval?
        top = self._cost_at(n, self.max_reliability)
        if top.total_cost <= budget:
            return BudgetedResult(
                reliability=self.max_reliability,
                plan=top.plan,
                cost=top.total_cost,
                budget=budget,
                iterations=iterations,
            )

        while high - low > self.tolerance and iterations < self.max_iterations:
            iterations += 1
            middle = (low + high) / 2.0
            reliability = reliability_from_residual(middle)
            result = self._cost_at(n, reliability)
            if result.total_cost <= budget:
                low = middle
                best_result = result
                best_residual = middle
            else:
                high = middle

        return BudgetedResult(
            reliability=reliability_from_residual(best_residual),
            plan=best_result.plan,
            cost=best_result.total_cost,
            budget=budget,
            iterations=iterations,
        )
