"""Algorithms 2-3: the Optimal Priority Queue (OPQ) and the OPQ-Based solver.

The OPQ machinery answers the question "what is the cheapest way to satisfy the
reliability threshold for a *block* of atomic tasks at once?".

* A :class:`Combination` is a multiset of task bins ``{n_k x b_k}`` that one
  atomic task is assigned to.  Its ``LCM`` (least common multiple of the bin
  cardinalities) is the number of atomic tasks that the combination covers
  exactly when replicated across a block, and its unit cost ``UC`` is the
  per-task incentive cost of doing so (Example 6 in the paper).
* The :class:`OptimalPriorityQueue` (Definition 4) keeps only the Pareto
  frontier of feasible combinations — no element may be dominated in both LCM
  and UC — ordered by decreasing LCM.
* :func:`build_optimal_priority_queue` is Algorithm 2: a depth-first
  enumeration of combinations with the Lemma 1 domination pruning rule.
* :class:`OPQSolver` is Algorithm 3: it repeatedly covers
  ``floor(n / OPQ1.LCM)`` blocks with the head combination, then falls through
  to smaller combinations for the remainder, giving a ``log n`` approximation
  (Theorem 2) and the exact optimum whenever ``n`` is a multiple of
  ``OPQ1.LCM`` (Corollary 1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.algorithms.base import Solver
from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InfeasiblePlanError, InvalidProblemError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import lcm_of, residual_from_reliability


@dataclass(frozen=True)
class Combination:
    """A multiset of task bins assigned to a single atomic task.

    Attributes
    ----------
    counts:
        Mapping from bin cardinality to the number of times a task is assigned
        to a bin of that cardinality, stored as a sorted tuple of
        ``(cardinality, count)`` pairs so the combination is hashable.
    bins:
        The task bin set the cardinalities refer to.
    """

    counts: Tuple[Tuple[int, int], ...]
    bins: TaskBinSet

    @classmethod
    def from_counts(cls, counts: Dict[int, int], bins: TaskBinSet) -> "Combination":
        """Build a combination from a ``{cardinality: count}`` mapping."""
        items = tuple(sorted((l, c) for l, c in counts.items() if c > 0))
        if not items:
            raise InvalidProblemError("a combination must use at least one task bin")
        for cardinality, _count in items:
            if cardinality not in bins:
                raise KeyError(f"bin set has no cardinality {cardinality}")
        combination = cls(items, bins)
        combination._cache_quantities()
        return combination

    # -- core quantities -------------------------------------------------------

    def _cache_quantities(self) -> None:
        """Precompute the hot quantities once, at construction.

        ``insert``/``dominates`` read ``lcm`` and ``unit_cost`` for every
        frontier element on every enumeration node; recomputing them per
        access made Algorithm 2 superlinearly slower as the frontier grew.
        The dataclass is frozen, hence ``object.__setattr__``.
        """
        lcm = lcm_of(cardinality for cardinality, _count in self.counts)
        unit_cost = 0.0
        residual = 0.0
        for cardinality, count in self.counts:
            task_bin = self.bins[cardinality]
            unit_cost += (task_bin.cost / cardinality) * count
            residual += task_bin.residual_contribution * count
        object.__setattr__(self, "_lcm", lcm)
        object.__setattr__(self, "_unit_cost", unit_cost)
        object.__setattr__(self, "_residual", residual)

    def __getattr__(self, name: str):
        # Combinations built by the bare constructor, or unpickled from cache
        # payloads written before the cached quantities existed, lack the
        # precomputed attributes; materialise them on first touch.
        if name in ("_lcm", "_unit_cost", "_residual"):
            self._cache_quantities()
            return object.__getattribute__(self, name)
        raise AttributeError(name)

    @property
    def lcm(self) -> int:
        """Least common multiple of the member cardinalities (block size)."""
        return self._lcm

    @property
    def unit_cost(self) -> float:
        """Per-atomic-task cost ``UC = sum_k (c_k / k) * n_k``."""
        return self._unit_cost

    @property
    def residual(self) -> float:
        """Reliability (in residual space) granted to each covered task."""
        return self._residual

    def satisfies(self, threshold: float) -> bool:
        """Whether the combination meets a reliability threshold."""
        return self.residual >= residual_from_reliability(threshold) - 1e-12

    @property
    def block_cost(self) -> float:
        """Cost of covering one full block of ``lcm`` atomic tasks."""
        return self.lcm * self.unit_cost

    # -- plan expansion ---------------------------------------------------------

    def postings_for_block(self, task_ids: Sequence[int]) -> Iterator[Tuple[TaskBin, Tuple[int, ...]]]:
        """Yield the concrete bin postings covering a block of atomic tasks.

        ``task_ids`` may contain fewer tasks than ``lcm`` (the remainder block
        of Algorithm 3); the postings are then partially filled but still cost
        the full bin price, exactly as on a real platform.  Every task in the
        block receives each bin cardinality ``k`` exactly ``n_k`` times, so the
        reliability granted matches :attr:`residual`.
        """
        if not task_ids:
            return
        block = list(task_ids)
        lcm = self.lcm
        if len(block) > lcm:
            raise InvalidProblemError(
                f"block of {len(block)} tasks exceeds combination LCM {lcm}"
            )
        for cardinality, count in self.counts:
            task_bin = self.bins[cardinality]
            groups = lcm // cardinality
            for _round in range(count):
                for g in range(groups):
                    members = tuple(block[g * cardinality:(g + 1) * cardinality])
                    if members:
                        yield task_bin, members

    def __str__(self) -> str:
        parts = " + ".join(f"{count}xb{cardinality}" for cardinality, count in self.counts)
        return f"{{{parts}}} (LCM={self.lcm}, UC={self.unit_cost:.4f})"


class OptimalPriorityQueue:
    """The Pareto frontier of feasible combinations, ordered by decreasing LCM.

    Definition 4 of the paper: (1) elements are ranked by descending LCM,
    (2) no element is dominated by another in both LCM and UC, and (3) every
    element satisfies the reliability threshold it was built for.
    """

    def __init__(self, threshold: float) -> None:
        self.threshold = threshold
        self._elements: List[Combination] = []
        #: Whether the queue holds the full Pareto frontier for its threshold.
        #: ``build_optimal_priority_queue`` clears it on deadline truncation
        #: or when capped below the natural bound; copies must propagate it
        #: (a restriction of a truncated frontier is still truncated).
        self.complete: bool = True
        #: Enumeration counters of the build that produced the queue.
        self.stats: Dict[str, int] = {}

    # -- maintenance -----------------------------------------------------------

    def insert(self, combination: Combination) -> bool:
        """Insert ``combination`` unless it is dominated; drop newly dominated ones.

        Definition 4(2): an element is dominated when another element has both
        a smaller-or-equal LCM and a smaller-or-equal unit cost — a smaller
        block that is also cheaper per task is strictly preferable.  Returns
        ``True`` when the combination was kept.
        """
        lcm, uc = combination.lcm, combination.unit_cost
        for existing in self._elements:
            if existing.lcm <= lcm and existing.unit_cost <= uc + 1e-15:
                return False
        self._elements = [
            existing
            for existing in self._elements
            if not (lcm <= existing.lcm and uc <= existing.unit_cost + 1e-15)
        ]
        self._elements.append(combination)
        self._elements.sort(key=lambda comb: (-comb.lcm, comb.unit_cost))
        return True

    def dominates(self, lcm: int, unit_cost: float) -> bool:
        """Lemma 1 check: is a (partial) combination already dominated?

        A candidate is dominated when some existing element has
        ``LCM <= candidate.LCM`` and ``UC <= candidate.UC``; the candidate and
        all of its supersets can then be pruned, because extending it only
        increases the unit cost and never decreases the LCM.
        """
        for existing in self._elements:
            if existing.lcm <= lcm and existing.unit_cost <= unit_cost + 1e-15:
                return True
        return False

    # -- access ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._elements)

    def __iter__(self) -> Iterator[Combination]:
        return iter(self._elements)

    def __getitem__(self, index: int) -> Combination:
        return self._elements[index]

    @property
    def head(self) -> Combination:
        """The first element ``OPQ_1`` (largest LCM, hence lowest UC)."""
        if not self._elements:
            raise InfeasiblePlanError("the optimal priority queue is empty")
        return self._elements[0]

    def elements(self) -> List[Combination]:
        """The Pareto-optimal combinations, best (largest LCM) first."""
        return list(self._elements)

    def restricted_to_lcm(self, max_lcm: int) -> "OptimalPriorityQueue":
        """Return a copy containing only combinations with ``LCM <= max_lcm``.

        Algorithm 3 discards head elements whose block size exceeds the number
        of remaining tasks; this helper performs the same filtering without
        mutating the shared queue.
        """
        copy = OptimalPriorityQueue(self.threshold)
        copy._elements = [c for c in self._elements if c.lcm <= max_lcm]
        # A restriction of a truncated anytime frontier must not report
        # itself exhaustive: propagate the provenance markers.
        copy.complete = self.complete
        copy.stats = dict(self.stats)
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OptimalPriorityQueue(threshold={self.threshold}, size={len(self)})"


class _EnumerationDeadline(Exception):
    """Internal unwind signal: the Algorithm 2 deadline elapsed mid-search."""


def queue_is_complete(queue: OptimalPriorityQueue) -> bool:
    """Whether a queue holds the *full* Pareto frontier for its threshold.

    Queues built before the marker existed (e.g. unpickled from an old cache
    payload) default to complete — they were always built exhaustively.
    """
    return bool(getattr(queue, "complete", True))


def build_optimal_priority_queue(
    bins: TaskBinSet,
    threshold: float,
    max_assignments: Optional[int] = None,
    use_pruning: bool = True,
    deadline: Optional[float] = None,
    seed: Optional[Iterable[Combination]] = None,
) -> OptimalPriorityQueue:
    """Algorithm 2: enumerate combinations and keep the Pareto frontier.

    Parameters
    ----------
    bins:
        The task bin set ``B``.
    threshold:
        The reliability threshold ``t`` every combination must satisfy.
    max_assignments:
        Safety cap on the multiset size of a combination.  ``None`` derives the
        natural bound ``ceil(-ln(1-t) / min_contribution)`` — one more
        assignment than that can never be needed on the Pareto frontier.
    use_pruning:
        Apply the Lemma 1 domination pruning during enumeration (the default).
        Disabling it yields the same queue while visiting many more nodes; the
        flag exists for the ablation benchmark that quantifies the pruning
        rule's benefit.
    deadline:
        Optional ``time.monotonic()`` instant at which to stop enumerating.
        The search is abandoned (not aborted): every combination inserted so
        far individually satisfies the threshold, so a truncated queue still
        yields feasible — merely possibly suboptimal — plans.  This is the
        anytime hook: serve from the truncated frontier now, rebuild the full
        one later.
    seed:
        Optional combinations (from the *same* bin menu) to warm-start the
        frontier with — typically the cached frontier of a nearby threshold
        on the menu's plan curve.  Every seed is re-validated against this
        build's threshold and dropped when it falls short, so donors from
        either direction along the curve are safe; a donor from a *higher*
        threshold is fully feasible by construction.  Seeding never changes
        the result (a non-minimal seed is strictly dominated by a
        combination the enumeration finds), it only strengthens the Lemma 1
        pruning from the first node onward.

    Returns
    -------
    OptimalPriorityQueue
        The Pareto frontier of threshold-satisfying combinations.  The
        ``complete`` attribute records whether the frontier is exhaustive
        (no deadline truncation, no cap below the natural bound); see
        :func:`queue_is_complete`.
    """
    demand = residual_from_reliability(threshold)
    queue = OptimalPriorityQueue(threshold)
    ordered_bins = bins.bins()
    contributions = [task_bin.residual_contribution for task_bin in ordered_bins]
    positive = [c for c in contributions if c > 0.0]
    if not positive:
        raise InfeasiblePlanError(
            "no task bin has positive confidence; the OPQ would be empty"
        )
    smallest = min(positive)
    natural_bound = max(1, int(demand / smallest) + 1)
    if max_assignments is None:
        max_assignments = natural_bound

    counts: Dict[int, int] = {}
    stats = {"nodes": 0, "pruned": 0, "inserted": 0, "seeded": 0}
    truncated = False

    if seed is not None:
        for donated in seed:
            if donated.residual >= demand - 1e-12 and queue.insert(donated):
                stats["seeded"] += 1

    def enumerate_from(start_index: int, accumulated: float, used: int) -> None:
        """Depth-first enumeration (SubFunction Enumerate of Algorithm 2)."""
        for index in range(start_index, len(ordered_bins)):
            task_bin = ordered_bins[index]
            contribution = contributions[index]
            if contribution <= 0.0:
                continue
            cardinality = task_bin.cardinality
            counts[cardinality] = counts.get(cardinality, 0) + 1
            stats["nodes"] += 1
            # Check the budget on a stride so the clock read never dominates
            # the per-node work.
            if (deadline is not None and stats["nodes"] % 64 == 0
                    and time.monotonic() >= deadline):
                raise _EnumerationDeadline
            candidate = Combination.from_counts(counts, bins)

            if use_pruning and queue.dominates(candidate.lcm, candidate.unit_cost):
                # Lemma 1: the candidate and all of its supersets are dominated.
                stats["pruned"] += 1
            elif accumulated + contribution >= demand - 1e-12:
                if queue.insert(candidate):
                    stats["inserted"] += 1
            elif used + 1 < max_assignments:
                enumerate_from(index, accumulated + contribution, used + 1)

            counts[cardinality] -= 1
            if counts[cardinality] == 0:
                del counts[cardinality]

    try:
        # The stride check can't fire on tiny menus whose whole enumeration
        # fits inside one stride, so an already-blown budget must be caught
        # here or the result would be mislabelled complete.
        if deadline is not None and time.monotonic() >= deadline:
            raise _EnumerationDeadline
        enumerate_from(0, 0.0, 0)
    except _EnumerationDeadline:
        truncated = True
    if len(queue) == 0:
        raise InfeasiblePlanError(
            f"no combination of at most {max_assignments} bin assignments "
            f"reaches reliability threshold {threshold}"
            + (" within the enumeration deadline" if truncated else "")
        )
    queue.stats = stats
    queue.complete = not truncated and max_assignments >= natural_bound
    return queue


#: Signature of a queue supplier: ``(bins, threshold) -> OptimalPriorityQueue``.
#: :func:`build_optimal_priority_queue` satisfies it, and so does the bound
#: ``queue_for`` method of :class:`repro.engine.cache.PlanCache`, which is how
#: the batch planning engine shares one OPQ construction across instances.
QueueFactory = Callable[[TaskBinSet, float], OptimalPriorityQueue]


class OPQSolver(Solver):
    """Algorithm 3: the OPQ-Based approximation for the homogeneous problem.

    Parameters
    ----------
    verify:
        See :class:`~repro.algorithms.base.Solver`.
    prebuilt_queue:
        An already-constructed OPQ to reuse (the heterogeneous solver passes
        one per threshold group).  When ``None`` the queue is built from the
        problem's bin set and common threshold.
    queue_factory:
        Optional supplier used to obtain the queue when no ``prebuilt_queue``
        is given.  The batch planning engine injects a
        :class:`~repro.engine.cache.PlanCache` bound method here so Algorithm 2
        runs once per ``(bin set, threshold)`` pair across a whole batch.
        Defaults to :func:`build_optimal_priority_queue` (a cold build).

    Raises
    ------
    InvalidProblemError
        If the instance is heterogeneous and no prebuilt queue is supplied —
        use :class:`~repro.algorithms.opq_extended.OPQExtendedSolver` instead.
    """

    name = "opq"

    #: The batch planning engine injects its cache into solvers advertising
    #: this flag (see :func:`repro.algorithms.registry.solver_accepts_queue_factory`).
    accepts_queue_factory = True

    def __init__(
        self,
        verify: bool = True,
        prebuilt_queue: Optional[OptimalPriorityQueue] = None,
        queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(verify=verify)
        self._prebuilt_queue = prebuilt_queue
        self._queue_factory = queue_factory or build_optimal_priority_queue

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        if self._prebuilt_queue is not None:
            queue = self._prebuilt_queue
        else:
            if not problem.is_homogeneous:
                raise InvalidProblemError(
                    "OPQSolver handles the homogeneous SLADE problem; use "
                    "OPQExtendedSolver for heterogeneous thresholds"
                )
            queue = self._queue_factory(
                problem.bins, problem.homogeneous_threshold
            )
            self.record("opq_size", len(queue))
            self.record("opq_nodes", getattr(queue, "stats", {}).get("nodes"))

        plan = DecompositionPlan(solver=self.name)
        pending = [atomic.task_id for atomic in problem.task]
        elements = queue.elements()
        if not elements:
            raise InfeasiblePlanError("the optimal priority queue is empty")

        previous: Optional[Combination] = None
        previous_block_cost = float("inf")
        iterations = 0

        while pending:
            iterations += 1
            remaining = len(pending)

            # Drop head elements whose block is larger than the remaining task
            # count (Algorithm 3, lines 4-5).
            while elements and elements[0].lcm > remaining:
                elements.pop(0)

            if not elements:
                # Only combinations larger than the remainder are left; reuse
                # the previous combination once, paying for a partially filled
                # block (Algorithm 3, lines 7-10 degenerate case).  When there
                # is no previous combination (n is smaller than every block
                # size), a single partially filled application of the cheapest
                # block covers everything.
                fallback = previous
                if fallback is None:
                    fallback = min(queue.elements(), key=lambda comb: comb.block_cost)
                self._assign_block(plan, fallback, pending)
                pending = []
                break

            head = elements[0]
            blocks = remaining // head.lcm
            chunk_cost = blocks * head.block_cost

            if previous is not None and chunk_cost > previous_block_cost:
                # Covering the remainder with several head blocks would cost
                # more than one extra application of the previous combination,
                # so reuse the previous one (Algorithm 3, lines 7-10).
                self._assign_block(plan, previous, pending)
                pending = []
                break

            for _block in range(blocks):
                block_ids, pending = pending[: head.lcm], pending[head.lcm:]
                self._assign_block(plan, head, block_ids)

            previous = head
            previous_block_cost = head.block_cost

        self.record("iterations", iterations)
        return plan

    @staticmethod
    def _assign_block(
        plan: DecompositionPlan,
        combination: Combination,
        task_ids: Sequence[int],
    ) -> None:
        """Materialise one (possibly partial) block of a combination."""
        for task_bin, members in combination.postings_for_block(task_ids):
            plan.add(task_bin, members)
