"""Algorithms 4-5: the partitioned OPQ solver for heterogeneous SLADE.

When atomic tasks carry different reliability thresholds, the paper partitions
them into groups by powers of two of the *transformed* threshold
``theta_i = -ln(1 - t_i)`` (Algorithm 4).  Each group is upper-bounded by a
single transformed threshold ``tau`` — either the next power-of-two boundary or
``theta_max`` for the last group — and an optimal priority queue is built for
the equivalent reliability ``1 - e^{-tau}``.  Algorithm 5 then runs the
homogeneous OPQ-Based solver independently on every group and concatenates the
per-group plans, which Theorem 3 shows costs at most
``2 * ceil(log(theta_max / theta_min)) * log n`` times the optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.algorithms.base import Solver
from repro.algorithms.opq import (
    OptimalPriorityQueue,
    OPQSolver,
    QueueFactory,
    build_optimal_priority_queue,
)
from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.logmath import (
    reliability_from_residual,
    residual_from_reliability,
)


@dataclass(frozen=True)
class ThresholdGroup:
    """One partition cell of the heterogeneous threshold range.

    Attributes
    ----------
    index:
        Group index ``i`` (0-based), matching ``OPQ_i`` in the paper.
    upper_residual:
        The transformed-threshold upper bound ``tau`` of the cell.  Every task
        assigned to the group has ``theta_i <= tau``.
    queue:
        The optimal priority queue built for reliability ``1 - e^{-tau}``.
    """

    index: int
    upper_residual: float
    queue: OptimalPriorityQueue

    @property
    def threshold(self) -> float:
        """The reliability the group's queue guarantees: ``1 - e^{-tau}``."""
        return reliability_from_residual(self.upper_residual)


def partition_boundaries(theta_min: float, theta_max: float) -> List[float]:
    """Compute the power-of-two upper bounds of Algorithm 4.

    The boundaries are ``2^(alpha+1), 2^(alpha+2), ...`` with
    ``alpha = floor(log2(theta_min))``, capped at ``theta_max`` for the final
    group.  Degenerate ranges (all thresholds equal, or ``theta_min`` a power
    of two equal to ``theta_max``) collapse to a single boundary at
    ``theta_max``.
    """
    if theta_min <= 0.0 or theta_max <= 0.0:
        raise InvalidProblemError("transformed thresholds must be positive")
    if theta_min > theta_max:
        raise InvalidProblemError("theta_min must not exceed theta_max")

    alpha = math.floor(math.log2(theta_min))
    boundaries: List[float] = []
    i = 0
    while 2.0 ** (alpha + i) < theta_max:
        upper = 2.0 ** (alpha + i + 1)
        if upper > theta_max:
            upper = theta_max
        boundaries.append(upper)
        i += 1
    if not boundaries:
        boundaries.append(theta_max)
    return boundaries


def _group_boundaries(thresholds: Sequence[float]) -> List[float]:
    """The residual-space upper bounds of the Algorithm 4 groups."""
    if not thresholds:
        raise InvalidProblemError("thresholds must not be empty")
    residuals = [residual_from_reliability(t) for t in thresholds]
    return partition_boundaries(min(residuals), max(residuals))


def group_thresholds(thresholds: Sequence[float]) -> List[float]:
    """The reliability each Algorithm 4 group's queue is built for.

    This exposes the group boundaries *without* paying for queue
    construction, so the batch planning engine can pre-warm its OPQ cache
    before dispatching heterogeneous instances to worker processes.  It
    shares :func:`_group_boundaries` with :func:`build_opq_set`, so the two
    can never disagree on which queues an instance needs.
    """
    return [reliability_from_residual(upper) for upper in _group_boundaries(thresholds)]


def build_opq_set(
    bins: TaskBinSet,
    thresholds: Sequence[float],
    queue_factory: Optional[QueueFactory] = None,
) -> List[ThresholdGroup]:
    """Algorithm 4: build one optimal priority queue per threshold interval.

    Parameters
    ----------
    bins:
        The task bin set ``B``.
    thresholds:
        The reliability thresholds ``t_1..t_n`` of the atomic tasks.
    queue_factory:
        Optional queue supplier (defaults to a cold
        :func:`~repro.algorithms.opq.build_optimal_priority_queue` run); the
        batch planning engine passes a cache here so repeated group
        thresholds across instances construct each queue only once.

    Returns
    -------
    list of ThresholdGroup
        Groups ordered by increasing upper bound; the last group's bound is
        exactly ``theta_max`` so no task over-pays beyond the paper's 2x
        rounding factor.
    """
    factory = queue_factory or build_optimal_priority_queue
    boundaries = _group_boundaries(thresholds)
    groups: List[ThresholdGroup] = []
    for index, upper in enumerate(boundaries):
        reliability = reliability_from_residual(upper)
        queue = factory(bins, reliability)
        groups.append(ThresholdGroup(index, upper, queue))
    return groups


def assign_to_groups(
    residuals: Dict[int, float],
    groups: Sequence[ThresholdGroup],
) -> Dict[int, List[int]]:
    """Algorithm 5 lines 5-7: map task ids to the lowest group covering them.

    Parameters
    ----------
    residuals:
        Mapping of atomic task id to transformed threshold ``theta_i``.
    groups:
        The threshold groups from :func:`build_opq_set`.

    Returns
    -------
    dict
        Mapping of group index to the list of task ids assigned to it.
    """
    membership: Dict[int, List[int]] = {group.index: [] for group in groups}
    for task_id, theta in residuals.items():
        chosen: Optional[ThresholdGroup] = None
        for group in groups:
            if theta <= group.upper_residual + 1e-12:
                chosen = group
                break
        if chosen is None:
            # Floating point drift can push theta_max marginally above the last
            # boundary; the last group is the correct home in that case.
            chosen = groups[-1]
        membership[chosen.index].append(task_id)
    return membership


class OPQExtendedSolver(Solver):
    """Algorithm 5: OPQ-Extended for the heterogeneous SLADE problem.

    The solver also accepts homogeneous instances (they form a single group),
    so experiment sweeps can use it uniformly.

    Parameters
    ----------
    verify:
        See :class:`~repro.algorithms.base.Solver`.
    queue_factory:
        Optional queue supplier forwarded to :func:`build_opq_set`; the batch
        planning engine injects its shared OPQ cache here.
    """

    name = "opq-extended"
    accepts_queue_factory = True

    def __init__(
        self,
        verify: bool = True,
        queue_factory: Optional[QueueFactory] = None,
    ) -> None:
        super().__init__(verify=verify)
        self._queue_factory = queue_factory

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        thresholds = problem.task.thresholds
        groups = build_opq_set(
            problem.bins, thresholds, queue_factory=self._queue_factory
        )
        residuals = {
            atomic.task_id: residual_from_reliability(atomic.threshold)
            for atomic in problem.task
        }
        membership = assign_to_groups(residuals, groups)

        plan = DecompositionPlan(solver=self.name)
        group_sizes = {}
        for group in groups:
            task_ids = membership[group.index]
            group_sizes[group.index] = len(task_ids)
            if not task_ids:
                continue
            sub_task = problem.task.subset(
                task_ids, name=f"{problem.task.name}-group{group.index}"
            )
            # Every task in the group is solved against the group's upper-bound
            # threshold (carried by the prebuilt queue), which dominates each
            # individual threshold in the group.
            sub_problem = SladeProblem(
                sub_task,
                problem.bins,
                name=f"{problem.name}-group{group.index}",
            )
            sub_solver = OPQSolver(verify=False, prebuilt_queue=group.queue)
            sub_plan = sub_solver._solve(sub_problem)
            plan.extend(sub_plan)

        self.record("groups", len(groups))
        self.record("group_sizes", group_sizes)
        return plan
