"""Section 4.2: exact dynamic program for the relaxed SLADE variant.

The relaxed variant assumes every task bin's confidence already meets the
largest reliability threshold (``r_j >= t_max`` for all bins ``b_j``): a single
posting of any bin satisfies every task it contains, so the problem degenerates
to covering ``n`` tasks with bins of capacities ``l`` and costs ``c_l`` — the
ROD CUTTING problem, solvable exactly in ``O(n m)`` time and ``O(n)`` space.

The solver refuses instances that are not actually relaxed (it would silently
produce infeasible plans otherwise); it is used both as a fast exact optimum
for relaxed instances and as a lower-bound generator in the ablation benches.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms.base import Solver
from repro.core.errors import InvalidProblemError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem


class RelaxedDPSolver(Solver):
    """Rod-cutting dynamic program for the relaxed SLADE variant.

    Parameters
    ----------
    allow_unrelaxed:
        When ``True``, the solver skips the relaxed-variant check and treats
        every bin as sufficient for one assignment anyway.  The resulting plan
        is then a *lower bound* on cost, not necessarily feasible; the ablation
        benchmarks use this to gauge how much the reliability requirement
        inflates cost.  The default is ``False``.
    verify:
        See :class:`~repro.algorithms.base.Solver`.  Automatically disabled
        when ``allow_unrelaxed`` is set, since the plan may be infeasible by
        design.
    """

    name = "dp-relaxed"

    def __init__(self, allow_unrelaxed: bool = False, verify: bool = True) -> None:
        super().__init__(verify=verify and not allow_unrelaxed)
        self.allow_unrelaxed = allow_unrelaxed

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        if not self.allow_unrelaxed and not problem.is_relaxed_variant():
            raise InvalidProblemError(
                "instance is not the relaxed variant (some bin confidence is "
                "below the maximum threshold); use GreedySolver / OPQSolver, or "
                "pass allow_unrelaxed=True for a lower-bound plan"
            )

        n = problem.n
        bins = problem.bins.bins()

        # best_cost[j] = minimum cost to cover j tasks; best_bin[j] = cardinality
        # of the last bin in an optimal cover of j tasks.
        best_cost: List[float] = [0.0] + [float("inf")] * n
        best_bin: List[Optional[int]] = [None] * (n + 1)
        for j in range(1, n + 1):
            for task_bin in bins:
                previous = max(0, j - task_bin.cardinality)
                candidate = best_cost[previous] + task_bin.cost
                if candidate < best_cost[j]:
                    best_cost[j] = candidate
                    best_bin[j] = task_bin.cardinality

        plan = DecompositionPlan(solver=self.name)
        task_ids = [atomic.task_id for atomic in problem.task]
        j = n
        cursor = 0
        while j > 0:
            cardinality = best_bin[j]
            if cardinality is None:  # pragma: no cover - dp always fills table
                raise InvalidProblemError("dynamic program failed to cover all tasks")
            members = task_ids[cursor:cursor + min(cardinality, j)]
            plan.add(problem.bins[cardinality], members)
            cursor += len(members)
            j -= len(members)

        self.record("optimal_cost", best_cost[n])
        return plan
