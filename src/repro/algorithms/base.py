"""Solver interface shared by every SLADE algorithm.

A solver consumes a :class:`~repro.core.problem.SladeProblem` and produces a
:class:`SolveResult`, which packages the decomposition plan together with its
cost, the wall-clock time spent, and algorithm-specific metadata (e.g. the
number of OPQ combinations enumerated).  The experiment harness and the
benchmarks only ever talk to solvers through this interface.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict

from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.utils.timing import Stopwatch


@dataclass
class SolveResult:
    """Outcome of one solver invocation.

    Attributes
    ----------
    plan:
        The decomposition plan produced by the solver.
    problem:
        The problem instance that was solved (kept for feasibility checks and
        per-task reporting).
    elapsed_seconds:
        Wall-clock time spent inside the solver.
    solver:
        Name of the algorithm that produced the plan.
    metadata:
        Free-form algorithm diagnostics (iterations, pruned nodes, ...).
    """

    plan: DecompositionPlan
    problem: SladeProblem
    elapsed_seconds: float
    solver: str
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_cost(self) -> float:
        """Total incentive cost of the produced plan."""
        return self.plan.total_cost

    @property
    def feasible(self) -> bool:
        """Whether the plan satisfies every atomic task's threshold."""
        return self.plan.is_feasible(self.problem.task)

    def summary(self) -> Dict[str, Any]:
        """A flat dictionary for experiment reports."""
        info = {
            "solver": self.solver,
            "problem": self.problem.name,
            "n": self.problem.n,
            "m": self.problem.m,
            "total_cost": self.total_cost,
            "elapsed_seconds": self.elapsed_seconds,
            "feasible": self.feasible,
        }
        info.update({f"meta_{k}": v for k, v in self.metadata.items()})
        return info


class Solver(abc.ABC):
    """Abstract base class for SLADE solvers.

    Subclasses implement :meth:`_solve`, returning a
    :class:`~repro.core.plan.DecompositionPlan`; the public :meth:`solve`
    wrapper adds timing, tags the plan with the solver name, and (optionally)
    verifies feasibility.

    Parameters
    ----------
    verify:
        When ``True`` (the default) the produced plan is checked against every
        atomic task's reliability threshold and an
        :class:`~repro.core.errors.InfeasiblePlanError` is raised on failure.
        Benchmarks may disable the check to time the pure algorithm.
    """

    #: Human-readable solver name; subclasses override.
    name: str = "abstract"

    #: Whether the constructor accepts a ``queue_factory`` keyword through
    #: which a shared OPQ cache can be injected.  Solvers that build optimal
    #: priority queues (Algorithm 2) set this to ``True``; the batch planning
    #: engine checks it before injecting its :class:`~repro.engine.cache.PlanCache`.
    accepts_queue_factory: bool = False

    #: Whether the constructor accepts a ``budget_seconds`` keyword bounding
    #: the wall-clock time of one solve.  The service facade checks it before
    #: forwarding a request's remaining deadline budget (see
    #: :class:`~repro.algorithms.anytime.AnytimeSolver`).
    accepts_budget: bool = False

    def __init__(self, verify: bool = True) -> None:
        self.verify = verify
        self._metadata: Dict[str, Any] = {}

    def solve(self, problem: SladeProblem) -> SolveResult:
        """Solve ``problem`` and return a :class:`SolveResult`."""
        self._metadata: Dict[str, Any] = {}
        watch = Stopwatch()
        with watch:
            plan = self._solve(problem)
        plan.solver = self.name
        if self.verify:
            plan.require_feasible(problem.task)
        return SolveResult(
            plan=plan,
            problem=problem,
            elapsed_seconds=watch.elapsed,
            solver=self.name,
            metadata=dict(self._metadata),
        )

    def record(self, key: str, value: Any) -> None:
        """Record a metadata value for the current :meth:`solve` call."""
        self._metadata[key] = value

    @abc.abstractmethod
    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        """Produce a decomposition plan for ``problem``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
