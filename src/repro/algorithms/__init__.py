"""Solvers for the SLADE problem.

The package mirrors Sections 4-6 of the paper:

* :class:`~repro.algorithms.greedy.GreedySolver` — Algorithm 1, the
  cost-confidence-ratio greedy heuristic (homogeneous and heterogeneous).
* :class:`~repro.algorithms.opq.OPQSolver` — Algorithms 2-3, the optimal
  priority queue construction and the log(n)-approximate OPQ-Based solver for
  the homogeneous problem.
* :class:`~repro.algorithms.opq_extended.OPQExtendedSolver` — Algorithms 4-5,
  the threshold-partitioned extension for the heterogeneous problem.
* :class:`~repro.algorithms.baseline.CIPBaselineSolver` — Section 4.3, the
  covering-integer-program baseline (LP relaxation + randomized rounding).
* :class:`~repro.algorithms.dp_relaxed.RelaxedDPSolver` — Section 4.2, the
  rod-cutting dynamic program for the relaxed polynomial variant.
* :class:`~repro.algorithms.exhaustive.ExactSolver` — a brute-force exact
  solver for tiny instances, used as a test oracle.
"""

from repro.algorithms.anytime import (
    AnytimeSolver,
    QUALITY_GREEDY,
    QUALITY_OPTIMAL,
    QUALITY_REFINED,
)
from repro.algorithms.base import Solver, SolveResult
from repro.algorithms.baseline import CIPBaselineSolver
from repro.algorithms.budgeted import BudgetedDecomposer, BudgetedResult
from repro.algorithms.dp_relaxed import RelaxedDPSolver
from repro.algorithms.exhaustive import ExactSolver
from repro.algorithms.greedy import GreedySolver
from repro.algorithms.online import OnlineDecomposer
from repro.algorithms.opq import (
    Combination,
    OPQSolver,
    OptimalPriorityQueue,
    build_optimal_priority_queue,
)
from repro.algorithms.opq_extended import OPQExtendedSolver, build_opq_set
from repro.algorithms.registry import available_solvers, create_solver, register_solver

__all__ = [
    "Solver",
    "SolveResult",
    "AnytimeSolver",
    "QUALITY_GREEDY",
    "QUALITY_OPTIMAL",
    "QUALITY_REFINED",
    "GreedySolver",
    "OPQSolver",
    "OPQExtendedSolver",
    "CIPBaselineSolver",
    "RelaxedDPSolver",
    "ExactSolver",
    "BudgetedDecomposer",
    "BudgetedResult",
    "OnlineDecomposer",
    "Combination",
    "OptimalPriorityQueue",
    "build_optimal_priority_queue",
    "build_opq_set",
    "available_solvers",
    "create_solver",
    "register_solver",
]
