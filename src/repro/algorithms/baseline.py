"""Section 4.3: the covering-integer-program (CIP) baseline.

The paper reduces SLADE to a CIP: every way of filling an ``l``-cardinality
task bin with a concrete set of atomic tasks is a *column* ``j`` with cost
``c_l``; a column contributes ``-ln(1 - r_l)`` towards the residual demand
``-ln(1 - t_i)`` of every task it contains.  The CIP asks for non-negative
integer multiplicities ``y_j`` minimising total cost subject to the coverage
constraints.  Because the full column set has ``sum_l C(n, l)`` members, the
paper "only generate[s] part of the combination instances"; this implementation
does the same, then solves the LP relaxation with ``scipy`` and applies
randomized rounding followed by a greedy repair pass to restore feasibility.

To keep the LP tractable at the paper's instance sizes (up to 100k atomic
tasks) the baseline processes the task set in fixed-size chunks and
concatenates the per-chunk plans.  This mirrors how the exponential reduction
must be truncated in practice and keeps the baseline's qualitative behaviour
from the paper: feasible, but the least cost-effective of the three solvers and
noticeably sensitive to the available bin cardinalities.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.algorithms.base import Solver
from repro.core.bins import TaskBin
from repro.core.errors import InfeasiblePlanError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.core.task import AtomicTask
from repro.utils.logmath import RESIDUAL_EPSILON, residual_from_reliability
from repro.utils.rng import RandomSource, ensure_rng


@dataclass(frozen=True)
class _Column:
    """One generated CIP column: a task bin filled with concrete tasks."""

    task_bin: TaskBin
    task_ids: Tuple[int, ...]

    @property
    def cost(self) -> float:
        return self.task_bin.cost

    @property
    def contribution(self) -> float:
        return self.task_bin.residual_contribution


class CIPBaselineSolver(Solver):
    """LP-relaxation + randomized-rounding baseline for SLADE.

    Parameters
    ----------
    chunk_size:
        Number of atomic tasks handled per CIP instance.  Larger chunks give
        the LP more freedom but grow the constraint matrix quadratically.
    random_columns_per_task:
        How many additional random columns (beyond the systematic consecutive
        blocks) to generate per task in a chunk, emulating the paper's partial
        enumeration of combination instances.
    rounding_boost:
        Scaling factor applied to the fractional LP solution before rounding;
        the classic CIP analysis uses ``O(log n)`` — the default derives it
        from the chunk size.
    seed:
        Seed (or generator) driving column sampling and randomized rounding.
    verify:
        See :class:`~repro.algorithms.base.Solver`.
    """

    name = "baseline"

    def __init__(
        self,
        chunk_size: int = 256,
        random_columns_per_task: int = 2,
        rounding_boost: Optional[float] = None,
        seed: RandomSource = 0,
        verify: bool = True,
    ) -> None:
        super().__init__(verify=verify)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive; got {chunk_size}")
        self.chunk_size = chunk_size
        self.random_columns_per_task = max(0, random_columns_per_task)
        self.rounding_boost = rounding_boost
        self._rng = ensure_rng(seed)

    # -- public entry point -----------------------------------------------------

    def _solve(self, problem: SladeProblem) -> DecompositionPlan:
        plan = DecompositionPlan(solver=self.name)
        tasks = problem.atomic_tasks
        lp_calls = 0
        columns_generated = 0
        for start in range(0, len(tasks), self.chunk_size):
            chunk = tasks[start:start + self.chunk_size]
            generated = self._solve_chunk(problem, chunk, plan)
            columns_generated += generated
            lp_calls += 1
        self.record("lp_calls", lp_calls)
        self.record("columns_generated", columns_generated)
        return plan

    # -- chunk pipeline -----------------------------------------------------------

    def _solve_chunk(
        self,
        problem: SladeProblem,
        chunk: Sequence[AtomicTask],
        plan: DecompositionPlan,
    ) -> int:
        """Generate columns, solve the LP, round, repair; append to ``plan``."""
        columns = self._generate_columns(problem, chunk)
        demands = {
            atomic.task_id: residual_from_reliability(atomic.threshold)
            for atomic in chunk
        }
        fractional = self._solve_lp(columns, demands)
        counts = self._randomized_rounding(fractional, len(chunk))
        achieved = self._apply_counts(columns, counts, plan)
        self._greedy_repair(problem, demands, achieved, plan)
        return len(columns)

    def _generate_columns(
        self,
        problem: SladeProblem,
        chunk: Sequence[AtomicTask],
    ) -> List[_Column]:
        """Generate a tractable subset of the exponential CIP column space.

        Two families are produced: systematic consecutive blocks (every task is
        covered by at least one column of every cardinality) and uniformly
        random fills (the paper's arbitrary combination instances).
        """
        task_ids = [atomic.task_id for atomic in chunk]
        columns: List[_Column] = []
        for task_bin in problem.bins:
            cardinality = task_bin.cardinality
            for start in range(0, len(task_ids), cardinality):
                members = tuple(task_ids[start:start + cardinality])
                if members:
                    columns.append(_Column(task_bin, members))
            random_columns = self.random_columns_per_task * max(
                1, len(task_ids) // cardinality
            )
            for _ in range(random_columns):
                size = min(cardinality, len(task_ids))
                members = tuple(
                    sorted(
                        int(i)
                        for i in self._rng.choice(task_ids, size=size, replace=False)
                    )
                )
                columns.append(_Column(task_bin, members))
        return columns

    def _solve_lp(
        self,
        columns: Sequence[_Column],
        demands: Dict[int, float],
    ) -> np.ndarray:
        """Solve the LP relaxation ``min c^T y  s.t.  U y >= v, y >= 0``."""
        task_index = {task_id: row for row, task_id in enumerate(demands)}
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for j, column in enumerate(columns):
            for task_id in column.task_ids:
                rows.append(task_index[task_id])
                cols.append(j)
                data.append(column.contribution)
        coverage = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(demands), len(columns))
        )
        costs = np.array([column.cost for column in columns])
        demand_vector = np.array([demands[t] for t in demands])

        result = linprog(
            c=costs,
            A_ub=-coverage,
            b_ub=-demand_vector,
            bounds=(0, None),
            method="highs",
        )
        if not result.success:  # pragma: no cover - scipy failure is exceptional
            raise InfeasiblePlanError(
                f"LP relaxation of the CIP failed: {result.message}"
            )
        return np.asarray(result.x)

    def _randomized_rounding(self, fractional: np.ndarray, chunk_size: int) -> np.ndarray:
        """Round the fractional LP solution to integer multiplicities.

        Each ``y_j`` is scaled by the boost factor and rounded up with
        probability equal to its fractional part (otherwise down), the standard
        randomized-rounding scheme for covering programs.
        """
        boost = self.rounding_boost
        if boost is None:
            boost = max(1.0, math.log(max(2, chunk_size)) / 2.0)
        scaled = fractional * boost
        floors = np.floor(scaled)
        fractions = scaled - floors
        draws = self._rng.random(len(scaled))
        return (floors + (draws < fractions)).astype(int)

    def _apply_counts(
        self,
        columns: Sequence[_Column],
        counts: np.ndarray,
        plan: DecompositionPlan,
    ) -> Dict[int, float]:
        """Add the rounded columns to the plan; return residual achieved per task."""
        achieved: Dict[int, float] = {}
        for column, count in zip(columns, counts):
            for _ in range(int(count)):
                plan.add(column.task_bin, column.task_ids)
                for task_id in column.task_ids:
                    achieved[task_id] = achieved.get(task_id, 0.0) + column.contribution
        return achieved

    def _greedy_repair(
        self,
        problem: SladeProblem,
        demands: Dict[int, float],
        achieved: Dict[int, float],
        plan: DecompositionPlan,
    ) -> None:
        """Cover any tasks the rounding left short.

        Unsatisfied tasks are patched with the single most cost-effective bin
        (lowest cost per unit of residual), filled greedily with other
        still-unsatisfied tasks so the repair does not distort the baseline's
        cost more than necessary.
        """
        shortfall = {
            task_id: demand - achieved.get(task_id, 0.0)
            for task_id, demand in demands.items()
            if demand - achieved.get(task_id, 0.0) > RESIDUAL_EPSILON
        }
        if not shortfall:
            return
        best_bin = min(
            (b for b in problem.bins if b.residual_contribution > 0.0),
            key=lambda b: b.cost / b.residual_contribution,
        )
        contribution = best_bin.residual_contribution
        while shortfall:
            pending = sorted(shortfall, key=lambda t: -shortfall[t])
            members = pending[: best_bin.cardinality]
            plan.add(best_bin, members)
            for task_id in members:
                shortfall[task_id] -= contribution
                if shortfall[task_id] <= RESIDUAL_EPSILON:
                    del shortfall[task_id]
