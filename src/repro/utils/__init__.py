"""Shared utilities for the SLADE reproduction.

The helpers in this package are deliberately small and dependency-free so that
core algorithm modules can import them without pulling in the simulation or
experiment layers.
"""

from repro.utils.logmath import (
    lcm_of,
    reliability_from_residual,
    residual_from_reliability,
    safe_log1m,
)
from repro.utils.rng import RandomSource, ensure_rng
from repro.utils.timing import Stopwatch
from repro.utils.validation import (
    require_in_unit_interval,
    require_positive,
    require_probability_open,
)

__all__ = [
    "lcm_of",
    "reliability_from_residual",
    "residual_from_reliability",
    "safe_log1m",
    "RandomSource",
    "ensure_rng",
    "Stopwatch",
    "require_in_unit_interval",
    "require_positive",
    "require_probability_open",
]
