"""Stable content digests for cache keys.

The batch planning engine keys its caches by *content fingerprints* of the
core model objects (task bin sets, crowdsourcing tasks, problems).  A
fingerprint must be stable across processes and Python invocations — unlike
``hash()``, which is salted per process — and must change whenever any value
that influences a solver's output changes.  Floats are rendered with
``float.hex()`` so two values collide only when they are bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

#: Length of the hex digests produced by :func:`stable_digest`.  16 hex chars
#: (64 bits) keep keys readable in logs while making accidental collisions
#: vanishingly unlikely at any realistic cache size.
DIGEST_LENGTH = 16


def float_token(value: float) -> str:
    """Render a float so equal tokens imply bit-identical values."""
    return float(value).hex()


def stable_digest(parts: Iterable[str]) -> str:
    """Digest an ordered sequence of string tokens into a short hex key.

    Tokens are length-prefixed before hashing so no two distinct sequences
    can concatenate to the same byte stream.
    """
    hasher = hashlib.sha256()
    for part in parts:
        encoded = part.encode("utf-8")
        hasher.update(str(len(encoded)).encode("ascii"))
        hasher.update(b":")
        hasher.update(encoded)
    return hasher.hexdigest()[:DIGEST_LENGTH]
