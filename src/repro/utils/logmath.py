"""Log-space reliability arithmetic used throughout SLADE.

The SLADE paper (Section 4.1) rewrites the reliability constraint

    Rel(a, B(a)) = 1 - prod_{beta in B(a)} (1 - r_|beta|)  >=  t

into the additive form

    sum_{beta in B(a)} -ln(1 - r_|beta|)  >=  -ln(1 - t).

Every solver in this repository works in that additive ("residual") space: a
task bin of confidence ``r`` contributes ``-ln(1 - r)`` units of reliability,
and an atomic task with threshold ``t`` demands ``-ln(1 - t)`` units in total.
This module centralises the conversions so rounding conventions are identical
everywhere.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Iterable

#: Tasks whose remaining residual requirement drops below this value are
#: considered satisfied.  The value is far below any contribution a realistic
#: task bin can make (confidence 1e-12 contributes ~1e-12) and merely absorbs
#: floating point noise from repeated subtraction.
RESIDUAL_EPSILON = 1e-9


def safe_log1m(probability: float) -> float:
    """Return ``-ln(1 - probability)`` guarding against edge values.

    Parameters
    ----------
    probability:
        A probability in ``[0, 1)``.  A probability of exactly ``1`` would
        demand infinite reliability contribution and is rejected, because the
        paper's model never produces perfectly reliable task bins.

    Returns
    -------
    float
        The non-negative residual contribution / requirement.

    Raises
    ------
    ValueError
        If ``probability`` is outside ``[0, 1)``.
    """
    if not 0.0 <= probability < 1.0:
        raise ValueError(
            f"probability must lie in [0, 1); got {probability!r}"
        )
    return -math.log1p(-probability)


def residual_from_reliability(reliability: float) -> float:
    """Convert a reliability (or confidence) value to residual space.

    This is an alias of :func:`safe_log1m` named after its most common use:
    turning a reliability threshold ``t`` into the required residual
    ``-ln(1 - t)``.
    """
    return safe_log1m(reliability)


def reliability_from_residual(residual: float) -> float:
    """Convert an accumulated residual back to a reliability in ``[0, 1)``.

    The inverse of :func:`residual_from_reliability`:
    ``reliability = 1 - exp(-residual)``.

    Raises
    ------
    ValueError
        If ``residual`` is negative.
    """
    if residual < 0.0:
        raise ValueError(f"residual must be non-negative; got {residual!r}")
    return -math.expm1(-residual)


def lcm_of(values: Iterable[int]) -> int:
    """Return the least common multiple of a collection of positive integers.

    The OPQ structure (Definition 4) keys each combination of task bins by the
    LCM of the bin cardinalities it contains, which is the number of atomic
    tasks the combination covers exactly.

    Raises
    ------
    ValueError
        If the iterable is empty or contains a non-positive integer.
    """
    values = list(values)
    if not values:
        raise ValueError("lcm_of requires at least one value")
    for value in values:
        if value <= 0:
            raise ValueError(f"lcm_of requires positive integers; got {value!r}")
    return reduce(math.lcm, values)


def is_satisfied(residual_remaining: float) -> bool:
    """Return ``True`` when a remaining residual requirement is met.

    A requirement counts as met once it is within :data:`RESIDUAL_EPSILON` of
    zero (or below), which tolerates floating point drift in the greedy
    solver's repeated subtractions.
    """
    return residual_remaining <= RESIDUAL_EPSILON
