"""Random number generator plumbing.

All stochastic components (the crowd simulator, threshold generators, the
randomized-rounding baseline) accept either a seed, a ``numpy`` generator, or
``None``.  :func:`ensure_rng` normalises those inputs so experiments are
reproducible end to end from a single integer seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Anything accepted where randomness is required.
RandomSource = Union[None, int, np.random.Generator]


def ensure_rng(source: RandomSource = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for the given source.

    Parameters
    ----------
    source:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an existing
        generator (returned unchanged so callers can share a stream).
    """
    if isinstance(source, np.random.Generator):
        return source
    if source is None:
        return np.random.default_rng()
    if isinstance(source, (int, np.integer)):
        return np.random.default_rng(int(source))
    raise TypeError(
        "random source must be None, an int seed, or a numpy Generator; "
        f"got {type(source).__name__}"
    )


def spawn_child(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from an existing one.

    Used when a component needs its own stream (e.g. each simulated worker)
    without consuming draws from the parent in an order-dependent way.
    """
    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed)
