"""Lightweight wall-clock timing for the experiment harness.

The paper reports running time curves (Figures 6c/d/g/h/k/l, 7b/d, 8a/b); the
sweep runner wraps each solver call in a :class:`Stopwatch` so the harness can
emit the same series without depending on ``pytest-benchmark`` internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Stopwatch:
    """A start/stop timer accumulating elapsed seconds.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _started_at: Optional[float] = field(default=None, repr=False)

    def start(self) -> "Stopwatch":
        """Begin (or resume) timing."""
        if self._started_at is not None:
            raise RuntimeError("Stopwatch is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total elapsed seconds so far."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Zero the accumulated time.  The stopwatch must be stopped."""
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running Stopwatch")
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently timing."""
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()


def time_callable(func, *args, **kwargs):
    """Call ``func(*args, **kwargs)`` and return ``(result, seconds)``."""
    watch = Stopwatch()
    with watch:
        result = func(*args, **kwargs)
    return result, watch.elapsed
