"""Argument validation helpers.

The public constructors in :mod:`repro.core` validate their inputs eagerly so
that configuration errors surface where they are made rather than deep inside
a solver.  These helpers keep the error messages uniform.
"""

from __future__ import annotations

from typing import Sized


def require_positive(value: float, name: str) -> float:
    """Ensure ``value`` is strictly positive, returning it unchanged."""
    if value <= 0:
        raise ValueError(f"{name} must be positive; got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Ensure ``value`` is greater than or equal to zero."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative; got {value!r}")
    return value


def require_in_unit_interval(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1]; got {value!r}")
    return value


def require_probability_open(value: float, name: str) -> float:
    """Ensure ``value`` is a probability usable in log space: ``[0, 1)``.

    Confidences and reliability thresholds of exactly 1.0 are rejected because
    ``-ln(1 - 1.0)`` is infinite: no finite plan can guarantee them.
    """
    if not 0.0 <= value < 1.0:
        raise ValueError(f"{name} must lie in [0, 1); got {value!r}")
    return value


def require_non_empty(collection: Sized, name: str) -> Sized:
    """Ensure a collection has at least one element."""
    if len(collection) == 0:
        raise ValueError(f"{name} must not be empty")
    return collection
