"""SLADE: a smart large-scale task decomposer for crowdsourcing.

This package reproduces the system described in *"SLADE: A Smart Large-Scale
Task Decomposer in Crowdsourcing"* (Tong et al.).  It decomposes a large-scale
crowdsourcing task — thousands to millions of simple binary-choice *atomic*
tasks — into batches of *task bins* of varying cardinality so that every atomic
task reaches its reliability threshold at minimal total incentive cost.

Quickstart
----------
>>> from repro import TaskBinSet, SladeProblem, OPQSolver
>>> bins = TaskBinSet.from_triples([(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)])
>>> problem = SladeProblem.homogeneous(n=4, threshold=0.95, bins=bins)
>>> result = OPQSolver().solve(problem)
>>> round(result.total_cost, 2)
0.68

The public surface re-exports the core data model, the solvers, the batch
planning engine, and the service layer; the layered architecture
(core → algorithms → engine → service) and the full system inventory are
documented in ``DESIGN.md`` at the repository root.

Serving requests
----------------
>>> from repro import ServiceConfig, SladeService, SolveRequest
>>> service = SladeService(ServiceConfig(solver="opq"))
>>> response = service.solve(SolveRequest(problem=problem))
>>> response.ok, round(response.total_cost, 2)  # doctest: +SKIP
(True, 0.68)
"""

from repro.algorithms import (
    BudgetedDecomposer,
    BudgetedResult,
    CIPBaselineSolver,
    ExactSolver,
    GreedySolver,
    OnlineDecomposer,
    OPQExtendedSolver,
    OPQSolver,
    RelaxedDPSolver,
    SolveResult,
    Solver,
    available_solvers,
    create_solver,
)
from repro.engine import (
    BatchItem,
    BatchPlanner,
    BatchResult,
    BatchSpec,
    BatchStats,
    CacheBackend,
    CacheServer,
    CacheStats,
    HashRing,
    HistogramSnapshot,
    MemoryBackend,
    PlanCache,
    RemoteBackend,
    ShardedBackend,
    SQLiteBackend,
    SeriesStats,
    Telemetry,
    TieredBackend,
    open_backend,
)
from repro.service import (
    AdmissionController,
    AdmissionError,
    AsyncSladeService,
    ErrorEnvelope,
    HttpSladeServer,
    OverloadedError,
    RateLimitedError,
    RequestValidationError,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    SladeHttpClient,
    SladeService,
    SolveRequest,
    SolveResponse,
)
from repro.core import (
    AtomicTask,
    BinAssignment,
    CrowdsourcingTask,
    DecompositionPlan,
    InfeasiblePlanError,
    InvalidBinError,
    InvalidProblemError,
    SladeError,
    SladeProblem,
    TaskBin,
    TaskBinSet,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # core
    "AtomicTask",
    "CrowdsourcingTask",
    "TaskBin",
    "TaskBinSet",
    "BinAssignment",
    "DecompositionPlan",
    "SladeProblem",
    "SladeError",
    "InvalidBinError",
    "InvalidProblemError",
    "InfeasiblePlanError",
    # solvers
    "Solver",
    "SolveResult",
    "GreedySolver",
    "OPQSolver",
    "OPQExtendedSolver",
    "CIPBaselineSolver",
    "RelaxedDPSolver",
    "ExactSolver",
    "available_solvers",
    "create_solver",
    # extensions beyond the paper's core algorithms
    "BudgetedDecomposer",
    "BudgetedResult",
    "OnlineDecomposer",
    # batch planning engine
    "BatchItem",
    "BatchPlanner",
    "BatchResult",
    "BatchSpec",
    "BatchStats",
    "CacheBackend",
    "CacheServer",
    "CacheStats",
    "HashRing",
    "HistogramSnapshot",
    "MemoryBackend",
    "PlanCache",
    "RemoteBackend",
    "ShardedBackend",
    "SQLiteBackend",
    "SeriesStats",
    "Telemetry",
    "TieredBackend",
    "open_backend",
    # service layer
    "AdmissionController",
    "AdmissionError",
    "AsyncSladeService",
    "ErrorEnvelope",
    "HttpSladeServer",
    "OverloadedError",
    "RateLimitedError",
    "RequestValidationError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "SladeHttpClient",
    "SladeService",
    "SolveRequest",
    "SolveResponse",
]
