"""Serialization of SLADE artefacts.

Bin menus are calibrated on one machine, decomposition plans are reviewed and
priced offline, and executions happen against a live platform — so the
artefacts need to move between processes.  This package serialises the three
core objects (task bin sets, crowdsourcing tasks/problems, decomposition
plans) to and from plain JSON-compatible dictionaries and files.
"""

from repro.io.serialization import (
    QUEUE_PICKLE_PROTOCOL,
    queue_from_payload,
    queue_to_payload,
    load_bin_set,
    load_plan,
    load_problem,
    plan_from_dict,
    plan_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_bin_set,
    save_plan,
    save_problem,
    bin_set_from_dict,
    bin_set_to_dict,
    solve_request_from_dict,
    solve_request_to_dict,
    solve_response_from_dict,
    solve_response_to_dict,
)

__all__ = [
    "bin_set_to_dict",
    "bin_set_from_dict",
    "save_bin_set",
    "load_bin_set",
    "problem_to_dict",
    "problem_from_dict",
    "save_problem",
    "load_problem",
    "plan_to_dict",
    "plan_from_dict",
    "save_plan",
    "load_plan",
    "solve_request_to_dict",
    "solve_request_from_dict",
    "solve_response_to_dict",
    "solve_response_from_dict",
    "QUEUE_PICKLE_PROTOCOL",
    "queue_to_payload",
    "queue_from_payload",
]
