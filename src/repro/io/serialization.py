"""JSON serialisation of bin sets, problems and decomposition plans.

The format is deliberately boring: versioned, flat dictionaries with explicit
field names, so files survive library upgrades and can be produced or consumed
by other tooling (spreadsheets, platform uploaders).  Every ``*_from_dict``
function validates through the normal constructors, so a hand-edited file that
violates the model's invariants fails loudly rather than producing a silently
broken plan.

Wire-shape versioning (solve requests/responses only): writers emit
``schema_version`` 2 (and mirror it into the legacy ``version`` field);
readers follow tolerant-reader rules — ``schema_version`` is preferred,
``version`` accepted as a fallback, and both 1 and 2 parse.  Requests are
strict about *field names* (an unknown top-level key is a validation error,
catching client typos like ``dead_line_ms`` before they silently lose a
budget) while responses stay lenient (unknown fields are ignored, so an old
client can read a new server's answer).  File kinds (bin sets, problems,
plans) are unchanged at format version 1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import SladeError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.core.task import AtomicTask, CrowdsourcingTask
# Cached-queue payloads cross host boundaries (SQLite files on shared
# storage, the `repro cached` wire), so their codec is pinned to one pickle
# protocol and re-exported here as part of the public serialisation surface.
from repro.engine.backends.wire import (  # noqa: F401 - public re-exports
    QUEUE_PICKLE_PROTOCOL,
    decode_queue as queue_from_payload,
    encode_queue as queue_to_payload,
)
from repro.service.api import (
    ErrorEnvelope,
    Provenance,
    RequestValidationError,
    SolveRequest,
    SolveResponse,
)

#: Format version written into every file; bumped on incompatible changes.
FORMAT_VERSION = 1

#: Wire-shape version for solve requests/responses (the service surface).
SCHEMA_VERSION = 2

#: Wire-shape versions the tolerant reader accepts.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)

#: Top-level keys a solve request may carry; anything else is rejected.
REQUEST_FIELDS = frozenset({
    "kind", "version", "schema_version",
    "request_id", "solver", "verify", "tenant", "options", "deadline_ms",
    "problem", "bins", "n", "threshold", "thresholds", "name",
})

PathLike = Union[str, Path]


class SerializationError(SladeError):
    """A file or dictionary does not contain what it claims to contain."""


def _check_kind(payload: Dict, expected: str) -> None:
    if not isinstance(payload, dict):
        raise SerializationError(f"expected a mapping, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != expected:
        raise SerializationError(f"expected kind {expected!r}, got {kind!r}")
    version = payload.get("version")
    if version != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {version!r} (this library writes "
            f"version {FORMAT_VERSION})"
        )


def _check_wire_kind(payload: Dict, expected: str) -> int:
    """Validate kind + schema version for a wire shape; return the version.

    Tolerant-reader rules: ``schema_version`` wins when present, the legacy
    ``version`` field is the fallback, and a payload carrying neither is
    treated as version 1 (pre-versioning clients).
    """
    if not isinstance(payload, dict):
        raise SerializationError(f"expected a mapping, got {type(payload).__name__}")
    kind = payload.get("kind")
    if kind != expected:
        raise SerializationError(f"expected kind {expected!r}, got {kind!r}")
    version = payload.get("schema_version", payload.get("version", 1))
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SerializationError(
            f"unsupported schema version {version!r} (this library speaks "
            f"versions {', '.join(str(v) for v in SUPPORTED_SCHEMA_VERSIONS)})"
        )
    return int(version)


# -- task bin sets ---------------------------------------------------------------


def bin_set_to_dict(bins: TaskBinSet) -> Dict:
    """Serialise a task bin set to a JSON-compatible dictionary."""
    payload: Dict = {
        "kind": "task_bin_set",
        "version": FORMAT_VERSION,
        "name": bins.name,
        "bins": [
            {
                "cardinality": task_bin.cardinality,
                "confidence": task_bin.confidence,
                "cost": task_bin.cost,
            }
            for task_bin in bins
        ],
    }
    # Epoch 0 is omitted so pre-epoch files stay byte-identical.
    if bins.calibration_epoch:
        payload["calibration_epoch"] = bins.calibration_epoch
    return payload


def bin_set_from_dict(payload: Dict) -> TaskBinSet:
    """Reconstruct a task bin set from :func:`bin_set_to_dict` output."""
    _check_kind(payload, "task_bin_set")
    bins = [
        TaskBin(entry["cardinality"], entry["confidence"], entry["cost"])
        for entry in payload.get("bins", [])
    ]
    return TaskBinSet(
        bins,
        name=payload.get("name", "bins"),
        calibration_epoch=int(payload.get("calibration_epoch", 0)),
    )


def save_bin_set(bins: TaskBinSet, path: PathLike) -> None:
    """Write a task bin set to a JSON file."""
    Path(path).write_text(json.dumps(bin_set_to_dict(bins), indent=2))


def load_bin_set(path: PathLike) -> TaskBinSet:
    """Read a task bin set from a JSON file."""
    return bin_set_from_dict(json.loads(Path(path).read_text()))


# -- problems ----------------------------------------------------------------------


def problem_to_dict(problem: SladeProblem) -> Dict:
    """Serialise a SLADE problem (task + bins) to a dictionary.

    Task payloads are preserved as-is; they must therefore be JSON-compatible
    (the built-in workload generators only store booleans).
    """
    return {
        "kind": "slade_problem",
        "version": FORMAT_VERSION,
        "name": problem.name,
        "task_name": problem.task.name,
        "bins": bin_set_to_dict(problem.bins),
        "tasks": [
            {
                "task_id": atomic.task_id,
                "threshold": atomic.threshold,
                "payload": dict(atomic.payload),
            }
            for atomic in problem.task
        ],
    }


def problem_from_dict(payload: Dict) -> SladeProblem:
    """Reconstruct a SLADE problem from :func:`problem_to_dict` output."""
    _check_kind(payload, "slade_problem")
    bins = bin_set_from_dict(payload["bins"])
    tasks = [
        AtomicTask(entry["task_id"], entry["threshold"], entry.get("payload", {}))
        for entry in payload.get("tasks", [])
    ]
    task = CrowdsourcingTask(tasks, name=payload.get("task_name", "task"))
    return SladeProblem(task, bins, name=payload.get("name", "slade"))


def save_problem(problem: SladeProblem, path: PathLike) -> None:
    """Write a SLADE problem to a JSON file."""
    Path(path).write_text(json.dumps(problem_to_dict(problem), indent=2))


def load_problem(path: PathLike) -> SladeProblem:
    """Read a SLADE problem from a JSON file."""
    return problem_from_dict(json.loads(Path(path).read_text()))


# -- plans --------------------------------------------------------------------------


def plan_to_dict(plan: DecompositionPlan) -> Dict:
    """Serialise a decomposition plan to a dictionary.

    Each posting records the bin it uses (cardinality, confidence, cost) and
    the atomic tasks packed into it, so a plan file is self-contained: it can
    be priced and executed without the original bin set object.
    """
    return {
        "kind": "decomposition_plan",
        "version": FORMAT_VERSION,
        "solver": plan.solver,
        "total_cost": plan.total_cost,
        "assignments": [
            {
                "cardinality": assignment.task_bin.cardinality,
                "confidence": assignment.task_bin.confidence,
                "cost": assignment.task_bin.cost,
                "task_ids": list(assignment.task_ids),
            }
            for assignment in plan
        ],
    }


def plan_from_dict(payload: Dict) -> DecompositionPlan:
    """Reconstruct a decomposition plan from :func:`plan_to_dict` output."""
    _check_kind(payload, "decomposition_plan")
    plan = DecompositionPlan(solver=payload.get("solver"))
    for entry in payload.get("assignments", []):
        task_bin = TaskBin(entry["cardinality"], entry["confidence"], entry["cost"])
        plan.add(task_bin, entry["task_ids"])
    recorded = payload.get("total_cost")
    if recorded is not None and abs(recorded - plan.total_cost) > 1e-6:
        raise SerializationError(
            f"plan file claims total cost {recorded} but its assignments sum to "
            f"{plan.total_cost:.6f}"
        )
    return plan


def save_plan(plan: DecompositionPlan, path: PathLike) -> None:
    """Write a decomposition plan to a JSON file."""
    Path(path).write_text(json.dumps(plan_to_dict(plan), indent=2))


def load_plan(path: PathLike) -> DecompositionPlan:
    """Read a decomposition plan from a JSON file."""
    return plan_from_dict(json.loads(Path(path).read_text()))


# -- service requests and responses -------------------------------------------------


def solve_request_to_dict(request: SolveRequest) -> Dict:
    """Serialise a service solve request to a JSON-compatible dictionary.

    ``deadline_ms`` (the relative budget) is on the wire; ``deadline_at``
    (the absolute monotonic instant) never is — monotonic clocks are
    meaningless across processes, so the receiver re-stamps at receipt.
    """
    payload = {
        "kind": "solve_request",
        "version": SCHEMA_VERSION,
        "schema_version": SCHEMA_VERSION,
        "request_id": request.request_id,
        "solver": request.solver,
        "verify": request.verify,
        "tenant": request.tenant,
        "options": dict(request.options),
        "problem": problem_to_dict(request.problem),
    }
    if request.deadline_ms is not None:
        payload["deadline_ms"] = request.deadline_ms
    return payload


def _request_problem(payload: Dict) -> SladeProblem:
    """Extract the problem from a request payload.

    Two forms are accepted: the full nested ``"problem"`` dictionary
    (:func:`problem_to_dict` output), or a compact inline form for
    hand-written JSON-lines traffic — ``"bins"`` (a bin-set dictionary or a
    list of ``[cardinality, confidence, cost]`` triples) together with either
    ``"n"`` + ``"threshold"`` (homogeneous) or ``"thresholds"`` (a per-task
    list).
    """
    if "problem" in payload:
        return problem_from_dict(payload["problem"])
    raw_bins = payload.get("bins")
    if raw_bins is None:
        raise SerializationError(
            "solve request needs either a 'problem' dictionary or inline "
            "'bins' with 'n'/'threshold' or 'thresholds'"
        )
    if isinstance(raw_bins, dict):
        bins = bin_set_from_dict(raw_bins)
    else:
        bins = TaskBinSet.from_triples(
            [tuple(entry) for entry in raw_bins], name=payload.get("name", "bins")
        )
    name = payload.get("name", "request")
    if "thresholds" in payload:
        return SladeProblem.heterogeneous(payload["thresholds"], bins, name=name)
    if "n" not in payload or "threshold" not in payload:
        raise SerializationError(
            "inline solve request needs 'thresholds' or both 'n' and 'threshold'"
        )
    return SladeProblem.homogeneous(
        int(payload["n"]), float(payload["threshold"]), bins, name=name
    )


def solve_request_from_dict(
    payload: Dict, default_request_id: Optional[str] = None
) -> SolveRequest:
    """Reconstruct a solve request from :func:`solve_request_to_dict` output.

    ``default_request_id`` fills in a correlation id when the payload does
    not carry one (the ``repro serve`` loop passes the input line number).

    Unknown top-level keys raise
    :class:`~repro.service.api.RequestValidationError`: on the request side
    a silently dropped field is a client bug (a misspelled ``deadline_ms``
    would otherwise run unbudgeted), so the reader is strict where the
    response reader is lenient.
    """
    _check_wire_kind(payload, "solve_request")
    unknown = sorted(set(payload) - REQUEST_FIELDS)
    if unknown:
        raise RequestValidationError(
            f"unknown solve_request field(s): {', '.join(unknown)}"
        )
    return SolveRequest(
        problem=_request_problem(payload),
        solver=payload.get("solver"),
        options=dict(payload.get("options") or {}),
        verify=payload.get("verify"),
        request_id=payload.get("request_id") or default_request_id,
        tenant=payload.get("tenant"),
        deadline_ms=payload.get("deadline_ms"),
    )


def solve_response_to_dict(response: SolveResponse, include_plan: bool = True) -> Dict:
    """Serialise a service solve response to a JSON-compatible dictionary.

    ``include_plan=False`` drops the (potentially large) plan body, keeping
    only the headline numbers — useful for logs and dashboards.
    """
    return {
        "kind": "solve_response",
        "version": SCHEMA_VERSION,
        "schema_version": SCHEMA_VERSION,
        "request_id": response.request_id,
        "ok": response.ok,
        "solver": response.solver,
        "total_cost": response.total_cost,
        "feasible": response.feasible,
        "cache": response.cache,
        "elapsed_seconds": response.elapsed_seconds,
        "solve_seconds": response.solve_seconds,
        "batch_size": response.batch_size,
        "problem_fingerprint": response.problem_fingerprint,
        "error": (
            {"type": response.error.type, "message": response.error.message}
            if response.error is not None
            else None
        ),
        "provenance": (
            {
                "quality": response.provenance.quality,
                "tier": response.provenance.tier,
                "deadline_ms": response.provenance.deadline_ms,
                "remaining_budget_ms": response.provenance.remaining_budget_ms,
            }
            if response.provenance is not None
            else None
        ),
        "plan": (
            plan_to_dict(response.plan)
            if include_plan and response.plan is not None
            else None
        ),
    }


def _provenance_from_dict(entry: Optional[Dict]) -> Optional[Provenance]:
    if not isinstance(entry, dict):
        return None
    return Provenance(
        quality=entry.get("quality", "optimal"),
        tier=entry.get("tier", "solver"),
        deadline_ms=entry.get("deadline_ms"),
        remaining_budget_ms=entry.get("remaining_budget_ms"),
    )


def solve_response_from_dict(payload: Dict) -> SolveResponse:
    """Reconstruct a solve response from :func:`solve_response_to_dict` output.

    Lenient by design: unknown fields are ignored and ``provenance`` is
    optional, so a version-1 client library can still read a version-2
    server's answers (and vice versa).
    """
    _check_wire_kind(payload, "solve_response")
    error = payload.get("error")
    plan = payload.get("plan")
    return SolveResponse(
        request_id=payload["request_id"],
        ok=bool(payload["ok"]),
        solver=payload.get("solver"),
        plan=plan_from_dict(plan) if plan is not None else None,
        total_cost=payload.get("total_cost"),
        feasible=payload.get("feasible"),
        cache=payload.get("cache", "none"),
        elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        solve_seconds=float(payload.get("solve_seconds", 0.0)),
        batch_size=int(payload.get("batch_size", 1)),
        problem_fingerprint=payload.get("problem_fingerprint"),
        error=ErrorEnvelope(error["type"], error["message"]) if error else None,
        provenance=_provenance_from_dict(payload.get("provenance")),
    )
