"""Decomposition plans: the output of every SLADE solver.

A plan is a multiset of *bin assignments*.  Each assignment posts one task bin
``b_l`` to the crowd with a concrete set of at most ``l`` atomic tasks inside.
The plan exposes the two quantities the paper optimises and constrains:

* the total incentive cost ``sum_i tau_i * c_i`` (Definition 3), and
* the reliability each atomic task reaches through the bins it appears in
  (Definition 2).

Plans are plain data: solvers build them, the experiment harness prices them,
and the crowd simulator executes them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.bins import TaskBin
from repro.core.errors import InfeasiblePlanError, InvalidBinError
from repro.core.task import CrowdsourcingTask
from repro.utils.logmath import (
    RESIDUAL_EPSILON,
    reliability_from_residual,
    residual_from_reliability,
)


@dataclass(frozen=True)
class BinAssignment:
    """One posting of a task bin holding a concrete set of atomic tasks.

    Attributes
    ----------
    task_bin:
        The ``l``-cardinality bin posted to the crowd.
    task_ids:
        Identifiers of the atomic tasks packed into this posting.  At most
        ``task_bin.cardinality`` distinct tasks; fewer is allowed (the last
        posting of a plan is often partially filled) and the full bin cost is
        still paid, exactly as on a real platform.
    """

    task_bin: TaskBin
    task_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.task_ids) == 0:
            raise InvalidBinError("a bin assignment must contain at least one atomic task")
        if len(set(self.task_ids)) != len(self.task_ids):
            raise InvalidBinError(
                f"a bin assignment cannot repeat an atomic task: {self.task_ids}"
            )
        if len(self.task_ids) > self.task_bin.cardinality:
            raise InvalidBinError(
                f"{len(self.task_ids)} tasks exceed bin cardinality "
                f"{self.task_bin.cardinality}"
            )

    @property
    def cost(self) -> float:
        """Incentive cost of this posting (the full bin cost)."""
        return self.task_bin.cost

    @property
    def fill_ratio(self) -> float:
        """Fraction of the bin's capacity actually used."""
        return len(self.task_ids) / self.task_bin.cardinality

    def __str__(self) -> str:
        ids = ",".join(str(i) for i in self.task_ids)
        return f"{self.task_bin.cardinality}-bin[{ids}]"


class DecompositionPlan:
    """A complete decomposition plan ``DP_T`` for a large-scale task.

    Parameters
    ----------
    assignments:
        The bin postings making up the plan.
    solver:
        Optional name of the algorithm that produced the plan, carried along
        for experiment reports.
    """

    def __init__(
        self,
        assignments: Iterable[BinAssignment] = (),
        solver: Optional[str] = None,
    ) -> None:
        self._assignments: List[BinAssignment] = list(assignments)
        self.solver = solver

    # -- mutation (used by solvers while building) ------------------------------

    def add(self, task_bin: TaskBin, task_ids: Sequence[int]) -> BinAssignment:
        """Append a posting of ``task_bin`` holding ``task_ids`` and return it."""
        assignment = BinAssignment(task_bin, tuple(task_ids))
        self._assignments.append(assignment)
        return assignment

    def extend(self, other: "DecompositionPlan") -> None:
        """Append every assignment of ``other`` to this plan.

        The heterogeneous solver merges the per-group plans this way
        (Algorithm 5, line 15).
        """
        self._assignments.extend(other.assignments)

    # -- container protocol ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self) -> Iterator[BinAssignment]:
        return iter(self._assignments)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DecompositionPlan(assignments={len(self)}, "
            f"cost={self.total_cost:.4f}, solver={self.solver!r})"
        )

    @property
    def assignments(self) -> List[BinAssignment]:
        """The bin postings in insertion order."""
        return list(self._assignments)

    # -- cost accounting ----------------------------------------------------------

    @property
    def total_cost(self) -> float:
        """Total incentive cost ``sum_i tau_i c_i`` of the plan."""
        return sum(assignment.cost for assignment in self._assignments)

    def bin_usage(self) -> Dict[int, int]:
        """How many times each bin cardinality is posted (the ``tau_i`` values)."""
        usage: Counter = Counter()
        for assignment in self._assignments:
            usage[assignment.task_bin.cardinality] += 1
        return dict(usage)

    def cost_per_task(self, task: CrowdsourcingTask) -> float:
        """Average incentive cost per atomic task of ``task``."""
        return self.total_cost / len(task)

    # -- reliability accounting ------------------------------------------------------

    def residuals(self) -> Dict[int, float]:
        """Accumulated residual reliability per atomic task id.

        Tasks never mentioned by the plan are simply absent from the mapping.
        """
        totals: Dict[int, float] = defaultdict(float)
        for assignment in self._assignments:
            contribution = assignment.task_bin.residual_contribution
            for task_id in assignment.task_ids:
                totals[task_id] += contribution
        return dict(totals)

    def reliabilities(self) -> Dict[int, float]:
        """Achieved reliability ``Rel(a_i, B(a_i))`` per atomic task id."""
        return {
            task_id: reliability_from_residual(residual)
            for task_id, residual in self.residuals().items()
        }

    def reliability_of(self, task_id: int) -> float:
        """Achieved reliability of one atomic task (0.0 when unassigned)."""
        return self.reliabilities().get(task_id, 0.0)

    def assignments_of(self, task_id: int) -> List[BinAssignment]:
        """All postings that include the given atomic task."""
        return [a for a in self._assignments if task_id in a.task_ids]

    # -- feasibility -------------------------------------------------------------------

    def unsatisfied_tasks(self, task: CrowdsourcingTask) -> List[int]:
        """Identifiers of atomic tasks whose reliability threshold is not met."""
        residuals = self.residuals()
        failing = []
        for atomic in task:
            achieved = residuals.get(atomic.task_id, 0.0)
            demanded = residual_from_reliability(atomic.threshold)
            if achieved + RESIDUAL_EPSILON < demanded:
                failing.append(atomic.task_id)
        return failing

    def is_feasible(self, task: CrowdsourcingTask) -> bool:
        """Whether every atomic task of ``task`` meets its threshold."""
        return not self.unsatisfied_tasks(task)

    def require_feasible(self, task: CrowdsourcingTask) -> "DecompositionPlan":
        """Raise :class:`InfeasiblePlanError` unless the plan is feasible.

        Returns the plan itself so callers can chain the check.
        """
        failing = self.unsatisfied_tasks(task)
        if failing:
            preview = ", ".join(str(i) for i in failing[:10])
            suffix = "..." if len(failing) > 10 else ""
            raise InfeasiblePlanError(
                f"plan ({self.solver or 'unknown solver'}) leaves {len(failing)} "
                f"atomic task(s) below their reliability threshold: {preview}{suffix}"
            )
        return self

    # -- reporting ----------------------------------------------------------------------

    def summary(self, task: Optional[CrowdsourcingTask] = None) -> Dict[str, object]:
        """A compact dictionary describing the plan for reports and logs."""
        info: Dict[str, object] = {
            "solver": self.solver,
            "assignments": len(self._assignments),
            "total_cost": self.total_cost,
            "bin_usage": self.bin_usage(),
        }
        if task is not None:
            info["n_tasks"] = len(task)
            info["feasible"] = self.is_feasible(task)
            info["cost_per_task"] = self.cost_per_task(task)
            reliabilities = self.reliabilities()
            covered = [reliabilities.get(t.task_id, 0.0) for t in task]
            info["min_reliability"] = min(covered)
            info["mean_reliability"] = sum(covered) / len(covered)
        return info
