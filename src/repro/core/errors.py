"""Exception hierarchy for the SLADE reproduction.

All library-raised errors derive from :class:`SladeError` so applications can
catch misconfiguration separately from programming errors.
"""

from __future__ import annotations


class SladeError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidBinError(SladeError):
    """A task bin or task bin set violates the model's assumptions.

    Examples: non-positive cardinality, confidence outside ``[0, 1)``,
    duplicate cardinalities within one bin set, or a non-positive cost.
    """


class InvalidProblemError(SladeError):
    """A SLADE problem instance is malformed.

    Examples: an empty task set, a threshold outside ``[0, 1)``, or a
    mismatch between the number of tasks and the number of thresholds.
    """


class InfeasiblePlanError(SladeError):
    """A decomposition plan does not satisfy every task's reliability threshold.

    Raised by :meth:`repro.core.plan.DecompositionPlan.require_feasible` and by
    solvers that cannot construct a feasible plan at all (which can only happen
    when the bin set is empty or contains only zero-confidence bins).
    """


class CalibrationError(SladeError):
    """Probe-based estimation of task bin parameters failed.

    Raised by :mod:`repro.crowd.calibration` when, for instance, no probe
    answers were collected within the response-time threshold for a
    cardinality, so no confidence estimate exists.
    """


class SimulationError(SladeError):
    """The crowd platform simulation was asked to do something unsupported."""
