"""Core data model of the SLADE reproduction.

This package defines the vocabulary of the paper's problem statement
(Section 3): atomic tasks, large-scale crowdsourcing tasks, ``l``-cardinality
task bins, reliability, decomposition plans, and the SLADE problem instances
the solvers in :mod:`repro.algorithms` consume.
"""

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import (
    InfeasiblePlanError,
    InvalidBinError,
    InvalidProblemError,
    SladeError,
)
from repro.core.plan import BinAssignment, DecompositionPlan
from repro.core.problem import SladeProblem
from repro.core.reliability import (
    aggregate_reliability,
    reliability_of_assignment,
    required_residual,
)
from repro.core.task import AtomicTask, CrowdsourcingTask

__all__ = [
    "TaskBin",
    "TaskBinSet",
    "AtomicTask",
    "CrowdsourcingTask",
    "BinAssignment",
    "DecompositionPlan",
    "SladeProblem",
    "aggregate_reliability",
    "reliability_of_assignment",
    "required_residual",
    "SladeError",
    "InvalidBinError",
    "InvalidProblemError",
    "InfeasiblePlanError",
]
