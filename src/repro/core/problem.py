"""SLADE problem instances (Definition 3 of the paper).

A :class:`SladeProblem` bundles the three ingredients every solver needs:

* the large-scale crowdsourcing task ``T`` (atomic tasks with thresholds),
* the task bin set ``B``, and
* convenience views (homogeneity, the relaxed-variant test of Section 4.2).

The class is deliberately thin — it validates the combination and exposes
read-only views, leaving optimisation entirely to :mod:`repro.algorithms`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.task import AtomicTask, CrowdsourcingTask
from repro.utils.hashing import stable_digest


@dataclass(frozen=True)
class SladeProblem:
    """An instance of the SLADE optimisation problem.

    Attributes
    ----------
    task:
        The large-scale crowdsourcing task ``T`` whose atomic tasks carry
        their reliability thresholds ``t_i``.
    bins:
        The menu of task bins ``B`` the decomposer may use.
    name:
        Optional label used in experiment reports.
    """

    task: CrowdsourcingTask
    bins: TaskBinSet
    name: str = "slade"

    def __post_init__(self) -> None:
        if len(self.task) == 0:
            raise InvalidProblemError("problem has no atomic tasks")
        if len(self.bins) == 0:
            raise InvalidProblemError("problem has no task bins")
        if self.bins.max_confidence <= 0.0:
            raise InvalidProblemError(
                "every task bin has zero confidence; no reliability threshold "
                "can ever be satisfied"
            )

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        n: int,
        threshold: float,
        bins: TaskBinSet,
        name: str = "slade-homogeneous",
    ) -> "SladeProblem":
        """Build a homogeneous instance with ``n`` tasks sharing ``threshold``."""
        return cls(CrowdsourcingTask.homogeneous(n, threshold), bins, name)

    @classmethod
    def heterogeneous(
        cls,
        thresholds: Sequence[float],
        bins: TaskBinSet,
        name: str = "slade-heterogeneous",
    ) -> "SladeProblem":
        """Build a heterogeneous instance from explicit per-task thresholds."""
        return cls(CrowdsourcingTask.heterogeneous(thresholds), bins, name)

    # -- derived views ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of atomic tasks ``n = |T|``."""
        return len(self.task)

    @property
    def m(self) -> int:
        """Number of task bins ``m = |B|``."""
        return len(self.bins)

    @property
    def is_homogeneous(self) -> bool:
        """Whether all atomic tasks share one reliability threshold."""
        return self.task.is_homogeneous

    @property
    def homogeneous_threshold(self) -> float:
        """The common threshold of a homogeneous instance.

        Raises
        ------
        InvalidProblemError
            If the instance is heterogeneous.
        """
        if not self.is_homogeneous:
            raise InvalidProblemError(
                "instance is heterogeneous; there is no single threshold"
            )
        return self.task[0].threshold

    @property
    def atomic_tasks(self) -> List[AtomicTask]:
        """The atomic tasks in declaration order."""
        return list(self.task)

    @property
    def fingerprint(self) -> str:
        """Stable content digest of the instance (tasks + bins, not the name).

        Problems with equal fingerprints are solved identically by every
        deterministic solver, which is what lets the batch planning engine
        reuse work across instances.
        """
        return stable_digest(
            ("slade_problem", self.task.fingerprint, self.bins.fingerprint)
        )

    def is_relaxed_variant(self) -> bool:
        """Test the polynomial-time relaxed variant of Section 4.2.

        The relaxed variant requires every bin confidence to be at least the
        maximum reliability threshold (``r_j >= t_max`` for all ``j``), so a
        single posting of any bin already satisfies any atomic task.  The
        rod-cutting dynamic program in
        :class:`repro.algorithms.dp_relaxed.RelaxedDPSolver` solves such
        instances exactly in ``O(n m)`` time.
        """
        return self.bins.min_confidence >= self.task.max_threshold

    def restricted_to_bins(self, max_cardinality: int, name: Optional[str] = None) -> "SladeProblem":
        """Return a copy of the problem using only bins up to ``max_cardinality``."""
        return SladeProblem(
            self.task,
            self.bins.restrict_max_cardinality(max_cardinality),
            name or f"{self.name}|B<={max_cardinality}",
        )

    def describe(self) -> str:
        """A one-line human-readable description for logs and reports."""
        kind = "homogeneous" if self.is_homogeneous else "heterogeneous"
        thresholds = (
            f"t={self.task[0].threshold:.3f}"
            if self.is_homogeneous
            else f"t in [{self.task.min_threshold:.3f}, {self.task.max_threshold:.3f}]"
        )
        return (
            f"{self.name}: {kind}, n={self.n}, m={self.m} "
            f"(max cardinality {self.bins.max_cardinality}), {thresholds}"
        )
