"""Task bins: the unit of work handed to a single crowd worker.

Definition 1 of the paper: an ``l``-cardinality task bin is a triple
``b_l = <l, r_l, c_l>`` where ``l`` is the maximum number of distinct atomic
tasks packed into the bin, ``r_l`` is the *confidence* (average probability a
worker answers each atomic task in the bin correctly), and ``c_l`` is the
incentive cost paid for completing the whole bin.

A :class:`TaskBinSet` is the menu ``B = {b_1, ..., b_m}`` the decomposer can
draw from.  Following the paper's experiments we index bins by their
cardinality; a set therefore holds at most one bin per cardinality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.errors import InvalidBinError
from repro.utils.hashing import float_token, stable_digest
from repro.utils.logmath import residual_from_reliability
from repro.utils.validation import require_positive, require_probability_open


@dataclass(frozen=True, order=True)
class TaskBin:
    """An ``l``-cardinality task bin ``<l, r_l, c_l>``.

    Attributes
    ----------
    cardinality:
        Maximum number of distinct atomic tasks in the bin (``l >= 1``).
    confidence:
        Probability ``r_l`` in ``[0, 1)`` that a worker answers each atomic
        task in the bin correctly.
    cost:
        Incentive cost ``c_l > 0`` paid per posted bin.
    """

    cardinality: int
    confidence: float
    cost: float

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise InvalidBinError(
                f"cardinality must be at least 1; got {self.cardinality}"
            )
        require_probability_open(self.confidence, "confidence")
        require_positive(self.cost, "cost")

    @property
    def residual_contribution(self) -> float:
        """Reliability contributed per assignment: ``-ln(1 - r_l)``."""
        return residual_from_reliability(self.confidence)

    @property
    def cost_per_task(self) -> float:
        """Average incentive cost per atomic task when the bin is full."""
        return self.cost / self.cardinality

    @property
    def fingerprint_token(self) -> str:
        """The bin's contribution to a :class:`TaskBinSet` fingerprint."""
        return (
            f"{self.cardinality}:{float_token(self.confidence)}:"
            f"{float_token(self.cost)}"
        )

    def __str__(self) -> str:
        return (
            f"b{self.cardinality}(r={self.confidence:.3f}, c={self.cost:.3f})"
        )


class TaskBinSet:
    """The menu of task bins available to the decomposer.

    The set is keyed by cardinality.  Iteration yields bins in increasing
    cardinality order, matching the paper's ``b_1, ..., b_m`` notation.

    Parameters
    ----------
    bins:
        The task bins.  Cardinalities must be distinct.
    name:
        Optional label (e.g. ``"jelly-cost0.1"``) used in reports.
    calibration_epoch:
        Monotonically increasing recalibration counter (Section 3.1: menus
        are re-estimated "regularly").  Epoch 0 is the as-published menu;
        every recalibration bumps it.  A non-zero epoch participates in
        :attr:`fingerprint`, so a recalibrated menu can never alias a plan
        cached for an ancestor menu — even when the corrected confidences
        happen to round back to the originals.
    """

    def __init__(
        self,
        bins: Iterable[TaskBin],
        name: str = "bins",
        calibration_epoch: int = 0,
    ) -> None:
        if calibration_epoch < 0:
            raise InvalidBinError(
                f"calibration_epoch must be non-negative; got {calibration_epoch}"
            )
        self.name = name
        self.calibration_epoch = calibration_epoch
        self._by_cardinality: Dict[int, TaskBin] = {}
        for task_bin in bins:
            if task_bin.cardinality in self._by_cardinality:
                raise InvalidBinError(
                    f"duplicate cardinality {task_bin.cardinality} in task bin set"
                )
            self._by_cardinality[task_bin.cardinality] = task_bin
        if not self._by_cardinality:
            raise InvalidBinError("a task bin set needs at least one bin")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_triples(
        cls,
        triples: Sequence[Tuple[int, float, float]],
        name: str = "bins",
    ) -> "TaskBinSet":
        """Build a bin set from ``(cardinality, confidence, cost)`` triples.

        Examples
        --------
        The paper's Table 1 bin set:

        >>> bins = TaskBinSet.from_triples([(1, 0.9, 0.1), (2, 0.85, 0.18), (3, 0.8, 0.24)])
        >>> len(bins)
        3
        """
        return cls((TaskBin(l, r, c) for l, r, c in triples), name=name)

    @classmethod
    def from_profile(
        cls,
        confidences: Mapping[int, float],
        costs: Mapping[int, float],
        name: str = "bins",
    ) -> "TaskBinSet":
        """Build a bin set from aligned cardinality→confidence/cost mappings."""
        if set(confidences) != set(costs):
            raise InvalidBinError(
                "confidence and cost mappings must cover the same cardinalities"
            )
        return cls(
            (TaskBin(l, confidences[l], costs[l]) for l in sorted(confidences)),
            name=name,
        )

    # -- container protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_cardinality)

    def __iter__(self) -> Iterator[TaskBin]:
        for cardinality in sorted(self._by_cardinality):
            yield self._by_cardinality[cardinality]

    def __contains__(self, cardinality: int) -> bool:
        return cardinality in self._by_cardinality

    def __getitem__(self, cardinality: int) -> TaskBin:
        try:
            return self._by_cardinality[cardinality]
        except KeyError:
            raise KeyError(f"no task bin with cardinality {cardinality}") from None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskBinSet(name={self.name!r}, m={len(self)})"

    # -- derived views ----------------------------------------------------------

    @property
    def cardinalities(self) -> List[int]:
        """Available bin cardinalities in increasing order."""
        return sorted(self._by_cardinality)

    @property
    def max_cardinality(self) -> int:
        """The largest cardinality in the set (the paper's ``|B|`` knob)."""
        return max(self._by_cardinality)

    @property
    def max_confidence(self) -> float:
        """The highest confidence of any bin in the set."""
        return max(task_bin.confidence for task_bin in self)

    @property
    def min_confidence(self) -> float:
        """The lowest confidence of any bin in the set."""
        return min(task_bin.confidence for task_bin in self)

    @property
    def fingerprint(self) -> str:
        """Stable content digest of the menu, usable as a cache key.

        Two bin sets share a fingerprint exactly when they offer the same
        ``(cardinality, confidence, cost)`` triples at the same calibration
        epoch; the display ``name`` is deliberately excluded because it never
        influences a solver's output.  The digest is stable across processes
        (unlike ``hash()``), so the batch planning engine can key shared OPQ
        caches with it.  Epoch 0 contributes no token, keeping fingerprints
        (and persisted cache files) byte-identical to pre-epoch builds.
        """
        tokens: Tuple[str, ...] = ("task_bin_set",)
        if self.calibration_epoch:
            tokens += (f"epoch={self.calibration_epoch}",)
        return stable_digest(tokens + tuple(b.fingerprint_token for b in self))

    def bins(self) -> List[TaskBin]:
        """Return the bins as a list ordered by cardinality."""
        return list(self)

    def restrict_max_cardinality(self, max_cardinality: int, name: Optional[str] = None) -> "TaskBinSet":
        """Return a bin set containing only bins of cardinality <= ``max_cardinality``.

        Used by the Figure 6e-h sweep that varies the maximum cardinality.
        """
        kept = [b for b in self if b.cardinality <= max_cardinality]
        if not kept:
            raise InvalidBinError(
                f"no bins remain with cardinality <= {max_cardinality}"
            )
        return TaskBinSet(
            kept,
            name=name or f"{self.name}<= {max_cardinality}",
            calibration_epoch=self.calibration_epoch,
        )

    def with_epoch(self, calibration_epoch: int, name: Optional[str] = None) -> "TaskBinSet":
        """Return the same menu stamped with a different calibration epoch."""
        return TaskBinSet(
            self.bins(),
            name=name or self.name,
            calibration_epoch=calibration_epoch,
        )

    def next_epoch(
        self,
        bins: Optional[Iterable[TaskBin]] = None,
        name: Optional[str] = None,
    ) -> "TaskBinSet":
        """Derive the successor menu one calibration epoch later.

        ``bins`` defaults to the current bins; recalibration passes the
        corrected triples.  The successor always carries ``epoch + 1`` so its
        fingerprint differs from every ancestor, even if the corrected
        confidences are numerically identical.
        """
        return TaskBinSet(
            self.bins() if bins is None else bins,
            name=name or self.name,
            calibration_epoch=self.calibration_epoch + 1,
        )

    def is_monotone(self) -> bool:
        """Check the paper's Section 2 observation on this bin set.

        Returns ``True`` when confidence is non-increasing and per-task cost is
        non-increasing as cardinality grows.  Solvers do not require
        monotonicity, but the datasets in :mod:`repro.datasets` satisfy it and
        a violation usually signals a calibration problem.
        """
        ordered = self.bins()
        for previous, current in zip(ordered, ordered[1:]):
            if current.confidence > previous.confidence + 1e-12:
                return False
            if current.cost_per_task > previous.cost_per_task + 1e-12:
                return False
        return True
