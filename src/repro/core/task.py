"""Atomic tasks and large-scale crowdsourcing tasks.

The paper models a large-scale crowdsourcing task ``T`` as a set of ``n``
independent *atomic* tasks, each a binary-choice question of trivial cognitive
load (Section 3.1).  Atomic tasks carry an identifier, an optional payload (for
the simulator: the question and its ground truth), and a reliability threshold
``t_i`` — the minimum acceptable probability of no false negative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.core.errors import InvalidProblemError
from repro.utils.hashing import float_token, stable_digest
from repro.utils.logmath import residual_from_reliability
from repro.utils.validation import require_probability_open


@dataclass(frozen=True)
class AtomicTask:
    """A single binary-choice question posed to the crowd.

    Attributes
    ----------
    task_id:
        Unique identifier within a :class:`CrowdsourcingTask`.
    threshold:
        Reliability threshold ``t_i`` in ``[0, 1)``: the decomposition plan
        must give this task at least this probability of being answered
        correctly by at least one assigned task bin.
    payload:
        Optional application data, e.g. a reference to the satellite image to
        screen.  The decomposition algorithms never look at it; the crowd
        simulator uses ``payload.get("truth")`` as the ground-truth label.
    """

    task_id: int
    threshold: float = 0.9
    payload: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_probability_open(self.threshold, "threshold")
        if self.task_id < 0:
            raise InvalidProblemError(
                f"task_id must be non-negative; got {self.task_id}"
            )

    @property
    def required_residual(self) -> float:
        """The threshold expressed in residual (log) space: ``-ln(1 - t_i)``."""
        return residual_from_reliability(self.threshold)

    def with_threshold(self, threshold: float) -> "AtomicTask":
        """Return a copy of this task with a different reliability threshold."""
        return AtomicTask(self.task_id, threshold, self.payload)


class CrowdsourcingTask:
    """A large-scale crowdsourcing task: an ordered collection of atomic tasks.

    The class behaves like an immutable sequence of :class:`AtomicTask`.  Task
    identifiers must be unique; they are usually ``0..n-1`` but any distinct
    non-negative integers are accepted (the simulator reuses upstream IDs).

    Parameters
    ----------
    tasks:
        The atomic tasks making up the large-scale task.
    name:
        Optional human-readable label used in experiment reports.
    """

    def __init__(self, tasks: Iterable[AtomicTask], name: str = "task") -> None:
        self._tasks: List[AtomicTask] = list(tasks)
        self.name = name
        if not self._tasks:
            raise InvalidProblemError("a crowdsourcing task needs at least one atomic task")
        seen = set()
        for task in self._tasks:
            if task.task_id in seen:
                raise InvalidProblemError(
                    f"duplicate atomic task id {task.task_id} in crowdsourcing task"
                )
            seen.add(task.task_id)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        n: int,
        threshold: float,
        name: str = "task",
    ) -> "CrowdsourcingTask":
        """Build a task of ``n`` atomic tasks sharing one reliability threshold.

        This is the homogeneous SLADE setting (Section 5).
        """
        if n <= 0:
            raise InvalidProblemError(f"n must be positive; got {n}")
        require_probability_open(threshold, "threshold")
        return cls(
            (AtomicTask(i, threshold) for i in range(n)),
            name=name,
        )

    @classmethod
    def heterogeneous(
        cls,
        thresholds: Sequence[float],
        name: str = "task",
    ) -> "CrowdsourcingTask":
        """Build a task whose atomic tasks carry per-task thresholds.

        This is the heterogeneous SLADE setting (Section 6).
        """
        if len(thresholds) == 0:
            raise InvalidProblemError("thresholds must not be empty")
        return cls(
            (AtomicTask(i, float(t)) for i, t in enumerate(thresholds)),
            name=name,
        )

    # -- sequence protocol ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[AtomicTask]:
        return iter(self._tasks)

    def __getitem__(self, index: int) -> AtomicTask:
        return self._tasks[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrowdsourcingTask(name={self.name!r}, n={len(self)})"

    # -- derived views ----------------------------------------------------------

    @property
    def task_ids(self) -> List[int]:
        """The atomic task identifiers, in declaration order."""
        return [task.task_id for task in self._tasks]

    @property
    def thresholds(self) -> List[float]:
        """Reliability thresholds aligned with :attr:`task_ids`."""
        return [task.threshold for task in self._tasks]

    @property
    def is_homogeneous(self) -> bool:
        """Whether every atomic task shares the same reliability threshold."""
        first = self._tasks[0].threshold
        return all(task.threshold == first for task in self._tasks)

    @property
    def max_threshold(self) -> float:
        """The largest reliability threshold among the atomic tasks."""
        return max(task.threshold for task in self._tasks)

    @property
    def min_threshold(self) -> float:
        """The smallest reliability threshold among the atomic tasks."""
        return min(task.threshold for task in self._tasks)

    @property
    def fingerprint(self) -> str:
        """Stable content digest of the task ids and thresholds.

        Payloads and the display ``name`` are excluded: the decomposition
        algorithms never read them, so two tasks with the same ids and
        thresholds are interchangeable for planning purposes.
        """
        return stable_digest(
            ("crowdsourcing_task",)
            + tuple(
                f"{task.task_id}:{float_token(task.threshold)}"
                for task in self._tasks
            )
        )

    def by_id(self, task_id: int) -> AtomicTask:
        """Return the atomic task with the given identifier.

        Raises
        ------
        KeyError
            If no atomic task has that identifier.
        """
        for task in self._tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(f"no atomic task with id {task_id}")

    def subset(self, task_ids: Iterable[int], name: Optional[str] = None) -> "CrowdsourcingTask":
        """Return a new crowdsourcing task restricted to ``task_ids``.

        Used by the heterogeneous solver to carve the task set into threshold
        groups (Algorithm 5, lines 5-7).
        """
        wanted = set(task_ids)
        subset = [task for task in self._tasks if task.task_id in wanted]
        if len(subset) != len(wanted):
            missing = wanted - {task.task_id for task in subset}
            raise KeyError(f"unknown atomic task ids: {sorted(missing)}")
        return CrowdsourcingTask(subset, name=name or f"{self.name}-subset")
