"""Reliability computations (Definition 2 and Section 4.1 of the paper).

The reliability of an atomic task ``a_i`` given its assigned task bins
``B(a_i)`` is the probability that at least one assignment answers it
correctly:

    Rel(a_i, B(a_i)) = 1 - prod_{beta in B(a_i)} (1 - r_|beta|)

Working directly with that product underflows for long assignment lists, so
all solvers use the additive residual form (Equation 2).  The helpers here
convert between the two views and evaluate assignments.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.bins import TaskBin
from repro.utils.logmath import (
    reliability_from_residual,
    residual_from_reliability,
)


def required_residual(threshold: float) -> float:
    """Residual requirement ``-ln(1 - t)`` for a reliability threshold ``t``."""
    return residual_from_reliability(threshold)


def aggregate_reliability(confidences: Iterable[float]) -> float:
    """Reliability achieved by assignments with the given confidences.

    Parameters
    ----------
    confidences:
        The confidence ``r_|beta|`` of each task bin the atomic task was
        assigned to.  An empty iterable yields reliability ``0.0`` (the task
        was never posted, so the probability of a correct answer is zero).
    """
    total_residual = 0.0
    for confidence in confidences:
        total_residual += residual_from_reliability(confidence)
    return reliability_from_residual(total_residual)


def reliability_of_assignment(bins: Sequence[TaskBin]) -> float:
    """Reliability achieved when an atomic task is assigned to ``bins``."""
    return aggregate_reliability(task_bin.confidence for task_bin in bins)


def assignments_needed(confidence: float, threshold: float) -> int:
    """Minimum number of identical bins needed to reach ``threshold``.

    This is the ceiling of ``-ln(1-t) / -ln(1-r)`` and is used by upper-bound
    estimates in the greedy solver's iteration-count analysis and by tests.

    Raises
    ------
    ValueError
        If ``confidence`` is zero (no number of assignments can ever help) or
        either argument lies outside ``[0, 1)``.
    """
    demand = residual_from_reliability(threshold)
    supply = residual_from_reliability(confidence)
    if supply == 0.0:
        raise ValueError("a zero-confidence bin can never satisfy a positive threshold")
    if demand == 0.0:
        return 0
    count = int(demand // supply)
    if count * supply < demand - 1e-12:
        count += 1
    return count


def residual_shortfall(confidences: Iterable[float], threshold: float) -> float:
    """How much residual is still missing to reach ``threshold``.

    Returns ``0.0`` when the assignments already satisfy the threshold.
    """
    achieved = sum(residual_from_reliability(c) for c in confidences)
    demand = residual_from_reliability(threshold)
    return max(0.0, demand - achieved)
