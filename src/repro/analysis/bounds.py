"""Cost bounds and optimality gaps for SLADE instances.

Two bounds bracket the optimum of any instance:

* **Lower bound** (Lemma 2 / the LP relaxation argument in Theorem 2): every
  atomic task must receive at least the residual its threshold demands, and no
  combination of bins delivers residual more cheaply per task than the head of
  the optimal priority queue built for that threshold.  Summing the head unit
  cost over tasks therefore lower-bounds the optimal total cost.  For
  heterogeneous instances the bound is computed per distinct threshold.
* **Naive upper bound**: the plan the paper's introduction argues against —
  post the most reliable single bin for each atomic task individually, as many
  times as needed to reach its threshold.  Any sensible decomposer must land
  between the two.

``optimality_gap`` relates a concrete plan to the lower bound, which is how the
ablation benchmarks and the analysis example report solution quality without
an exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.algorithms.opq import build_optimal_priority_queue
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem
from repro.core.reliability import assignments_needed


@dataclass(frozen=True)
class CostBounds:
    """Lower and upper bounds on the optimal cost of one instance.

    Attributes
    ----------
    lower:
        Lemma 2 lower bound on the optimal total cost.
    naive_upper:
        Cost of the naive singleton-posting plan (an upper bound on the
        optimum, since that plan is feasible).
    """

    lower: float
    naive_upper: float

    @property
    def spread(self) -> float:
        """Ratio between the naive upper bound and the lower bound.

        This is the maximum factor a decomposer can possibly save on the
        instance; it is what the paper's introduction calls the opportunity of
        smart decomposition.
        """
        if self.lower <= 0.0:
            return float("inf")
        return self.naive_upper / self.lower

    def contains(self, cost: float, tolerance: float = 1e-9) -> bool:
        """Whether a plan cost lies between the two bounds (sanity check)."""
        return self.lower - tolerance <= cost <= self.naive_upper + tolerance


def lower_bound(problem: SladeProblem) -> float:
    """Lemma 2 lower bound on the optimal total cost of ``problem``.

    For each distinct reliability threshold in the instance, an optimal
    priority queue is built and its head unit cost charged to every atomic
    task carrying that threshold.
    """
    per_threshold: Dict[float, float] = {}
    total = 0.0
    for atomic in problem.task:
        threshold = atomic.threshold
        if threshold not in per_threshold:
            queue = build_optimal_priority_queue(problem.bins, threshold)
            per_threshold[threshold] = queue.head.unit_cost
        total += per_threshold[threshold]
    return total


def naive_upper_bound(problem: SladeProblem) -> float:
    """Cost of posting each atomic task individually until its threshold is met.

    Uses the single most cost-effective bin for solo posting — the cheapest
    1-cardinality bin if one exists, otherwise the bin with the lowest cost per
    unit of contributed residual (posted with only one task inside).
    """
    bins = [b for b in problem.bins if b.residual_contribution > 0.0]
    if 1 in problem.bins and problem.bins[1].residual_contribution > 0.0:
        solo_bin = problem.bins[1]
    else:
        solo_bin = min(bins, key=lambda b: b.cost / b.residual_contribution)
    total = 0.0
    for atomic in problem.task:
        count = assignments_needed(solo_bin.confidence, atomic.threshold)
        total += count * solo_bin.cost
    return total


def bounds(problem: SladeProblem) -> CostBounds:
    """Compute both bounds for ``problem``."""
    return CostBounds(lower=lower_bound(problem), naive_upper=naive_upper_bound(problem))


def optimality_gap(
    plan: DecompositionPlan,
    problem: SladeProblem,
    precomputed_lower: Optional[float] = None,
) -> float:
    """Ratio of a plan's cost to the Lemma 2 lower bound (>= 1.0).

    A gap of 1.0 means the plan is provably optimal; Theorem 2 guarantees the
    OPQ-Based solver stays within ``log n`` of it, and in practice the measured
    gaps are far smaller (see the analysis example).
    """
    bound = precomputed_lower if precomputed_lower is not None else lower_bound(problem)
    if bound <= 0.0:
        return 1.0
    return plan.total_cost / bound
