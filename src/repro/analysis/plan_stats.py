"""Descriptive statistics and comparisons of decomposition plans.

A decomposition plan is ultimately a purchase order against a crowd
marketplace; before submitting one, a requester wants to know how the spend is
distributed over bin sizes, how much redundancy each atomic task receives, and
how far the plan's guaranteed reliability exceeds what was asked for.
:func:`describe_plan` collects those numbers and :func:`compare_plans` puts two
candidate plans side by side (e.g. Greedy versus OPQ-Based) for the same
problem instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem


@dataclass(frozen=True)
class PlanStatistics:
    """Summary statistics of one decomposition plan against its problem.

    Attributes
    ----------
    solver:
        Name of the solver that produced the plan (if recorded).
    total_cost:
        Total incentive cost of the plan.
    cost_per_task:
        Average cost per atomic task.
    postings:
        Number of bins posted.
    cost_by_cardinality:
        Spend broken down by bin cardinality.
    assignments_per_task:
        Minimum / mean / maximum number of postings any atomic task appears in.
    mean_fill_ratio:
        Average fraction of bin capacity actually used (1.0 = every bin full).
    min_slack, mean_slack:
        Reliability slack = achieved reliability minus the task's threshold.
        Negative minimum slack means the plan is infeasible.
    feasible:
        Whether every atomic task meets its threshold.
    """

    solver: Optional[str]
    total_cost: float
    cost_per_task: float
    postings: int
    cost_by_cardinality: Mapping[int, float]
    assignments_per_task: Mapping[str, float]
    mean_fill_ratio: float
    min_slack: float
    mean_slack: float
    feasible: bool

    def as_dict(self) -> Dict[str, object]:
        """Flatten the statistics into a plain dictionary for reports."""
        return {
            "solver": self.solver,
            "total_cost": self.total_cost,
            "cost_per_task": self.cost_per_task,
            "postings": self.postings,
            "cost_by_cardinality": dict(self.cost_by_cardinality),
            "assignments_min": self.assignments_per_task["min"],
            "assignments_mean": self.assignments_per_task["mean"],
            "assignments_max": self.assignments_per_task["max"],
            "mean_fill_ratio": self.mean_fill_ratio,
            "min_slack": self.min_slack,
            "mean_slack": self.mean_slack,
            "feasible": self.feasible,
        }


def describe_plan(plan: DecompositionPlan, problem: SladeProblem) -> PlanStatistics:
    """Compute :class:`PlanStatistics` for ``plan`` on ``problem``."""
    cost_by_cardinality: Dict[int, float] = {}
    fill_ratios: List[float] = []
    assignments_count: Dict[int, int] = {atomic.task_id: 0 for atomic in problem.task}
    for assignment in plan:
        cardinality = assignment.task_bin.cardinality
        cost_by_cardinality[cardinality] = (
            cost_by_cardinality.get(cardinality, 0.0) + assignment.cost
        )
        fill_ratios.append(assignment.fill_ratio)
        for task_id in assignment.task_ids:
            if task_id in assignments_count:
                assignments_count[task_id] += 1

    counts = list(assignments_count.values())
    reliabilities = plan.reliabilities()
    slacks = [
        reliabilities.get(atomic.task_id, 0.0) - atomic.threshold
        for atomic in problem.task
    ]

    return PlanStatistics(
        solver=plan.solver,
        total_cost=plan.total_cost,
        cost_per_task=plan.total_cost / problem.n,
        postings=len(plan),
        cost_by_cardinality=cost_by_cardinality,
        assignments_per_task={
            "min": float(min(counts)) if counts else 0.0,
            "mean": sum(counts) / len(counts) if counts else 0.0,
            "max": float(max(counts)) if counts else 0.0,
        },
        mean_fill_ratio=sum(fill_ratios) / len(fill_ratios) if fill_ratios else 0.0,
        min_slack=min(slacks),
        mean_slack=sum(slacks) / len(slacks),
        feasible=plan.is_feasible(problem.task),
    )


def compare_plans(
    plans: Mapping[str, DecompositionPlan],
    problem: SladeProblem,
) -> Dict[str, PlanStatistics]:
    """Describe several candidate plans for the same problem side by side.

    Parameters
    ----------
    plans:
        Mapping from a label (usually the solver name) to the plan.
    problem:
        The shared problem instance.

    Returns
    -------
    dict
        Label → :class:`PlanStatistics`, in the order the plans were given.
    """
    return {label: describe_plan(plan, problem) for label, plan in plans.items()}


def format_comparison(statistics: Mapping[str, PlanStatistics]) -> str:
    """Render a plan comparison as a fixed-width text table."""
    headers = ["plan", "cost", "cost/task", "postings", "mean fill", "min slack", "feasible"]
    rows = [headers]
    for label, stats in statistics.items():
        rows.append([
            label,
            f"{stats.total_cost:.2f}",
            f"{stats.cost_per_task:.4f}",
            str(stats.postings),
            f"{stats.mean_fill_ratio:.2f}",
            f"{stats.min_slack:+.3f}",
            str(stats.feasible),
        ])
    widths = [max(len(row[i]) for row in rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
