"""Analysis utilities on top of the core solvers.

The paper's theory gives two handles that are useful far beyond the
experiments themselves: a *lower bound* on the optimal cost (Lemma 2: ``n``
times the head unit cost of the optimal priority queue) and the notion of an
approximation ratio against that bound.  This package packages both, plus
descriptive statistics over decomposition plans, so applications can audit a
plan before spending real money on it.
"""

from repro.analysis.bounds import (
    CostBounds,
    lower_bound,
    naive_upper_bound,
    optimality_gap,
)
from repro.analysis.plan_stats import PlanStatistics, compare_plans, describe_plan

__all__ = [
    "CostBounds",
    "lower_bound",
    "naive_upper_bound",
    "optimality_gap",
    "PlanStatistics",
    "describe_plan",
    "compare_plans",
]
