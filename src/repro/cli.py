"""Command-line interface: ``python -m repro`` or the ``slade`` console script.

Three sub-commands cover the common workflows:

``solve``
    Decompose a synthetic large-scale task with a chosen solver and print the
    plan summary.

``figure``
    Reproduce one of the paper's figures (``fig3a`` ... ``fig8b``) and print
    the data series as a text table.

``calibrate``
    Run probe-based calibration against the simulated Jelly or SMIC platform
    and print the resulting task-bin menu.

``batch``
    Decompose a whole grid of instances through the batch planning engine,
    sharing OPQ construction across instances, and print per-instance results
    plus the batch statistics (cache hit rate, solve-time breakdown).

``serve``
    Run the service facade as a JSON-lines request loop: read one solve
    request per line from stdin (or a file), write one structured response
    per line to stdout.  ``--cache sqlite:<path>`` keeps the plan cache warm
    across restarts; ``--cache remote://host:port`` (or
    ``tiered:memory:<N>+remote://host:port``) shares it with a whole fleet
    through a ``repro cached`` server, and ``--cache
    sharded://h1:p1,h2:p2,h3:p3?replicas=2`` spreads it over several cache
    servers with consistent hashing and replication.  With ``--http HOST:PORT`` the same
    facade is served over the stdlib HTTP transport instead
    (``POST /v1/solve``, ``POST /v1/solve/batch``, ``GET /healthz``,
    ``GET /metrics``), with optional per-tenant admission control
    (``--rate``, ``--burst``, ``--tenant-rate``, ``--max-inflight``,
    ``--max-total-inflight``);
    SIGINT/SIGTERM shut it down cleanly, draining in-flight requests.

``cached``
    Run the shared plan-cache server: an asyncio TCP key-value store other
    hosts' ``repro serve --cache remote://...`` (or ``sharded://...``)
    processes warm and reuse.  Clients fail open (a dead server means local
    rebuilds, never request errors), so the server needs no
    high-availability story to be useful; ``--persist <path>`` additionally
    backs the store with a SQLite file so a restarted server keeps its keys.

``loadtest``
    Replay a seeded open-loop tenant mix (``--profile ci-short`` or
    ``steady``) against a live ``repro serve --http`` deployment and print
    per-tenant-class throughput, p50/p99/p999 latency, error/rejection
    budgets, and cache warm rate; ``--output`` writes the full JSON report
    the CI perf-trajectory gate consumes.

``profile``
    Build a grid of Algorithm 2 frontiers cold under cProfile and print a
    per-threshold timing table plus the top-N cumulative-time functions —
    the quickest way to see whether construction time goes to enumeration,
    frontier maintenance, or Combination quantity (re)computation, and to
    compare the ``python`` and ``numpy`` cores (``--core``).

Every sub-command reports library-level failures (:class:`SladeError`
subclasses) as a one-line ``error:`` message on stderr with exit code 2
instead of a traceback.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional, Sequence, TextIO

from repro.algorithms.registry import available_solvers, create_solver
from repro.core.errors import SladeError
from repro.core.problem import SladeProblem
from repro.engine import EXECUTORS, BatchPlanner, BatchSpec
from repro.crowd.calibration import ProbeCalibrator
from repro.crowd.presets import jelly_platform, smic_platform
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.experiments.config import ExperimentConfig, SweepResult
from repro.experiments.figures import figure_ids, run_figure
from repro.experiments.motivation import MotivationSeries
from repro.experiments.report import format_series, format_sweep_table
from repro.io.serialization import solve_response_to_dict
from repro.service import (
    AdmissionController,
    ServiceConfig,
    SladeService,
    failure_response,
    run_http_server,
)
from repro.lint.cli import add_lint_arguments, run_lint_command
from repro.service.normalize import parse_request_payload
from repro.service.transport.http11 import split_host_port


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="slade",
        description="SLADE: smart large-scale task decomposition for crowdsourcing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="decompose a synthetic large-scale task")
    solve.add_argument("--solver", default="opq", choices=available_solvers())
    solve.add_argument("--dataset", default="jelly", choices=["jelly", "smic"])
    solve.add_argument("--n", type=int, default=10_000, help="number of atomic tasks")
    solve.add_argument("--threshold", type=float, default=0.9,
                       help="homogeneous reliability threshold")
    solve.add_argument("--max-cardinality", type=int, default=20,
                       help="largest task bin cardinality |B|")
    solve.add_argument("--heterogeneous", action="store_true",
                       help="draw per-task thresholds from a Normal distribution")
    solve.add_argument("--mu", type=float, default=0.9)
    solve.add_argument("--sigma", type=float, default=0.03)
    solve.add_argument("--seed", type=int, default=42)

    figure = sub.add_parser("figure", help="reproduce one of the paper's figures")
    figure.add_argument("figure_id", choices=figure_ids())
    figure.add_argument("--n", type=int, default=2_000,
                        help="number of atomic tasks for sweep-based figures")
    figure.add_argument("--seed", type=int, default=42)

    batch = sub.add_parser(
        "batch",
        help="decompose a grid of instances through the batch planning engine",
    )
    batch.add_argument("--solver", default="opq", choices=available_solvers())
    batch.add_argument("--dataset", default="jelly", choices=["jelly", "smic"])
    batch.add_argument("--n-values", default="1000",
                       help="comma-separated task counts, one instance per value")
    batch.add_argument("--thresholds", default="0.9",
                       help="comma-separated homogeneous reliability thresholds")
    batch.add_argument("--max-cardinality", type=int, default=20,
                       help="largest task bin cardinality |B|")
    batch.add_argument("--repeat", type=int, default=1,
                       help="solve the grid this many times (repeats hit the cache)")
    batch.add_argument("--executor", default="serial", choices=list(EXECUTORS))
    batch.add_argument("--workers", type=int, default=None,
                       help="worker count for thread/process executors")
    batch.add_argument("--no-verify", action="store_true",
                       help="skip plan feasibility verification (pure solve timing)")

    serve = sub.add_parser(
        "serve",
        help="serve solve requests as a JSON-lines loop (stdin -> stdout)",
    )
    serve.add_argument("--solver", default="opq", choices=available_solvers(),
                       help="default solver for requests that do not name one")
    serve.add_argument("--cache", default=None,
                       help="plan-cache backend spec: 'memory', 'memory:<N>', "
                            "'sqlite:<path>', 'remote://host:port', "
                            "'sharded://h1:p1,h2:p2[?replicas=R&vnodes=V]', or "
                            "'tiered:memory:<N>+<far-spec>' "
                            "(default: in-memory)")
    serve.add_argument("--input", default="-",
                       help="file of JSON-line requests ('-' reads stdin)")
    serve.add_argument("--no-plans", action="store_true",
                       help="omit plan bodies from responses (headline numbers only)")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip plan feasibility verification")
    serve.add_argument("--stats", action="store_true",
                       help="print cache statistics to stderr on exit")
    serve.add_argument("--http", metavar="HOST:PORT", default=None,
                       help="serve over HTTP instead of the JSON-lines loop "
                            "(e.g. 127.0.0.1:8080; port 0 picks a free port)")
    serve.add_argument("--rate", type=float, default=None,
                       help="per-tenant sustained request rate (requests/second)")
    serve.add_argument("--burst", type=float, default=None,
                       help="per-tenant token-bucket capacity (defaults to rate)")
    serve.add_argument("--tenant-rate", action="append", default=None,
                       metavar="NAME=RATE[:BURST]",
                       help="per-tenant token-bucket override (repeatable), "
                            "e.g. --tenant-rate free=2:4 --tenant-rate "
                            "paid=200; unlisted tenants use --rate/--burst")
    serve.add_argument("--max-inflight", type=int, default=None,
                       help="per-tenant cap on concurrently admitted requests")
    serve.add_argument("--max-total-inflight", type=int, default=None,
                       help="global cap on concurrently admitted requests")
    serve.add_argument("--max-batch-size", type=int, default=16,
                       help="largest micro-batch the HTTP frontend coalesces")
    serve.add_argument("--max-wait-seconds", type=float, default=0.01,
                       help="longest an incomplete micro-batch is held open")
    serve.add_argument("--opq-core", default=None, dest="opq_core",
                       choices=["auto", "python", "numpy"],
                       help="Algorithm 2 construction core for plan-cache "
                            "builds (default: SLADE_OPQ_CORE env, then auto)")
    serve.add_argument("--auth-token", default=None, metavar="TOKEN",
                       help="shared secret required on solve endpoints "
                            "('Authorization: Bearer <token>' or "
                            "'X-Auth-Token'); without it the X-Tenant "
                            "header is trusted as-is (HTTP mode only)")
    serve.add_argument("--drift-window", type=int, default=200,
                       help="sliding window of execution outcomes kept per "
                            "cardinality for drift detection (default: 200)")
    serve.add_argument("--drift-min-observations", type=int, default=30,
                       help="observations per cardinality before the drift "
                            "monitor reports (default: 30)")
    serve.add_argument("--drift-tolerance", type=float, default=0.05,
                       help="accuracy shortfall below the calibrated "
                            "confidence that counts as drift (default: 0.05)")
    serve.add_argument("--drift-tolerance-above", type=float, default=None,
                       help="tolerance for observed accuracy exceeding the "
                            "calibrated confidence (default: --drift-tolerance)")
    serve.add_argument("--drift-check-seconds", type=float, default=1.0,
                       help="interval of the background drift sweep in HTTP "
                            "mode; 0 disables it (default: 1.0)")

    cached = sub.add_parser(
        "cached",
        help="run the shared plan-cache server (TCP key-value store)",
    )
    cached.add_argument("address", metavar="HOST:PORT",
                        help="bind address (e.g. 0.0.0.0:9009; port 0 picks "
                             "a free port)")
    cached.add_argument("--max-entries", type=int, default=None,
                        help="LRU bound on stored queues (default: unbounded)")
    cached.add_argument("--persist", metavar="PATH", default=None,
                        help="back the store with a SQLite file so a "
                             "restarted server keeps its keys")
    cached.add_argument("--stats", action="store_true",
                        help="print server statistics to stderr on exit")

    loadtest = sub.add_parser(
        "loadtest",
        help="replay a seeded open-loop tenant mix against a live HTTP server",
    )
    loadtest.add_argument("--url", required=True, metavar="URL",
                          help="base URL of a running 'repro serve --http' "
                               "server (e.g. http://127.0.0.1:8080)")
    loadtest.add_argument("--profile", default="ci-short",
                          help="named workload profile (default: ci-short)")
    loadtest.add_argument("--seed", type=int, default=None,
                          help="override the profile's seed")
    loadtest.add_argument("--duration", type=float, default=None,
                          help="override the profile's duration (seconds)")
    loadtest.add_argument("--clients", type=int, default=16,
                          help="persistent-connection pool size")
    loadtest.add_argument("--timeout", type=float, default=30.0,
                          help="per-request client timeout (seconds)")
    loadtest.add_argument("--output", metavar="PATH", default=None,
                          help="write the full JSON report to this file")
    loadtest.add_argument("--json", action="store_true",
                          help="print the JSON report to stdout instead of "
                               "the summary table")

    profile = sub.add_parser(
        "profile",
        help="profile Algorithm 2 cold builds (cProfile, top-N cumulative)",
    )
    profile.add_argument("--dataset", default="jelly", choices=["jelly", "smic"])
    profile.add_argument("--thresholds", default="0.87,0.9,0.95,0.97,0.99",
                         help="comma-separated reliability thresholds to build")
    profile.add_argument("--max-cardinality", type=int, default=20,
                         help="largest task bin cardinality |B|")
    profile.add_argument("--core", default=None,
                         choices=["auto", "python", "numpy"],
                         help="OPQ construction core (default: SLADE_OPQ_CORE "
                              "env, then auto)")
    profile.add_argument("--repeat", type=int, default=3,
                         help="build each threshold this many times")
    profile.add_argument("--top", type=int, default=15,
                         help="rows of the cumulative-time table to print")

    calibrate = sub.add_parser("calibrate", help="probe the simulated platform")
    calibrate.add_argument("--dataset", default="jelly", choices=["jelly", "smic"])
    calibrate.add_argument("--max-cardinality", type=int, default=10)
    calibrate.add_argument("--difficulty", type=int, default=2, choices=[1, 2, 3])
    calibrate.add_argument("--seed", type=int, default=7)

    lint = sub.add_parser(
        "lint",
        help="run the project's static-analysis rules (SLD001-SLD005)",
    )
    add_lint_arguments(lint)

    return parser


def _cmd_solve(args: argparse.Namespace) -> int:
    bins = jelly_bin_set(args.max_cardinality) if args.dataset == "jelly" \
        else smic_bin_set(args.max_cardinality)
    if args.heterogeneous:
        thresholds = normal_thresholds(args.n, mu=args.mu, sigma=args.sigma, seed=args.seed)
        problem = SladeProblem.heterogeneous(thresholds, bins, name=f"{args.dataset}-cli")
    else:
        problem = SladeProblem.homogeneous(args.n, args.threshold, bins,
                                           name=f"{args.dataset}-cli")
    solver = create_solver(args.solver)
    result = solver.solve(problem)
    print(problem.describe())
    print(f"solver            : {result.solver}")
    print(f"total cost (USD)  : {result.total_cost:.2f}")
    print(f"bins posted       : {len(result.plan)}")
    print(f"cost per task     : {result.plan.cost_per_task(problem.task):.4f}")
    print(f"feasible          : {result.feasible}")
    print(f"solve time (s)    : {result.elapsed_seconds:.3f}")
    usage = result.plan.bin_usage()
    top = sorted(usage.items(), key=lambda kv: -kv[1])[:5]
    print("top bin usage     : " + ", ".join(f"{l}-bin x{count}" for l, count in top))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        n=args.n,
        seed=args.seed,
        solver_options={"baseline": {"chunk_size": 128}},
    )
    result = run_figure(args.figure_id, config=config)
    if isinstance(result, SweepResult):
        metric = "elapsed_seconds" if args.figure_id in {
            "fig6c", "fig6d", "fig6g", "fig6h", "fig6k", "fig6l",
            "fig7b", "fig7d", "fig8a", "fig8b",
        } else "total_cost"
        print(format_sweep_table(result, metric=metric))
    elif isinstance(result, MotivationSeries):
        print(f"{result.dataset}: worker confidence by cardinality and price")
        print(format_series(result.confidence))
    else:
        print("jelly difficulty series: confidence by cardinality and difficulty")
        print(format_series(result, series_label="difficulty"))
    return 0


def _parse_grid(raw: str, caster, flag: str) -> List:
    try:
        values = [caster(part) for part in raw.split(",") if part.strip()]
    except ValueError:
        raise SystemExit(f"invalid {flag} value: {raw!r}") from None
    if not values:
        raise SystemExit(f"{flag} must name at least one value")
    return values


def _cmd_batch(args: argparse.Namespace) -> int:
    if args.repeat < 1:
        raise SystemExit(f"--repeat must be >= 1; got {args.repeat}")
    bins = jelly_bin_set(args.max_cardinality) if args.dataset == "jelly" \
        else smic_bin_set(args.max_cardinality)
    spec = BatchSpec(
        bins=bins,
        n_values=tuple(_parse_grid(args.n_values, int, "--n-values")),
        thresholds=tuple(_parse_grid(args.thresholds, float, "--thresholds")),
        name=f"{args.dataset}-batch",
        repeat=args.repeat,
    )
    planner = BatchPlanner(
        verify=not args.no_verify,
        executor=args.executor,
        max_workers=args.workers,
    )
    batch = planner.solve_many(spec, solver=args.solver)
    stats = batch.stats

    print(f"batch              : {args.dataset}, {stats.instances} instance(s), "
          f"solver={stats.solver}")
    print(f"executor           : {stats.executor} (workers={stats.workers})")
    print(f"total cost (USD)   : {batch.total_cost:.2f}")
    print(f"all feasible       : {batch.all_feasible}")
    print(f"wall time (s)      : {stats.wall_seconds:.3f}")
    print(f"solve time (s)     : {stats.solve_seconds:.3f}")
    print(f"opq build time (s) : {stats.build_seconds:.3f}")
    print(f"cache hits/misses  : {stats.cache_hits}/{stats.cache_misses} "
          f"(hit rate {stats.cache_hit_rate:.1%})")
    print()
    print(f"{'instance':<28} {'n':>7} {'t':>6} {'cost':>10} {'time (s)':>9}")
    for item in batch:
        print(
            f"{item.problem.name:<28} {item.problem.n:>7} "
            f"{item.problem.homogeneous_threshold:>6.3f} "
            f"{item.total_cost:>10.2f} {item.elapsed_seconds:>9.4f}"
        )
    return 0


def _serve_loop(service: SladeService, stream: TextIO, include_plans: bool) -> int:
    """Answer each JSON-line request on ``stream`` with a JSON-line response.

    Lines that never become valid requests answer with the same
    :func:`repro.service.failure_response` envelope the HTTP transport
    produces, so clients see one failure shape regardless of transport.
    """
    handled = 0
    for line_no, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        request_id = f"line-{line_no}"
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            response = failure_response(request_id, exc)
        else:
            try:
                request = parse_request_payload(
                    payload, default_request_id=request_id
                )
            except (SladeError, KeyError, TypeError, ValueError) as exc:
                response = failure_response(request_id, exc)
            else:
                response = service.solve(request)
        print(
            json.dumps(solve_response_to_dict(response, include_plan=include_plans)),
            flush=True,
        )
        handled += 1
    return handled


def _parse_tenant_limits(raw: Optional[List[str]]) -> Optional[dict]:
    """Parse repeated ``--tenant-rate NAME=RATE[:BURST]`` flags."""
    if not raw:
        return None
    limits = {}
    for item in raw:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise SladeError(
                f"invalid --tenant-rate value {item!r}; expected NAME=RATE[:BURST]"
            )
        rate_text, _sep, burst_text = value.partition(":")
        try:
            rate = float(rate_text)
            burst = float(burst_text) if burst_text else max(1.0, rate)
        except ValueError:
            raise SladeError(
                f"invalid --tenant-rate value {item!r}; expected NAME=RATE[:BURST]"
            ) from None
        limits[name] = (rate, burst)
    return limits


def _serve_http(args: argparse.Namespace) -> int:
    """Run the HTTP transport until SIGINT/SIGTERM, then drain and exit 0."""
    try:
        host, port = split_host_port(args.http)
    except ValueError as exc:
        raise SladeError(f"invalid --http value: {exc}") from exc
    config = ServiceConfig(
        solver=args.solver,
        verify=not args.no_verify,
        cache_backend=args.cache,
        max_batch_size=args.max_batch_size,
        max_wait_seconds=args.max_wait_seconds,
        opq_core=args.opq_core,
        drift_window=args.drift_window,
        drift_min_observations=args.drift_min_observations,
        drift_tolerance=args.drift_tolerance,
        drift_tolerance_above=args.drift_tolerance_above,
        drift_check_seconds=args.drift_check_seconds,
    )
    admission = AdmissionController(
        rate=args.rate,
        burst=args.burst,
        max_inflight=args.max_inflight,
        max_total_inflight=args.max_total_inflight,
        tenant_limits=_parse_tenant_limits(args.tenant_rate),
    )

    async def main() -> SladeService:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass

        def on_ready(server) -> None:
            print(f"listening on http://{server.host}:{server.port}",
                  file=sys.stderr, flush=True)

        server = await run_http_server(
            host, port,
            config=config,
            admission=admission,
            include_plans=not args.no_plans,
            auth_token=args.auth_token,
            stop=stop,
            on_ready=on_ready,
        )
        return server.service.service

    try:
        facade = asyncio.run(main())
    except OSError as exc:
        # Bind failures (port in use, privileged port) are configuration
        # errors, not crashes.
        raise SladeError(f"cannot serve on {args.http!r}: {exc}") from exc
    if args.stats:
        # Telemetry outlives the drained service (the cache backend is
        # already closed by the time the event loop returns).
        telemetry = facade.telemetry
        hits = int(telemetry.counter("cache.hits"))
        misses = int(telemetry.counter("cache.misses"))
        requests = hits + misses
        hit_rate = hits / requests if requests else 0.0
        print(
            f"served {int(telemetry.counter('service.requests'))} "
            f"request(s); cache hits/misses {hits}/{misses} "
            f"(hit rate {hit_rate:.1%}), "
            f"opq build time {telemetry.counter('cache.build_seconds'):.3f}s",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.http is not None:
        return _serve_http(args)
    if args.input == "-":
        stream = sys.stdin
    else:
        try:
            stream = open(args.input, "r")
        except OSError as exc:
            raise SladeError(f"cannot open --input file: {exc}") from exc
    config = ServiceConfig(
        solver=args.solver,
        verify=not args.no_verify,
        cache_backend=args.cache,
        opq_core=args.opq_core,
        drift_window=args.drift_window,
        drift_min_observations=args.drift_min_observations,
        drift_tolerance=args.drift_tolerance,
        drift_tolerance_above=args.drift_tolerance_above,
        drift_check_seconds=args.drift_check_seconds,
    )
    try:
        service = SladeService(config=config)
    except SladeError:
        if stream is not sys.stdin:
            stream.close()
        raise
    try:
        handled = _serve_loop(service, stream, include_plans=not args.no_plans)
    finally:
        if stream is not sys.stdin:
            stream.close()
        stats = service.cache_stats
        service.close()
    if args.stats:
        print(
            f"served {handled} request(s); cache hits/misses "
            f"{stats.hits}/{stats.misses} (hit rate {stats.hit_rate:.1%}), "
            f"opq build time {stats.build_seconds:.3f}s",
            file=sys.stderr,
        )
    return 0


def _cmd_cached(args: argparse.Namespace) -> int:
    """Run the shared plan-cache server until SIGINT/SIGTERM, then exit 0."""
    from repro.engine.backends.server import run_cache_server

    try:
        host, port = split_host_port(args.address)
    except ValueError as exc:
        raise SladeError(f"invalid HOST:PORT value: {exc}") from exc
    if args.max_entries is not None and args.max_entries < 1:
        raise SladeError(f"--max-entries must be positive; got {args.max_entries}")

    async def main():
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass

        def on_ready(server) -> None:
            print(f"cache listening on {server.host}:{server.port}",
                  file=sys.stderr, flush=True)

        return await run_cache_server(
            host, port,
            max_entries=args.max_entries,
            persist_path=args.persist,
            stop=stop,
            on_ready=on_ready,
        )

    import sqlite3

    try:
        server = asyncio.run(main())
    except OSError as exc:
        raise SladeError(f"cannot serve on {args.address!r}: {exc}") from exc
    except sqlite3.Error as exc:
        raise SladeError(
            f"cannot open --persist file {args.persist!r}: {exc}"
        ) from exc
    if args.stats:
        stats = server.stats()
        persisted = (
            f", restored {int(stats['restored_keys'])} persisted key(s)"
            if stats["persisted"] else ""
        )
        print(
            f"served {int(stats['connections'])} connection(s); "
            f"{int(stats['keys'])} key(s), {int(stats['bytes'])} byte(s) stored; "
            f"gets {int(stats['hits'])}/{int(stats['hits'] + stats['misses'])} hit, "
            f"puts {int(stats['puts'])}, evictions {int(stats['evictions'])}, "
            f"frame errors {int(stats['frame_errors'])}{persisted}",
            file=sys.stderr,
        )
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Replay a seeded open-loop workload against a live HTTP deployment."""
    from repro.loadgen import build_profile, generate_schedule, run_load_test

    if args.clients < 1:
        raise SladeError(f"--clients must be >= 1; got {args.clients}")
    try:
        spec = build_profile(
            args.profile, duration_seconds=args.duration, seed=args.seed
        )
    except ValueError as exc:
        raise SladeError(str(exc)) from exc
    schedule = generate_schedule(spec)
    if not args.json:
        print(
            f"replaying {len(schedule)} request(s) over "
            f"{spec.duration_seconds:g}s against {args.url} "
            f"(profile {args.profile!r}, seed {spec.seed}, "
            f"{args.clients} connection(s))",
            file=sys.stderr, flush=True,
        )
    report = asyncio.run(run_load_test(
        schedule,
        args.url,
        clients=args.clients,
        timeout=args.timeout,
        profile=args.profile,
        seed=spec.seed,
    ))
    document = report.as_dict()
    if args.output:
        try:
            with open(args.output, "w") as handle:
                json.dump(document, handle, indent=2)
                handle.write("\n")
        except OSError as exc:
            raise SladeError(f"cannot write --output file: {exc}") from exc
    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(report.format_table())
        overall = report.overall
        print(
            f"\n{overall.ok}/{report.scheduled} ok in {report.wall_seconds:.2f}s "
            f"({overall.throughput(report.wall_seconds):.1f} rps); "
            f"error budget {overall.error_budget:.2%}, "
            f"rejection budget {overall.rejection_budget:.2%}, "
            f"warm rate {overall.warm_rate:.1%}"
        )
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Profile Algorithm 2 cold builds and print where the time goes.

    Every build runs cold (no plan cache, no curve seeding) so the numbers
    isolate raw construction cost — the quantity the vectorized core and the
    :class:`~repro.algorithms.opq.Combination` quantity caching are meant to
    shrink.  The cProfile table is sorted by cumulative time, which surfaces
    the enumeration helpers (``residual``/``unit_cost``/``lcm``) directly
    when they are hot.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.algorithms.opq_vec import build_queue, resolve_core

    if args.repeat < 1:
        raise SladeError(f"--repeat must be >= 1; got {args.repeat}")
    if args.top < 1:
        raise SladeError(f"--top must be >= 1; got {args.top}")
    thresholds = _parse_grid(args.thresholds, float, "--thresholds")
    bins = jelly_bin_set(args.max_cardinality) if args.dataset == "jelly" \
        else smic_bin_set(args.max_cardinality)
    core = resolve_core(args.core)

    profiler = cProfile.Profile()
    per_threshold = []
    for threshold in thresholds:
        best = float("inf")
        for _ in range(args.repeat):
            start = time.perf_counter()
            profiler.enable()
            queue = build_queue(bins, threshold, core=core)
            profiler.disable()
            best = min(best, time.perf_counter() - start)
        per_threshold.append((threshold, best, len(queue)))

    print(f"dataset            : {args.dataset} (|B| <= {args.max_cardinality})")
    print(f"core               : {core}")
    print(f"repeat             : {args.repeat} (best-of shown per threshold)")
    print()
    print(f"{'threshold':>9}  {'build (ms)':>10}  {'frontier':>8}")
    total = 0.0
    for threshold, best, size in per_threshold:
        total += best
        print(f"{threshold:>9.4f}  {best * 1e3:>10.3f}  {size:>8}")
    print(f"{'total':>9}  {total * 1e3:>10.3f}")
    print()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(args.top)
    print(buffer.getvalue().rstrip())
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    if args.dataset == "jelly":
        platform = jelly_platform(difficulty=args.difficulty, seed=args.seed)
        costs = (0.05, 0.08, 0.10)
    else:
        platform = smic_platform(seed=args.seed)
        costs = (0.05, 0.10, 0.20)
    calibrator = ProbeCalibrator(platform, candidate_costs=costs, seed=args.seed)
    calibration = calibrator.calibrate(list(range(1, args.max_cardinality + 1)))
    bins = calibration.bin_set(name=f"{args.dataset}-calibrated")
    print(f"probe spend: {calibration.probe_spend:.2f} USD")
    print(f"{'cardinality':>11}  {'confidence':>10}  {'cost':>6}")
    for task_bin in bins:
        print(f"{task_bin.cardinality:>11}  {task_bin.confidence:>10.3f}  {task_bin.cost:>6.2f}")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "figure": _cmd_figure,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "cached": _cmd_cached,
    "loadtest": _cmd_loadtest,
    "profile": _cmd_profile,
    "calibrate": _cmd_calibrate,
    "lint": run_lint_command,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Library-level failures (:class:`~repro.core.errors.SladeError`
    subclasses, including serialization errors) exit with code 2 and a
    one-line stderr message instead of a traceback.
    """
    parser = _build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    command = _COMMANDS.get(args.command)
    if command is None:  # pragma: no cover - argparse enforces the choices
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return command(args)
    except SladeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
