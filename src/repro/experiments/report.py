"""Plain-text rendering of experiment results.

The paper reports its evaluation as line plots; this module renders the same
data as fixed-width text tables (one row per swept value, one column pair per
solver) so results can be diffed, pasted into ``EXPERIMENTS.md`` and asserted
in tests without a plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.experiments.config import SweepResult


def _format_number(value: float) -> str:
    if isinstance(value, bool):
        return str(value)
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 1:
        return f"{value:.2f}"
    return f"{value:.4f}"


def format_sweep_table(result: SweepResult, metric: str = "total_cost") -> str:
    """Render a sweep as a fixed-width table.

    Parameters
    ----------
    result:
        The sweep to render.
    metric:
        ``"total_cost"`` (cost figures) or ``"elapsed_seconds"`` (time figures).
    """
    solvers = result.solvers
    header = [result.x_label] + solvers
    lines: List[List[str]] = [header]
    for x in result.x_values:
        row = [_format_number(x)]
        for solver in solvers:
            values = [getattr(r, metric) for r in result.rows if r.solver == solver and r.x == x]
            row.append(_format_number(values[0]) if values else "-")
        lines.append(row)

    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = []
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    title = f"{result.name} ({metric})"
    return title + "\n" + "\n".join(rendered)


def format_series(
    series: Mapping[float, Mapping[int, float]],
    x_label: str = "cardinality",
    series_label: str = "cost",
) -> str:
    """Render Figure-3-style nested series (per price, per cardinality).

    Parameters
    ----------
    series:
        ``{price: {cardinality: confidence}}`` as produced by
        :func:`repro.experiments.motivation.motivation_series`.
    x_label:
        Label of the inner key (the x axis).
    series_label:
        Label of the outer key (one line per value).
    """
    prices = sorted(series)
    cardinalities = sorted({l for curve in series.values() for l in curve})
    header = [x_label] + [f"{series_label}={p}" for p in prices]
    lines: List[List[str]] = [header]
    for cardinality in cardinalities:
        row = [str(cardinality)]
        for price in prices:
            value = series[price].get(cardinality)
            row.append(_format_number(value) if value is not None else "-")
        lines.append(row)

    widths = [max(len(line[i]) for line in lines) for i in range(len(header))]
    rendered = []
    for index, line in enumerate(lines):
        rendered.append("  ".join(cell.rjust(width) for cell, width in zip(line, widths)))
        if index == 0:
            rendered.append("  ".join("-" * width for width in widths))
    return "\n".join(rendered)


def summarize_winners(result: SweepResult, metric: str = "total_cost") -> Dict[float, str]:
    """For each swept value, the solver with the lowest metric.

    Used by the benchmarks to assert the paper's qualitative conclusions
    ("OPQ-Based has the smallest decomposition cost") without pinning exact
    numbers.
    """
    winners: Dict[float, str] = {}
    for x in result.x_values:
        candidates = [r for r in result.rows if r.x == x]
        best = min(candidates, key=lambda r: getattr(r, metric))
        winners[x] = best.solver
    return winners
