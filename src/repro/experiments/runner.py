"""Run a set of solvers on one problem instance and collect measurements.

The runner is the smallest unit of the experiment harness: given a
:class:`~repro.core.problem.SladeProblem` and a list of solver names, it
dispatches each solver through the batch planning engine (so OPQ construction
is cached when a shared :class:`~repro.engine.planner.BatchPlanner` is
supplied), solves the instance, and returns uniform measurement rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.problem import SladeProblem
from repro.engine.planner import BatchPlanner
from repro.experiments.config import SweepRow


def run_solvers(
    problem: SladeProblem,
    solver_names: Sequence[str],
    x: float,
    solver_options: Optional[Dict[str, Dict[str, object]]] = None,
    verify: Optional[bool] = None,
    planner: Optional[BatchPlanner] = None,
) -> List[SweepRow]:
    """Solve ``problem`` with every named solver and return measurement rows.

    Parameters
    ----------
    problem:
        The instance to solve.
    solver_names:
        Registry names of the solvers to run (``"greedy"``, ``"opq"``, ...).
    x:
        Value of the swept knob, recorded in each row.
    solver_options:
        Optional per-solver keyword arguments, keyed by solver name.
    verify:
        Whether solvers should assert feasibility of their plans.  ``None``
        (the default) defers to the planner's setting — ``True`` for a
        private planner — so a caller-supplied ``BatchPlanner(verify=False)``
        (benchmarks measuring pure solve time) is honoured.
    planner:
        Optional shared :class:`~repro.engine.planner.BatchPlanner`.  Sweeps
        pass one planner across all of their x-values so instances sharing a
        ``(bin set, threshold)`` pair reuse the same optimal priority queue;
        when omitted, a private planner (with a cold cache) is created, which
        reproduces the historical per-call behaviour exactly.

    Returns
    -------
    list of SweepRow
        One row per solver, in the order the names were given.
    """
    solver_options = solver_options or {}
    active = planner if planner is not None else BatchPlanner(
        verify=True if verify is None else verify
    )
    rows: List[SweepRow] = []
    for name in solver_names:
        result = active.solve(
            problem, name, options=solver_options.get(name), verify=verify
        )
        rows.append(
            SweepRow(
                x=x,
                solver=name,
                total_cost=result.total_cost,
                elapsed_seconds=result.elapsed_seconds,
                feasible=result.feasible,
                n=problem.n,
                extra={"assignments": len(result.plan)},
            )
        )
    return rows
