"""Run a set of solvers on one problem instance and collect measurements.

The runner is the smallest unit of the experiment harness: given a
:class:`~repro.core.problem.SladeProblem` and a list of solver names, it
instantiates each solver from the registry (with optional per-solver keyword
arguments), solves the instance, and returns uniform measurement rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.algorithms.registry import create_solver
from repro.core.problem import SladeProblem
from repro.experiments.config import SweepRow


def run_solvers(
    problem: SladeProblem,
    solver_names: Sequence[str],
    x: float,
    solver_options: Optional[Dict[str, Dict[str, object]]] = None,
    verify: bool = True,
) -> List[SweepRow]:
    """Solve ``problem`` with every named solver and return measurement rows.

    Parameters
    ----------
    problem:
        The instance to solve.
    solver_names:
        Registry names of the solvers to run (``"greedy"``, ``"opq"``, ...).
    x:
        Value of the swept knob, recorded in each row.
    solver_options:
        Optional per-solver keyword arguments, keyed by solver name.
    verify:
        Whether solvers should assert feasibility of their plans (leave on in
        experiments; benchmarks measuring pure solve time may disable it).

    Returns
    -------
    list of SweepRow
        One row per solver, in the order the names were given.
    """
    solver_options = solver_options or {}
    rows: List[SweepRow] = []
    for name in solver_names:
        options = dict(solver_options.get(name, {}))
        options.setdefault("verify", verify)
        solver = create_solver(name, **options)
        result = solver.solve(problem)
        rows.append(
            SweepRow(
                x=x,
                solver=name,
                total_cost=result.total_cost,
                elapsed_seconds=result.elapsed_seconds,
                feasible=result.feasible,
                n=problem.n,
                extra={"assignments": len(result.plan)},
            )
        )
    return rows
