"""Experiment harness reproducing the paper's evaluation (Section 7).

The harness is organised in three layers:

* :mod:`repro.experiments.runner` runs a set of solvers on one problem
  instance and records cost, wall-clock time and feasibility;
* :mod:`repro.experiments.sweeps` varies one knob at a time — reliability
  threshold ``t``, maximum cardinality ``|B|``, task count ``n``, and the
  heterogeneous ``sigma``/``mu`` — producing the series behind Figures 6-8;
* :mod:`repro.experiments.figures` maps paper figure identifiers
  (``"fig6a"`` ... ``"fig8b"``, ``"fig3a"`` ...) to ready-to-run experiment
  functions, and :mod:`repro.experiments.report` renders the results as the
  plain-text tables recorded in ``EXPERIMENTS.md``.
"""

from repro.experiments.config import ExperimentConfig, SweepResult, SweepRow
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.motivation import motivation_series
from repro.experiments.report import format_series, format_sweep_table
from repro.experiments.runner import run_solvers
from repro.experiments.sweeps import (
    sweep_hetero_mu,
    sweep_hetero_scale,
    sweep_hetero_sigma,
    sweep_max_cardinality,
    sweep_scale,
    sweep_threshold,
)

__all__ = [
    "ExperimentConfig",
    "SweepResult",
    "SweepRow",
    "run_solvers",
    "sweep_threshold",
    "sweep_max_cardinality",
    "sweep_scale",
    "sweep_hetero_sigma",
    "sweep_hetero_mu",
    "sweep_hetero_scale",
    "motivation_series",
    "FIGURES",
    "run_figure",
    "format_sweep_table",
    "format_series",
]
