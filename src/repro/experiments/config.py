"""Experiment configuration and result containers.

The sweep functions all produce the same tabular structure: one
:class:`SweepRow` per (x-value, solver) pair, collected in a
:class:`SweepResult` that knows how to slice itself into the per-solver series
the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Solvers compared in the homogeneous experiments (paper Figure 6).
DEFAULT_HOMOGENEOUS_SOLVERS: Tuple[str, ...] = ("greedy", "opq", "baseline")

#: Solvers compared in the heterogeneous experiments (paper Figures 7-8).
DEFAULT_HETEROGENEOUS_SOLVERS: Tuple[str, ...] = ("greedy", "opq-extended", "baseline")


@dataclass(frozen=True)
class ExperimentConfig:
    """Shared defaults of the Section 7 evaluation.

    Attributes
    ----------
    dataset:
        ``"jelly"`` or ``"smic"``.
    n:
        Number of atomic tasks (paper default 10,000).
    max_cardinality:
        Largest bin cardinality offered, the paper's ``|B|`` (default 20).
    threshold:
        Homogeneous reliability threshold (default 0.9).
    mu, sigma:
        Normal-distribution parameters of the heterogeneous thresholds
        (defaults 0.9 and 0.03).
    seed:
        Base random seed used by threshold generators and randomized solvers.
    solvers:
        Names of the solvers to compare; ``None`` selects the paper's set for
        the scenario at hand.
    solver_options:
        Extra keyword arguments per solver name (e.g. a smaller baseline
        chunk size for quick runs).
    """

    dataset: str = "jelly"
    n: int = 10_000
    max_cardinality: int = 20
    threshold: float = 0.9
    mu: float = 0.9
    sigma: float = 0.03
    seed: int = 42
    solvers: Optional[Sequence[str]] = None
    solver_options: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def scaled(self, n: int) -> "ExperimentConfig":
        """A copy of this configuration with a different task count."""
        return ExperimentConfig(
            dataset=self.dataset,
            n=n,
            max_cardinality=self.max_cardinality,
            threshold=self.threshold,
            mu=self.mu,
            sigma=self.sigma,
            seed=self.seed,
            solvers=self.solvers,
            solver_options=self.solver_options,
        )


@dataclass(frozen=True)
class SweepRow:
    """One measurement: a solver run at one value of the swept knob."""

    x: float
    solver: str
    total_cost: float
    elapsed_seconds: float
    feasible: bool
    n: int
    extra: Dict[str, object] = field(default_factory=dict)


@dataclass
class SweepResult:
    """All measurements of one parameter sweep.

    Attributes
    ----------
    name:
        Sweep identifier (e.g. ``"fig6a-jelly-threshold-cost"``).
    x_label:
        Name of the swept knob (``"t"``, ``"|B|"``, ``"n"``, ``"sigma"`` ...).
    rows:
        One row per (x value, solver).
    """

    name: str
    x_label: str
    rows: List[SweepRow] = field(default_factory=list)

    def add(self, row: SweepRow) -> None:
        """Append one measurement."""
        self.rows.append(row)

    @property
    def solvers(self) -> List[str]:
        """Solver names present in the sweep, in first-appearance order."""
        seen: List[str] = []
        for row in self.rows:
            if row.solver not in seen:
                seen.append(row.solver)
        return seen

    @property
    def x_values(self) -> List[float]:
        """Distinct x values, in first-appearance order."""
        seen: List[float] = []
        for row in self.rows:
            if row.x not in seen:
                seen.append(row.x)
        return seen

    def series(self, solver: str, metric: str = "total_cost") -> List[Tuple[float, float]]:
        """The (x, metric) series of one solver, e.g. for plotting.

        ``metric`` is ``"total_cost"`` or ``"elapsed_seconds"``.
        """
        points = []
        for row in self.rows:
            if row.solver == solver:
                points.append((row.x, getattr(row, metric)))
        return points

    def as_records(self) -> List[Dict[str, object]]:
        """Flat dictionaries (one per row) for CSV-style export."""
        records = []
        for row in self.rows:
            record: Dict[str, object] = {
                "sweep": self.name,
                self.x_label: row.x,
                "solver": row.solver,
                "total_cost": row.total_cost,
                "elapsed_seconds": row.elapsed_seconds,
                "feasible": row.feasible,
                "n": row.n,
            }
            record.update(row.extra)
            records.append(record)
        return records
