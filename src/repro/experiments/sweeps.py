"""Parameter sweeps behind the paper's evaluation figures.

Each function varies exactly one knob of the evaluation — reliability
threshold ``t`` (Figure 6a-d), maximum bin cardinality ``|B|`` (Figure 6e-h),
task count ``n`` (Figure 6i-l and 8a-b), and the Normal-distribution
parameters ``sigma``/``mu`` of heterogeneous thresholds (Figure 7a-d) — while
holding the rest at the paper's defaults, and returns a
:class:`~repro.experiments.config.SweepResult` holding the per-solver cost and
running-time series.

Each sweep routes its points through one shared
:class:`~repro.engine.planner.BatchPlanner`, so sweep points sharing a
``(bin set, threshold)`` pair reuse the same optimal priority queue.  Costs
are identical to cold solves (see ``tests/engine/test_engine_equivalence.py``)
but ``elapsed_seconds`` therefore measures *marginal* solve time with a warm
cache: only the first point paying for a given queue includes its Algorithm 2
construction time.  Cold construction cost is measured separately by
``benchmarks/bench_opq_construction.py``; to recover strictly cold per-point
timings, call :func:`~repro.experiments.runner.run_solvers` directly for each
point without passing a planner (each call then gets a private cold cache).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem
from repro.engine.planner import BatchPlanner
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.smic import smic_bin_set
from repro.datasets.thresholds import normal_thresholds
from repro.experiments.config import (
    DEFAULT_HETEROGENEOUS_SOLVERS,
    DEFAULT_HOMOGENEOUS_SOLVERS,
    ExperimentConfig,
    SweepResult,
)
from repro.experiments.runner import run_solvers

#: Reliability thresholds swept in Figure 6a-d.
THRESHOLD_VALUES: Sequence[float] = (0.87, 0.9, 0.92, 0.95, 0.97)

#: Maximum cardinalities swept in Figure 6e-h.
MAX_CARDINALITY_VALUES: Sequence[int] = tuple(range(1, 21))

#: Task counts swept in Figure 6i-l and Figure 8 (the paper goes to 100,000;
#: override via the ``n_values`` argument for full-scale runs).
SCALE_VALUES: Sequence[int] = (1_000, 3_000, 5_000, 10_000, 20_000)

#: Standard deviations swept in Figure 7a-b.
SIGMA_VALUES: Sequence[float] = (0.01, 0.02, 0.03, 0.04, 0.05)

#: Means swept in Figure 7c-d.
MU_VALUES: Sequence[float] = (0.87, 0.9, 0.92, 0.95, 0.97)


def _bin_set_for(config: ExperimentConfig, max_cardinality: Optional[int] = None) -> TaskBinSet:
    """Build the dataset's task-bin menu for a configuration."""
    cardinality = max_cardinality or config.max_cardinality
    if config.dataset == "jelly":
        return jelly_bin_set(cardinality)
    if config.dataset == "smic":
        return smic_bin_set(cardinality)
    raise ValueError(f"unknown dataset {config.dataset!r}; expected 'jelly' or 'smic'")


def _homogeneous_solvers(config: ExperimentConfig) -> Sequence[str]:
    return tuple(config.solvers) if config.solvers else DEFAULT_HOMOGENEOUS_SOLVERS


def _heterogeneous_solvers(config: ExperimentConfig) -> Sequence[str]:
    return tuple(config.solvers) if config.solvers else DEFAULT_HETEROGENEOUS_SOLVERS


# -- homogeneous sweeps (Figure 6) ----------------------------------------------


def sweep_threshold(
    config: ExperimentConfig,
    thresholds: Sequence[float] = THRESHOLD_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary the homogeneous reliability threshold ``t`` (Figure 6a-d)."""
    planner = planner or BatchPlanner()
    bins = _bin_set_for(config)
    result = SweepResult(name=f"{config.dataset}-threshold", x_label="t")
    for threshold in thresholds:
        problem = SladeProblem.homogeneous(
            config.n, threshold, bins, name=f"{config.dataset}-t{threshold}"
        )
        for row in run_solvers(
            problem, _homogeneous_solvers(config), threshold, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result


def sweep_max_cardinality(
    config: ExperimentConfig,
    cardinalities: Sequence[int] = MAX_CARDINALITY_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary the maximum bin cardinality ``|B|`` (Figure 6e-h)."""
    planner = planner or BatchPlanner()
    result = SweepResult(name=f"{config.dataset}-max-cardinality", x_label="|B|")
    for cardinality in cardinalities:
        bins = _bin_set_for(config, max_cardinality=cardinality)
        problem = SladeProblem.homogeneous(
            config.n, config.threshold, bins, name=f"{config.dataset}-B{cardinality}"
        )
        for row in run_solvers(
            problem, _homogeneous_solvers(config), cardinality, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result


def sweep_scale(
    config: ExperimentConfig,
    n_values: Sequence[int] = SCALE_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary the number of atomic tasks ``n`` (Figure 6i-l)."""
    planner = planner or BatchPlanner()
    bins = _bin_set_for(config)
    result = SweepResult(name=f"{config.dataset}-scale", x_label="n")
    for n in n_values:
        problem = SladeProblem.homogeneous(
            n, config.threshold, bins, name=f"{config.dataset}-n{n}"
        )
        for row in run_solvers(
            problem, _homogeneous_solvers(config), n, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result


# -- heterogeneous sweeps (Figures 7-8) --------------------------------------------


def _heterogeneous_problem(
    config: ExperimentConfig,
    n: int,
    mu: float,
    sigma: float,
    bins: TaskBinSet,
    label: str,
) -> SladeProblem:
    thresholds = normal_thresholds(n, mu=mu, sigma=sigma, seed=config.seed)
    return SladeProblem.heterogeneous(thresholds, bins, name=label)


def sweep_hetero_sigma(
    config: ExperimentConfig,
    sigmas: Sequence[float] = SIGMA_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary the standard deviation of Normal thresholds (Figure 7a-b)."""
    planner = planner or BatchPlanner()
    bins = _bin_set_for(config)
    result = SweepResult(name=f"{config.dataset}-hetero-sigma", x_label="sigma")
    for sigma in sigmas:
        problem = _heterogeneous_problem(
            config, config.n, config.mu, sigma, bins,
            label=f"{config.dataset}-sigma{sigma}",
        )
        for row in run_solvers(
            problem, _heterogeneous_solvers(config), sigma, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result


def sweep_hetero_mu(
    config: ExperimentConfig,
    mus: Sequence[float] = MU_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary the mean of Normal thresholds (Figure 7c-d)."""
    planner = planner or BatchPlanner()
    bins = _bin_set_for(config)
    result = SweepResult(name=f"{config.dataset}-hetero-mu", x_label="mu")
    for mu in mus:
        problem = _heterogeneous_problem(
            config, config.n, mu, config.sigma, bins,
            label=f"{config.dataset}-mu{mu}",
        )
        for row in run_solvers(
            problem, _heterogeneous_solvers(config), mu, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result


def sweep_hetero_scale(
    config: ExperimentConfig,
    n_values: Sequence[int] = SCALE_VALUES,
    planner: Optional[BatchPlanner] = None,
) -> SweepResult:
    """Vary ``n`` with heterogeneous Normal thresholds (Figure 8a-b)."""
    planner = planner or BatchPlanner()
    bins = _bin_set_for(config)
    result = SweepResult(name=f"{config.dataset}-hetero-scale", x_label="n")
    for n in n_values:
        problem = _heterogeneous_problem(
            config, n, config.mu, config.sigma, bins,
            label=f"{config.dataset}-hetero-n{n}",
        )
        for row in run_solvers(
            problem, _heterogeneous_solvers(config), n, config.solver_options,
            planner=planner,
        ):
            result.add(row)
    return result
