"""Map paper figure identifiers to runnable experiments.

``run_figure("fig6a")`` reproduces the corresponding panel of the paper's
evaluation with the default (CI-sized) configuration; passing a custom
:class:`~repro.experiments.config.ExperimentConfig` or keyword overrides scales
the run up to the paper's full sizes.  The mapping is also what the benchmark
suite iterates over, so ``benchmarks/`` and this module can never drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.experiments.config import ExperimentConfig, SweepResult
from repro.experiments.motivation import MotivationSeries, difficulty_series, motivation_series
from repro.experiments.sweeps import (
    sweep_hetero_mu,
    sweep_hetero_scale,
    sweep_hetero_sigma,
    sweep_max_cardinality,
    sweep_scale,
    sweep_threshold,
)

FigureResult = Union[SweepResult, MotivationSeries, Dict[int, Dict[int, float]]]


@dataclass(frozen=True)
class FigureSpec:
    """Description of one paper figure and how to regenerate it.

    Attributes
    ----------
    figure_id:
        Paper identifier, e.g. ``"fig6a"``.
    description:
        What the panel shows.
    metric:
        ``"total_cost"``, ``"elapsed_seconds"`` or ``"confidence"``.
    runner:
        Callable producing the figure's data.
    """

    figure_id: str
    description: str
    metric: str
    runner: Callable[..., FigureResult]


def _threshold_cost(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_threshold(config, **kwargs)


def _cardinality_cost(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_max_cardinality(config, **kwargs)


def _scale_cost(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_scale(config, **kwargs)


def _hetero_sigma(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_hetero_sigma(config, **kwargs)


def _hetero_mu(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_hetero_mu(config, **kwargs)


def _hetero_scale(config: ExperimentConfig, **kwargs) -> SweepResult:
    return sweep_hetero_scale(config, **kwargs)


def _motivation(dataset: str, difficulty: int = 2) -> Callable[..., MotivationSeries]:
    def runner(config: Optional[ExperimentConfig] = None, **kwargs) -> MotivationSeries:
        return motivation_series(dataset=dataset, difficulty=difficulty, **kwargs)

    return runner


def _difficulty(config: Optional[ExperimentConfig] = None, **kwargs) -> Dict[int, Dict[int, float]]:
    return difficulty_series(**kwargs)


#: All reproducible paper artefacts.  Cost and time panels share a sweep (the
#: sweep records both metrics); they are listed separately so that
#: ``run_figure`` accepts every figure label that appears in the paper.
FIGURES: Dict[str, FigureSpec] = {
    "fig3a": FigureSpec("fig3a", "Jelly: cardinality vs confidence per price", "confidence", _motivation("jelly")),
    "fig3b": FigureSpec("fig3b", "SMIC: cardinality vs confidence per price", "confidence", _motivation("smic")),
    "fig3c": FigureSpec("fig3c", "Jelly: cardinality vs confidence per difficulty", "confidence", _difficulty),
    "fig6a": FigureSpec("fig6a", "Homogeneous Jelly: threshold vs cost", "total_cost", _threshold_cost),
    "fig6b": FigureSpec("fig6b", "Homogeneous SMIC: threshold vs cost", "total_cost", _threshold_cost),
    "fig6c": FigureSpec("fig6c", "Homogeneous Jelly: threshold vs time", "elapsed_seconds", _threshold_cost),
    "fig6d": FigureSpec("fig6d", "Homogeneous SMIC: threshold vs time", "elapsed_seconds", _threshold_cost),
    "fig6e": FigureSpec("fig6e", "Homogeneous Jelly: |B| vs cost", "total_cost", _cardinality_cost),
    "fig6f": FigureSpec("fig6f", "Homogeneous SMIC: |B| vs cost", "total_cost", _cardinality_cost),
    "fig6g": FigureSpec("fig6g", "Homogeneous Jelly: |B| vs time", "elapsed_seconds", _cardinality_cost),
    "fig6h": FigureSpec("fig6h", "Homogeneous SMIC: |B| vs time", "elapsed_seconds", _cardinality_cost),
    "fig6i": FigureSpec("fig6i", "Homogeneous Jelly: n vs cost", "total_cost", _scale_cost),
    "fig6j": FigureSpec("fig6j", "Homogeneous SMIC: n vs cost", "total_cost", _scale_cost),
    "fig6k": FigureSpec("fig6k", "Homogeneous Jelly: n vs time", "elapsed_seconds", _scale_cost),
    "fig6l": FigureSpec("fig6l", "Homogeneous SMIC: n vs time", "elapsed_seconds", _scale_cost),
    "fig7a": FigureSpec("fig7a", "Heterogeneous Jelly: sigma vs cost", "total_cost", _hetero_sigma),
    "fig7b": FigureSpec("fig7b", "Heterogeneous Jelly: sigma vs time", "elapsed_seconds", _hetero_sigma),
    "fig7c": FigureSpec("fig7c", "Heterogeneous Jelly: mu vs cost", "total_cost", _hetero_mu),
    "fig7d": FigureSpec("fig7d", "Heterogeneous Jelly: mu vs time", "elapsed_seconds", _hetero_mu),
    "fig8a": FigureSpec("fig8a", "Heterogeneous Jelly: n vs time", "elapsed_seconds", _hetero_scale),
    "fig8b": FigureSpec("fig8b", "Heterogeneous SMIC: n vs time", "elapsed_seconds", _hetero_scale),
}

#: Which dataset each sweep-based figure uses.
_FIGURE_DATASETS: Dict[str, str] = {
    "fig6a": "jelly", "fig6b": "smic", "fig6c": "jelly", "fig6d": "smic",
    "fig6e": "jelly", "fig6f": "smic", "fig6g": "jelly", "fig6h": "smic",
    "fig6i": "jelly", "fig6j": "smic", "fig6k": "jelly", "fig6l": "smic",
    "fig7a": "jelly", "fig7b": "jelly", "fig7c": "jelly", "fig7d": "jelly",
    "fig8a": "jelly", "fig8b": "smic",
}


def run_figure(
    figure_id: str,
    config: Optional[ExperimentConfig] = None,
    **kwargs,
) -> FigureResult:
    """Reproduce one paper figure.

    Parameters
    ----------
    figure_id:
        One of the keys of :data:`FIGURES` (case-insensitive).
    config:
        Experiment configuration for the sweep-based figures; a CI-sized
        default is built when omitted (n=2000 and a small baseline chunk),
        which preserves every qualitative trend at a fraction of the runtime.
    kwargs:
        Extra keyword arguments forwarded to the underlying runner (e.g.
        ``cardinalities=...`` for the motivation figures).

    Returns
    -------
    SweepResult or MotivationSeries or dict
        The figure's data series.
    """
    key = figure_id.lower()
    try:
        spec = FIGURES[key]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {figure_id!r}; known figures: {known}") from None

    if key.startswith("fig3"):
        return spec.runner(config, **kwargs)

    if config is None:
        config = ExperimentConfig(
            dataset=_FIGURE_DATASETS[key],
            n=2_000,
            solver_options={"baseline": {"chunk_size": 128}},
        )
    elif config.dataset != _FIGURE_DATASETS[key]:
        config = ExperimentConfig(
            dataset=_FIGURE_DATASETS[key],
            n=config.n,
            max_cardinality=config.max_cardinality,
            threshold=config.threshold,
            mu=config.mu,
            sigma=config.sigma,
            seed=config.seed,
            solvers=config.solvers,
            solver_options=config.solver_options,
        )
    return spec.runner(config, **kwargs)


def figure_ids() -> List[str]:
    """All reproducible figure identifiers, sorted."""
    return sorted(FIGURES)
