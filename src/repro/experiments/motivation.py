"""The Section 2 motivation experiments (Figure 3).

The motivation study posts probe bins of cardinality 2..30 at several price
points on the crowd platform and records, per (cardinality, price):

* the measured worker confidence (fraction of correct answers), and
* whether enough answers arrived before the response-time threshold.

Against a real marketplace this is exactly what
:class:`~repro.crowd.calibration.ProbeCalibrator` does; here it is run against
the simulated Jelly/SMIC platforms, regenerating the three panels of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.crowd.calibration import ProbeCalibrator
from repro.crowd.platform import CrowdPlatform
from repro.crowd.presets import jelly_platform, smic_platform
from repro.utils.rng import RandomSource

#: Cardinalities probed in Figure 3a/3b.
DEFAULT_CARDINALITIES: Sequence[int] = tuple(range(2, 31, 2))

#: Cardinalities swept by the difficulty series (Figure 3c).
DIFFICULTY_CARDINALITIES: Sequence[int] = tuple(range(1, 21, 2))

#: Jelly per-bin prices (Figure 3a) and SMIC per-bin prices (Figure 3b).
JELLY_COSTS: Sequence[float] = (0.05, 0.08, 0.10)
SMIC_COSTS: Sequence[float] = (0.05, 0.10, 0.20)


@dataclass
class MotivationSeries:
    """One Figure 3 panel: confidence-vs-cardinality curves per price level.

    Attributes
    ----------
    dataset:
        ``"jelly"`` or ``"smic"`` (plus the difficulty suffix for Fig. 3c).
    confidence:
        ``confidence[cost][cardinality]`` — measured worker confidence.
    in_time:
        ``in_time[cost][cardinality]`` — whether the configuration completed
        within the response-time threshold (the paper's solid-vs-dotted lines).
    probe_spend:
        Total simulated reward paid for the probes.
    """

    dataset: str
    confidence: Dict[float, Dict[int, float]] = field(default_factory=dict)
    in_time: Dict[float, Dict[int, bool]] = field(default_factory=dict)
    probe_spend: float = 0.0

    def usable_range(self, cost: float) -> int:
        """Largest probed cardinality still completing in time at this price."""
        usable = [l for l, ok in self.in_time.get(cost, {}).items() if ok]
        return max(usable) if usable else 0

    def confidence_drop(self, cost: float) -> Tuple[float, float]:
        """(confidence at smallest cardinality, confidence at largest usable)."""
        series = self.confidence.get(cost, {})
        if not series:
            return (0.0, 0.0)
        smallest = min(series)
        largest = max(l for l in series if self.in_time[cost].get(l, False)) \
            if any(self.in_time[cost].values()) else max(series)
        return (series[smallest], series[largest])


def motivation_series(
    dataset: str = "jelly",
    cardinalities: Sequence[int] = DEFAULT_CARDINALITIES,
    costs: Optional[Sequence[float]] = None,
    difficulty: int = 2,
    assignments_per_probe: int = 10,
    probes_per_cardinality: int = 3,
    seed: RandomSource = 7,
    platform: Optional[CrowdPlatform] = None,
) -> MotivationSeries:
    """Regenerate one panel of Figure 3 on the simulated platform.

    Parameters
    ----------
    dataset:
        ``"jelly"`` (Figure 3a / 3c) or ``"smic"`` (Figure 3b).
    cardinalities:
        Probe bin cardinalities (the paper uses 2..30).
    costs:
        Per-bin prices to test; defaults to the paper's levels per dataset.
    difficulty:
        Jelly difficulty level (Figure 3c varies this between 1 and 3).
    assignments_per_probe, probes_per_cardinality:
        Probe intensity; the defaults match the paper's 10 assignments.
    seed:
        Seed controlling the simulation.
    platform:
        Optional pre-built platform (overrides ``dataset``/``difficulty``).

    Returns
    -------
    MotivationSeries
        Confidence and in-time curves per price level.
    """
    if platform is None:
        if dataset == "jelly":
            platform = jelly_platform(difficulty=difficulty, seed=seed)
        elif dataset == "smic":
            platform = smic_platform(seed=seed)
        else:
            raise ValueError(f"unknown dataset {dataset!r}; expected 'jelly' or 'smic'")
    if costs is None:
        costs = JELLY_COSTS if dataset == "jelly" else SMIC_COSTS

    calibrator = ProbeCalibrator(
        platform,
        candidate_costs=costs,
        assignments_per_probe=assignments_per_probe,
        probes_per_cardinality=probes_per_cardinality,
        seed=seed,
    )
    calibration = calibrator.calibrate(list(cardinalities))

    label = dataset if dataset != "jelly" else f"jelly-diff{difficulty}"
    series = MotivationSeries(dataset=label, probe_spend=calibration.probe_spend)
    for cost in costs:
        series.confidence[cost] = {}
        series.in_time[cost] = {}
        for cardinality in cardinalities:
            measurement = calibration.measurements[(cardinality, cost)]
            if measurement.confidence is not None:
                series.confidence[cost][cardinality] = measurement.confidence
            series.in_time[cost][cardinality] = measurement.usable
    return series


def difficulty_series(
    difficulties: Sequence[int] = (1, 2, 3),
    cardinalities: Sequence[int] = DIFFICULTY_CARDINALITIES,
    cost: float = 0.10,
    seed: RandomSource = 7,
) -> Dict[int, Dict[int, float]]:
    """Figure 3c: Jelly confidence curves for difficulty levels 1-3.

    Returns
    -------
    dict
        ``{difficulty: {cardinality: confidence}}`` using the given price.
    """
    curves: Dict[int, Dict[int, float]] = {}
    for difficulty in difficulties:
        series = motivation_series(
            dataset="jelly",
            cardinalities=cardinalities,
            costs=(cost,),
            difficulty=difficulty,
            seed=seed,
        )
        curves[difficulty] = series.confidence[cost]
    return curves
