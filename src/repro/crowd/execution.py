"""Execute a decomposition plan on the simulated platform.

This closes the loop the paper leaves implicit: a SLADE solver promises each
atomic task a reliability ``>= t_i`` based on the calibrated bin confidences;
the :class:`PlanExecutor` actually posts every bin of the plan to the simulated
crowd, aggregates the answers with the any-yes rule, and reports the achieved
(empirical) reliability, the false-negative rate among true positives, and the
realised spend.  The integration tests assert that executed plans achieve
roughly the reliability they were designed for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.plan import DecompositionPlan
from repro.core.task import CrowdsourcingTask
from repro.crowd.monitoring import QualityMonitor
from repro.crowd.platform import CrowdPlatform
from repro.crowd.responses import AnswerAggregator, BinResponse


@dataclass
class ExecutionReport:
    """Result of executing a decomposition plan on the simulated crowd.

    Attributes
    ----------
    planned_cost:
        The cost the plan predicted (sum of bin costs).
    realised_spend:
        The reward actually paid on the platform (equal to the planned cost
        unless some assignments expired unanswered).
    postings:
        Number of bins posted.
    decisions:
        Aggregated boolean decision per atomic task id.
    empirical_reliability:
        Per-task no-false-negative indicator/probability (see
        :meth:`AnswerAggregator.empirical_reliability`).
    false_negative_rate:
        Fraction of true positives missed by the aggregated decisions.
    detection_rate:
        ``1 - false_negative_rate``; the headline number for the fishing-line
        scenario.
    mean_planned_reliability:
        Average reliability the plan promised across atomic tasks.
    """

    planned_cost: float
    realised_spend: float
    postings: int
    decisions: Dict[int, bool]
    empirical_reliability: Dict[int, float]
    false_negative_rate: float
    mean_planned_reliability: float

    @property
    def detection_rate(self) -> float:
        """Fraction of true positives the crowd caught."""
        return 1.0 - self.false_negative_rate

    def summary(self) -> Dict[str, object]:
        """A flat dictionary for reports and examples."""
        return {
            "planned_cost": self.planned_cost,
            "realised_spend": self.realised_spend,
            "postings": self.postings,
            "false_negative_rate": self.false_negative_rate,
            "detection_rate": self.detection_rate,
            "mean_planned_reliability": self.mean_planned_reliability,
        }


class PlanExecutor:
    """Run a decomposition plan end to end on a :class:`CrowdPlatform`.

    Parameters
    ----------
    platform:
        The simulated platform that will receive the postings.
    aggregator:
        Answer aggregation rule; defaults to any-yes.
    monitor:
        Optional :class:`QualityMonitor`.  When set, every in-time answer
        whose ground truth is known is fed into the monitor as a
        ``(cardinality, correct)`` observation, closing the Section 3.1
        probe loop: executed plans double as quality probes.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        aggregator: Optional[AnswerAggregator] = None,
        monitor: Optional[QualityMonitor] = None,
    ) -> None:
        self.platform = platform
        self.aggregator = aggregator or AnswerAggregator("any-yes")
        self.monitor = monitor

    def execute(
        self,
        plan: DecompositionPlan,
        task: CrowdsourcingTask,
    ) -> ExecutionReport:
        """Post every bin of ``plan`` and aggregate the crowd's answers.

        Parameters
        ----------
        plan:
            The decomposition plan to execute.
        task:
            The large-scale task; each atomic task's payload must carry its
            ground truth under ``"truth"`` (tasks without a recorded truth are
            treated as negatives).

        Returns
        -------
        ExecutionReport
            Achieved reliability, false-negative rate and spend.
        """
        truths: Dict[int, bool] = {
            atomic.task_id: bool(atomic.payload.get("truth", False))
            for atomic in task
        }

        responses: List[BinResponse] = []
        spend_before = self.platform.total_spend
        postings_before = self.platform.total_postings
        for assignment in plan:
            bin_truths = {
                task_id: truths.get(task_id, False)
                for task_id in assignment.task_ids
            }
            posting = self.platform.post_bin(
                assignment.task_bin, bin_truths, assignments=1
            )
            responses.extend(posting.responses)
            if self.monitor is not None:
                self._feed_monitor(posting.in_time_responses, bin_truths)

        reliabilities = plan.reliabilities()
        planned = [reliabilities.get(atomic.task_id, 0.0) for atomic in task]
        return ExecutionReport(
            planned_cost=plan.total_cost,
            realised_spend=self.platform.total_spend - spend_before,
            postings=self.platform.total_postings - postings_before,
            decisions=self.aggregator.decisions(responses),
            empirical_reliability=self.aggregator.empirical_reliability(
                responses, truths
            ),
            false_negative_rate=self.aggregator.false_negative_rate(
                responses, truths
            ),
            mean_planned_reliability=sum(planned) / len(planned),
        )

    def _feed_monitor(
        self,
        responses: List[BinResponse],
        truths: Dict[int, bool],
    ) -> None:
        """Turn in-time answers with known truths into monitor observations."""
        monitor = self.monitor
        if monitor is None:
            return
        for response in responses:
            if response.cardinality not in monitor.bins:
                continue
            for task_id, answer in response.answers.items():
                if task_id in truths:
                    monitor.record(response.cardinality, answer == truths[task_id])
