"""Pre-tuned simulated platforms for the paper's two datasets.

The motivation experiments (Figure 3) and the end-to-end examples need a
platform whose behaviour resembles the marketplace the paper measured: Jelly
workers are accurate (confidence around 0.98 on short bins) and the task is
easy; SMIC workers hover around 0.7-0.85 because micro-expression labelling is
genuinely hard; and for both, cheap bins stop completing in time at smaller
cardinalities than expensive bins.  These factory functions bundle the tuned
worker pools, accuracy models, arrival models and response-time thresholds.
"""

from __future__ import annotations

from repro.crowd.accuracy import CognitiveLoadAccuracyModel
from repro.crowd.arrival import RewardSensitiveArrivalModel
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker import WorkerPool
from repro.datasets.jelly import JELLY_RESPONSE_TIME_MINUTES
from repro.datasets.smic import SMIC_RESPONSE_TIME_MINUTES
from repro.utils.rng import RandomSource, ensure_rng

#: Decay-rate multipliers per Jelly difficulty level (see Figure 3c).
_JELLY_DIFFICULTY_SCALE = {1: 0.7, 2: 1.0, 3: 1.35}


def jelly_platform(
    difficulty: int = 2,
    pool_size: int = 300,
    seed: RandomSource = None,
) -> CrowdPlatform:
    """A simulated platform tuned to the Jelly-Beans-in-a-Jar experiments.

    Parameters
    ----------
    difficulty:
        Jelly difficulty level 1 (50 dots), 2 (200 dots) or 3 (400 dots).
    pool_size:
        Number of distinct simulated workers.
    seed:
        Seed or generator for the whole platform (worker skills, arrivals,
        answers).
    """
    if difficulty not in _JELLY_DIFFICULTY_SCALE:
        raise ValueError(f"Jelly difficulty must be 1, 2 or 3; got {difficulty}")
    rng = ensure_rng(seed)
    pool = WorkerPool(size=pool_size, mean_skill=0.985, skill_std=0.01, seed=rng)
    accuracy = CognitiveLoadAccuracyModel(
        floor_accuracy=0.78,
        decay=0.075,
        difficulty_scale=_JELLY_DIFFICULTY_SCALE[difficulty],
    )
    arrival = RewardSensitiveArrivalModel(
        base_rate_per_minute=0.39,
        reference_cost=0.05,
        elasticity=1.4,
        minutes_per_question=1.0,
    )
    return CrowdPlatform(
        worker_pool=pool,
        accuracy_model=accuracy,
        arrival_model=arrival,
        response_time_minutes=JELLY_RESPONSE_TIME_MINUTES,
        seed=rng,
    )


def smic_platform(
    pool_size: int = 300,
    seed: RandomSource = None,
) -> CrowdPlatform:
    """A simulated platform tuned to the SMIC micro-expression experiments."""
    rng = ensure_rng(seed)
    pool = WorkerPool(size=pool_size, mean_skill=0.85, skill_std=0.05, seed=rng)
    accuracy = CognitiveLoadAccuracyModel(
        floor_accuracy=0.56,
        decay=0.07,
        difficulty_scale=1.0,
    )
    arrival = RewardSensitiveArrivalModel(
        base_rate_per_minute=0.55,
        reference_cost=0.05,
        elasticity=0.85,
        minutes_per_question=0.8,
    )
    return CrowdPlatform(
        worker_pool=pool,
        accuracy_model=accuracy,
        arrival_model=arrival,
        response_time_minutes=SMIC_RESPONSE_TIME_MINUTES,
        seed=rng,
    )
