"""Simulated crowd workers.

A :class:`SimulatedWorker` answers the binary questions inside a posted task
bin.  Its probability of answering any single question correctly comes from
the accuracy model (skill degraded by the bin's cognitive load); errors flip
the ground-truth label.  A :class:`WorkerPool` owns a population of workers
with skills drawn from a truncated normal distribution and hands them out to
the platform as they "arrive".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.core.bins import TaskBin
from repro.crowd.accuracy import CognitiveLoadAccuracyModel
from repro.utils.rng import RandomSource, ensure_rng, spawn_child
from repro.utils.validation import require_in_unit_interval


@dataclass
class SimulatedWorker:
    """One crowd worker with a fixed skill level.

    Attributes
    ----------
    worker_id:
        Unique identifier within the pool.
    skill:
        Accuracy on a single-question bin, in ``[0.5, 1)``.
    """

    worker_id: int
    skill: float
    _rng: np.random.Generator = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        require_in_unit_interval(self.skill, "skill")
        if self._rng is None:
            self._rng = ensure_rng(self.worker_id)

    def answer_bin(
        self,
        task_bin: TaskBin,
        truths: Mapping[int, bool],
        accuracy_model: CognitiveLoadAccuracyModel,
    ) -> Dict[int, bool]:
        """Answer every atomic task in a posted bin.

        Parameters
        ----------
        task_bin:
            The posted bin (its cardinality determines the cognitive load).
        truths:
            Ground-truth label per atomic task id contained in the posting.
        accuracy_model:
            The accuracy model translating skill and cardinality into a
            per-question correctness probability.

        Returns
        -------
        dict
            Mapping of atomic task id to the worker's boolean answer.
        """
        accuracy = accuracy_model.accuracy(self.skill, task_bin.cardinality)
        answers: Dict[int, bool] = {}
        for task_id, truth in truths.items():
            correct = self._rng.random() < accuracy
            answers[task_id] = bool(truth) if correct else (not bool(truth))
        return answers


class WorkerPool:
    """A population of simulated workers with heterogeneous skill.

    Parameters
    ----------
    size:
        Number of distinct workers in the pool.
    mean_skill:
        Mean single-question accuracy of the population.
    skill_std:
        Standard deviation of the skill distribution (truncated to
        ``[0.5, 0.995]``).
    seed:
        Seed or generator for the skill draw and for worker selection.
    """

    def __init__(
        self,
        size: int = 200,
        mean_skill: float = 0.9,
        skill_std: float = 0.05,
        seed: RandomSource = None,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be at least 1; got {size}")
        require_in_unit_interval(mean_skill, "mean_skill")
        if skill_std < 0:
            raise ValueError(f"skill_std must be non-negative; got {skill_std}")
        self._rng = ensure_rng(seed)
        skills = np.clip(
            self._rng.normal(mean_skill, skill_std, size=size), 0.5, 0.995
        )
        self._workers: List[SimulatedWorker] = [
            SimulatedWorker(worker_id, float(skill), spawn_child(self._rng))
            for worker_id, skill in enumerate(skills)
        ]

    def __len__(self) -> int:
        return len(self._workers)

    def __iter__(self):
        return iter(self._workers)

    @property
    def workers(self) -> Sequence[SimulatedWorker]:
        """The workers in the pool."""
        return list(self._workers)

    @property
    def mean_skill(self) -> float:
        """Empirical mean skill of the pool."""
        return float(np.mean([w.skill for w in self._workers]))

    def sample_worker(self) -> SimulatedWorker:
        """Draw the next arriving worker uniformly at random from the pool."""
        index = int(self._rng.integers(0, len(self._workers)))
        return self._workers[index]
