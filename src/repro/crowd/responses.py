"""Worker answers, bin responses and answer aggregation.

The applications motivating SLADE are false-negative sensitive: an atomic task
is considered *covered* if at least one assigned worker answers "yes" on a true
positive (the fishing-line image is flagged for scrutiny).  The
:class:`AnswerAggregator` implements that any-yes rule plus a majority-vote
alternative, and computes the empirical reliability the executed plan actually
achieved — the quantity compared against the planned reliability in the
integration tests and the execution example.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping

from repro.core.errors import SimulationError


@dataclass(frozen=True)
class WorkerAnswer:
    """A single worker's answer to a single atomic task inside one posting."""

    task_id: int
    worker_id: int
    answer: bool


@dataclass(frozen=True)
class BinResponse:
    """All answers one worker produced for one posted bin.

    Attributes
    ----------
    posting_id:
        Identifier of the posting on the platform.
    worker_id:
        The answering worker.
    cardinality:
        Cardinality of the posted bin.
    answers:
        Mapping of atomic task id to the worker's boolean answer.
    completed_at_minutes:
        Simulated completion time relative to the posting time.
    in_time:
        Whether the answer arrived within the response-time threshold; late
        answers are collected but excluded from aggregation, matching how the
        paper discards overtime bins.
    """

    posting_id: int
    worker_id: int
    cardinality: int
    answers: Mapping[int, bool]
    completed_at_minutes: float
    in_time: bool = True

    def iter_answers(self) -> Iterable[WorkerAnswer]:
        """Yield the individual per-task answers."""
        for task_id, answer in self.answers.items():
            yield WorkerAnswer(task_id, self.worker_id, answer)


class AnswerAggregator:
    """Aggregate worker answers per atomic task.

    Parameters
    ----------
    rule:
        ``"any-yes"`` (default) marks a task positive as soon as any in-time
        answer is "yes" — the low-false-negative rule of the fishing-line
        scenario.  ``"majority"`` uses a simple majority of in-time answers.
    """

    SUPPORTED_RULES = ("any-yes", "majority")

    def __init__(self, rule: str = "any-yes") -> None:
        if rule not in self.SUPPORTED_RULES:
            raise SimulationError(
                f"unknown aggregation rule {rule!r}; supported: {self.SUPPORTED_RULES}"
            )
        self.rule = rule

    def collect(self, responses: Iterable[BinResponse]) -> Dict[int, List[bool]]:
        """Group in-time answers by atomic task id."""
        grouped: Dict[int, List[bool]] = defaultdict(list)
        for response in responses:
            if not response.in_time:
                continue
            for task_id, answer in response.answers.items():
                grouped[task_id].append(bool(answer))
        return dict(grouped)

    def decisions(self, responses: Iterable[BinResponse]) -> Dict[int, bool]:
        """The aggregated label per atomic task id."""
        grouped = self.collect(responses)
        decided: Dict[int, bool] = {}
        for task_id, answers in grouped.items():
            if self.rule == "any-yes":
                decided[task_id] = any(answers)
            else:
                decided[task_id] = sum(answers) * 2 > len(answers)
        return decided

    def empirical_reliability(
        self,
        responses: Iterable[BinResponse],
        truths: Mapping[int, bool],
    ) -> Dict[int, float]:
        """Per-task probability that the task was *not* a false negative.

        For true positives the task is reliable when the aggregated decision is
        positive.  For true negatives, false negatives are impossible, so the
        reliability is 1.0 whenever the task received at least one in-time
        answer and 0.0 otherwise (it was never looked at).
        """
        decisions = self.decisions(responses)
        reliability: Dict[int, float] = {}
        for task_id, truth in truths.items():
            if task_id not in decisions:
                reliability[task_id] = 0.0
            elif truth:
                reliability[task_id] = 1.0 if decisions[task_id] else 0.0
            else:
                reliability[task_id] = 1.0
        return reliability

    def false_negative_rate(
        self,
        responses: Iterable[BinResponse],
        truths: Mapping[int, bool],
    ) -> float:
        """Fraction of true positives the aggregated decisions missed.

        Returns 0.0 when the workload contains no positives.
        """
        decisions = self.decisions(responses)
        positives = [task_id for task_id, truth in truths.items() if truth]
        if not positives:
            return 0.0
        missed = sum(1 for task_id in positives if not decisions.get(task_id, False))
        return missed / len(positives)
