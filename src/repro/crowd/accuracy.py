"""Worker accuracy model: cognitive load versus batch size.

The motivation experiments (Section 2) show that worker confidence decreases
moderately as more atomic tasks are packed into one bin — attributed to the
growing cognitive load, partially offset by the reduced task-switching cost of
answering a run of similar questions.  The model here reproduces that shape:

    accuracy(worker, cardinality) =
        floor + (skill - floor) * exp(-decay * (cardinality - 1))

where ``skill`` is the worker's accuracy on a single-question bin and ``floor``
is the asymptotic accuracy on very long batches.  Task difficulty scales the
decay rate, matching Figure 3c where harder Jelly variants decay faster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import (
    require_in_unit_interval,
    require_positive,
)


@dataclass(frozen=True)
class CognitiveLoadAccuracyModel:
    """Exponential cognitive-load decay of per-question accuracy.

    Attributes
    ----------
    floor_accuracy:
        Asymptotic accuracy for very large bins (never worse than guessing for
        binary questions, so values below 0.5 are rejected).
    decay:
        Base decay rate per additional atomic task in the bin.
    difficulty_scale:
        Multiplier applied to ``decay``; difficulty level 2 corresponds to 1.0,
        easier tasks use smaller values, harder tasks larger ones.
    """

    floor_accuracy: float = 0.75
    decay: float = 0.07
    difficulty_scale: float = 1.0

    def __post_init__(self) -> None:
        require_in_unit_interval(self.floor_accuracy, "floor_accuracy")
        if self.floor_accuracy < 0.5:
            raise ValueError(
                "floor_accuracy below 0.5 would be worse than guessing on a "
                f"binary question; got {self.floor_accuracy}"
            )
        require_positive(self.decay, "decay")
        require_positive(self.difficulty_scale, "difficulty_scale")

    def accuracy(self, skill: float, cardinality: int) -> float:
        """Per-question accuracy of a worker with ``skill`` on a bin of ``cardinality``.

        Parameters
        ----------
        skill:
            The worker's accuracy on a single-question bin, in ``[0.5, 1)``.
        cardinality:
            Number of atomic tasks in the posted bin (at least 1).
        """
        require_in_unit_interval(skill, "skill")
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1; got {cardinality}")
        floor = min(self.floor_accuracy, skill)
        span = skill - floor
        rate = self.decay * self.difficulty_scale
        return floor + span * math.exp(-rate * (cardinality - 1))

    def expected_confidence(self, mean_skill: float, cardinality: int) -> float:
        """Population-level confidence for a mean worker skill.

        A convenience used by tests and calibration sanity checks; the platform
        itself always evaluates per-worker accuracies.
        """
        return self.accuracy(mean_skill, cardinality)
