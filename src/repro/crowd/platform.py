"""The simulated crowdsourcing platform.

The platform plays the role AMT plays in the paper: requesters post task bins
with a per-bin reward, workers arrive according to the reward-sensitive supply
model, answer the questions with cognitive-load-degraded accuracy, and the
platform keeps the books (spend, postings, in-time versus overtime responses).

The simulation is intentionally requester-centric: time advances per posting
(arrival times are sampled from the Poisson supply process) rather than via a
global event queue, which is sufficient for every behaviour the paper relies
on — confidence per cardinality, in-time completion versus the response-time
threshold, and total spend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence


from repro.core.bins import TaskBin
from repro.core.errors import SimulationError
from repro.crowd.accuracy import CognitiveLoadAccuracyModel
from repro.crowd.arrival import RewardSensitiveArrivalModel
from repro.crowd.responses import BinResponse
from repro.crowd.worker import WorkerPool
from repro.utils.rng import RandomSource, ensure_rng


@dataclass
class PostedBin:
    """Book-keeping record of one bin posting.

    Attributes
    ----------
    posting_id:
        Platform-assigned identifier.
    task_bin:
        The posted bin (cardinality, confidence estimate, reward).
    task_ids:
        The atomic tasks contained in the posting.
    assignments:
        Number of workers requested for this posting.
    responses:
        Collected worker responses (in-time and overtime).
    cost:
        Reward paid out: one bin cost per in-time response (workers who miss
        the deadline are not paid, as is standard practice for expired HITs).
    """

    posting_id: int
    task_bin: TaskBin
    task_ids: Sequence[int]
    assignments: int
    responses: List[BinResponse] = field(default_factory=list)
    cost: float = 0.0

    @property
    def in_time_responses(self) -> List[BinResponse]:
        """Responses that arrived within the response-time threshold."""
        return [r for r in self.responses if r.in_time]


class CrowdPlatform:
    """Requester-facing facade of the simulated crowd marketplace.

    Parameters
    ----------
    worker_pool:
        Population of simulated workers; defaults to a 200-worker pool with
        mean skill 0.9 (the Jelly regime).
    accuracy_model:
        Cognitive-load accuracy decay; defaults mirror the Jelly dataset.
    arrival_model:
        Reward-sensitive worker supply.
    response_time_minutes:
        Platform-wide response-time threshold after which a posting's missing
        answers are considered overtime (40 minutes for Jelly, 30 for SMIC).
    seed:
        Seed or generator driving arrival-time draws.
    """

    def __init__(
        self,
        worker_pool: Optional[WorkerPool] = None,
        accuracy_model: Optional[CognitiveLoadAccuracyModel] = None,
        arrival_model: Optional[RewardSensitiveArrivalModel] = None,
        response_time_minutes: float = 40.0,
        seed: RandomSource = None,
    ) -> None:
        if response_time_minutes <= 0:
            raise SimulationError(
                f"response_time_minutes must be positive; got {response_time_minutes}"
            )
        self._rng = ensure_rng(seed)
        self.worker_pool = worker_pool or WorkerPool(seed=self._rng)
        self.accuracy_model = accuracy_model or CognitiveLoadAccuracyModel()
        self.arrival_model = arrival_model or RewardSensitiveArrivalModel()
        self.response_time_minutes = response_time_minutes
        self._postings: List[PostedBin] = []

    # -- posting ------------------------------------------------------------------

    def post_bin(
        self,
        task_bin: TaskBin,
        truths: Mapping[int, bool],
        assignments: int = 1,
    ) -> PostedBin:
        """Post one task bin and simulate the workers answering it.

        Parameters
        ----------
        task_bin:
            The bin to post; its cost is the reward offered per assignment.
        truths:
            Ground-truth label per atomic task id placed in the bin.  At most
            ``task_bin.cardinality`` tasks are allowed.
        assignments:
            Number of workers requested (the paper issues 10 assignments per
            probe bin in the motivation experiments).

        Returns
        -------
        PostedBin
            The posting record including all responses and the spend.
        """
        if assignments < 1:
            raise SimulationError(f"assignments must be at least 1; got {assignments}")
        if len(truths) == 0:
            raise SimulationError("a posting must contain at least one atomic task")
        if len(truths) > task_bin.cardinality:
            raise SimulationError(
                f"{len(truths)} tasks exceed the bin cardinality {task_bin.cardinality}"
            )

        posting = PostedBin(
            posting_id=len(self._postings),
            task_bin=task_bin,
            task_ids=list(truths),
            assignments=assignments,
        )

        rate = self.arrival_model.arrival_rate(task_bin.cost, task_bin.cardinality)
        answer_minutes = self.arrival_model.minutes_per_bin(task_bin.cardinality)
        arrival_time = 0.0
        for _ in range(assignments):
            # Poisson process: inter-arrival times are exponential with the
            # reward-dependent rate.
            arrival_time += float(self._rng.exponential(1.0 / rate))
            completed_at = arrival_time + answer_minutes
            in_time = completed_at <= self.response_time_minutes
            worker = self.worker_pool.sample_worker()
            answers = worker.answer_bin(task_bin, truths, self.accuracy_model)
            posting.responses.append(
                BinResponse(
                    posting_id=posting.posting_id,
                    worker_id=worker.worker_id,
                    cardinality=task_bin.cardinality,
                    answers=answers,
                    completed_at_minutes=completed_at,
                    in_time=in_time,
                )
            )
            if in_time:
                posting.cost += task_bin.cost

        self._postings.append(posting)
        return posting

    # -- accounting ----------------------------------------------------------------

    @property
    def postings(self) -> List[PostedBin]:
        """All postings made so far, in posting order."""
        return list(self._postings)

    @property
    def total_spend(self) -> float:
        """Total reward paid out across all postings."""
        return sum(posting.cost for posting in self._postings)

    @property
    def total_postings(self) -> int:
        """Number of bins posted so far."""
        return len(self._postings)

    def all_responses(self) -> List[BinResponse]:
        """Every response collected so far (in-time and overtime)."""
        return [r for posting in self._postings for r in posting.responses]

    def reset(self) -> None:
        """Forget all postings and spend (the worker pool is kept)."""
        self._postings = []
