"""Quality-drift monitoring for long-running crowdsourcing jobs.

Section 3.1 of the paper notes that real marketplaces "use a set of different
task bins as real-time probes to monitor the quality of the current work flow"
and that the bin parameters are re-estimated "regularly".  A decomposition plan
computed from stale confidences silently loses its reliability guarantee when
the worker population drifts (new workers, fatigue, adversarial behaviour).

:class:`QualityMonitor` closes that loop for long-running jobs:

* production answers with known ground truth (the interleaved probe questions)
  are recorded per bin cardinality in a sliding window,
* the observed accuracy is compared against the confidence the current bin
  menu assumes,
* when the shortfall exceeds a configurable tolerance for enough observations,
  the monitor flags the cardinality as drifted and can produce a *corrected*
  bin menu, which the requester feeds back into the decomposer for the
  remaining tasks.

The monitor is deliberately platform-agnostic: it consumes plain observations
(`record(cardinality, correct)`), so it works against the simulator in this
repository and against a real marketplace's probe results alike.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import SimulationError


@dataclass(frozen=True)
class DriftReport:
    """Drift assessment for one bin cardinality.

    Attributes
    ----------
    cardinality:
        The bin cardinality being monitored.
    assumed_confidence:
        The confidence the current menu assumes for this cardinality.
    observed_accuracy:
        Accuracy measured over the sliding window (``None`` when there are not
        yet enough observations).
    observations:
        Number of probe answers in the window.
    drifted:
        Whether the observed accuracy escapes the monitor's tolerance band
        around the assumed confidence — in *either* direction.  Downward
        drift voids the reliability guarantee; upward drift means the menu
        underestimates the workers and every plan overpays.
    """

    cardinality: int
    assumed_confidence: float
    observed_accuracy: Optional[float]
    observations: int
    drifted: bool

    @property
    def shortfall(self) -> float:
        """Signed gap ``assumed - observed``.

        Positive when workers perform *worse* than the menu assumes (the
        guarantee-voiding direction), negative when they perform better
        (the overpaying direction), ``0.0`` with too few observations.
        """
        if self.observed_accuracy is None:
            return 0.0
        return self.assumed_confidence - self.observed_accuracy


class QualityMonitor:
    """Sliding-window monitor of per-cardinality worker accuracy.

    Parameters
    ----------
    bins:
        The bin menu the running decomposition plan was computed from.
    window:
        Number of most recent probe answers kept per cardinality.
    min_observations:
        Minimum number of answers before a cardinality can be flagged.
    tolerance:
        Allowed shortfall between assumed confidence and observed accuracy
        before the cardinality counts as drifted (absolute probability).
        This bounds the *downward* direction (observed below assumed).
    tolerance_above:
        Allowed excess of observed accuracy over the assumed confidence
        before the cardinality counts as drifted upward.  Defaults to
        ``tolerance`` (a symmetric band); marketplaces that tolerate
        overpaying longer than they tolerate a void guarantee pass a wider
        value here.
    """

    def __init__(
        self,
        bins: TaskBinSet,
        window: int = 200,
        min_observations: int = 30,
        tolerance: float = 0.05,
        tolerance_above: Optional[float] = None,
    ) -> None:
        if window < 1:
            raise SimulationError(f"window must be at least 1; got {window}")
        if min_observations < 1:
            raise SimulationError(
                f"min_observations must be at least 1; got {min_observations}"
            )
        if min_observations > window:
            raise SimulationError("min_observations cannot exceed the window size")
        if not 0.0 < tolerance < 1.0:
            raise SimulationError(
                f"tolerance must lie strictly between 0 and 1; got {tolerance}"
            )
        if tolerance_above is None:
            tolerance_above = tolerance
        elif not 0.0 < tolerance_above < 1.0:
            raise SimulationError(
                "tolerance_above must lie strictly between 0 and 1; "
                f"got {tolerance_above}"
            )
        self.bins = bins
        self.window = window
        self.min_observations = min_observations
        self.tolerance = tolerance
        self.tolerance_above = tolerance_above
        self._observations: Dict[int, Deque[bool]] = {
            task_bin.cardinality: deque(maxlen=window) for task_bin in bins
        }

    # -- data intake -----------------------------------------------------------------

    def record(self, cardinality: int, correct: bool) -> None:
        """Record one probe answer for a bin of the given cardinality."""
        if cardinality not in self._observations:
            raise SimulationError(
                f"the monitored menu has no bin of cardinality {cardinality}"
            )
        self._observations[cardinality].append(bool(correct))

    def record_many(self, observations: Iterable[Tuple[int, bool]]) -> None:
        """Record a batch of ``(cardinality, correct)`` probe answers."""
        for cardinality, correct in observations:
            self.record(cardinality, correct)

    # -- assessment -------------------------------------------------------------------

    def observed_accuracy(self, cardinality: int) -> Optional[float]:
        """Accuracy over the window for one cardinality (``None`` if too few)."""
        answers = self._observations.get(cardinality)
        if answers is None:
            raise SimulationError(
                f"the monitored menu has no bin of cardinality {cardinality}"
            )
        if len(answers) < self.min_observations:
            return None
        return sum(answers) / len(answers)

    def report(self, cardinality: int) -> DriftReport:
        """Drift assessment for one cardinality (two-sided)."""
        assumed = self.bins[cardinality].confidence
        observed = self.observed_accuracy(cardinality)
        drifted = observed is not None and (
            observed < assumed - self.tolerance
            or observed > assumed + self.tolerance_above
        )
        return DriftReport(
            cardinality=cardinality,
            assumed_confidence=assumed,
            observed_accuracy=observed,
            observations=len(self._observations[cardinality]),
            drifted=drifted,
        )

    def reports(self) -> List[DriftReport]:
        """Drift assessments for every cardinality in the menu."""
        return [self.report(cardinality) for cardinality in self.bins.cardinalities]

    def drifted_cardinalities(self) -> List[int]:
        """Cardinalities whose observed accuracy escaped the tolerance band."""
        return [report.cardinality for report in self.reports() if report.drifted]

    @property
    def needs_recalibration(self) -> bool:
        """Whether any monitored cardinality has drifted."""
        return bool(self.drifted_cardinalities())

    # -- remediation --------------------------------------------------------------------

    def corrected_bin_set(self, name: Optional[str] = None) -> TaskBinSet:
        """Return a menu whose confidences reflect the observed accuracies.

        Cardinalities with enough observations take their measured accuracy
        (clamped away from the degenerate endpoints); the rest keep their
        assumed confidence.  Feeding the corrected menu back into a solver
        restores the reliability guarantee for the remaining tasks.

        The corrected menu carries the monitored menu's calibration epoch
        plus one, so its fingerprint — and therefore every OPQ cache key —
        differs from the ancestor's even when the observed accuracies match
        the assumed confidences bit-for-bit.
        """
        corrected = []
        for task_bin in self.bins:
            observed = self.observed_accuracy(task_bin.cardinality)
            confidence = task_bin.confidence if observed is None else observed
            confidence = min(0.999, max(1e-6, confidence))
            corrected.append(TaskBin(task_bin.cardinality, confidence, task_bin.cost))
        return self.bins.next_epoch(
            corrected, name=name or f"{self.bins.name}-recalibrated"
        )
