"""Simulated crowdsourcing platform.

The paper's input parameters — the per-cardinality confidence ``r_l`` and cost
``c_l`` of task bins — were measured on Amazon Mechanical Turk.  This package
replaces the live platform with a discrete-event simulation that exposes the
same observable behaviour:

* workers with heterogeneous skill whose per-question accuracy decays with bin
  cardinality (cognitive load, :mod:`repro.crowd.accuracy`),
* a worker supply whose arrival rate depends on the offered reward, so cheap
  bins of large cardinality fail to finish within the response-time threshold
  (:mod:`repro.crowd.arrival`),
* a platform that posts bins, collects answers and accounts for spend
  (:mod:`repro.crowd.platform`),
* probe-based calibration that re-derives ``(l, r_l, c_l)`` menus exactly the
  way the paper describes (testing bins with known ground truth + counting,
  :mod:`repro.crowd.calibration`), and
* end-to-end execution of a decomposition plan measuring the *achieved*
  reliability, so the planned reliability guarantees can be validated
  empirically (:mod:`repro.crowd.execution`).
"""

from repro.crowd.accuracy import CognitiveLoadAccuracyModel
from repro.crowd.arrival import RewardSensitiveArrivalModel
from repro.crowd.calibration import CalibrationResult, ProbeCalibrator
from repro.crowd.execution import ExecutionReport, PlanExecutor
from repro.crowd.monitoring import DriftReport, QualityMonitor
from repro.crowd.platform import CrowdPlatform, PostedBin
from repro.crowd.presets import jelly_platform, smic_platform
from repro.crowd.responses import AnswerAggregator, BinResponse, WorkerAnswer
from repro.crowd.worker import SimulatedWorker, WorkerPool

__all__ = [
    "jelly_platform",
    "smic_platform",
    "CognitiveLoadAccuracyModel",
    "RewardSensitiveArrivalModel",
    "SimulatedWorker",
    "WorkerPool",
    "CrowdPlatform",
    "PostedBin",
    "WorkerAnswer",
    "BinResponse",
    "AnswerAggregator",
    "ProbeCalibrator",
    "CalibrationResult",
    "PlanExecutor",
    "ExecutionReport",
    "QualityMonitor",
    "DriftReport",
]
