"""Probe-based calibration of task bin parameters.

Section 3.1 of the paper explains how the ``(l, r_l, c_l)`` menu is obtained in
practice: "when a batch of atomic tasks arrives, one can regularly issue
testing task bins with different cardinalities.  The atomic tasks in testing
task bins are the same as the real tasks, yet the ground truth is known to
calculate the confidence. [...] the cost for each cardinality is calculated as
the minimum cost that meets the response time requirement.  After obtaining the
answers from the testing task bins, the confidence can be obtained by
regression or counting methods."

:class:`ProbeCalibrator` implements exactly that procedure against the
simulated platform: it posts probe bins of every cardinality at every candidate
price, counts the fraction of correct answers among in-time responses, picks
the cheapest price whose postings finish in time, and returns both the raw
measurements (used to regenerate Figure 3) and a ready-to-use
:class:`~repro.core.bins.TaskBinSet`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import CalibrationError
from repro.crowd.platform import CrowdPlatform
from repro.utils.rng import RandomSource, ensure_rng


@dataclass
class ProbeMeasurement:
    """Raw calibration measurement for one (cardinality, cost) pair.

    Attributes
    ----------
    cardinality:
        Probe bin cardinality.
    cost:
        Reward offered per probe bin.
    confidence:
        Fraction of correct answers among in-time responses (``None`` when no
        in-time responses were collected at all).
    in_time_fraction:
        Fraction of requested assignments answered within the threshold.
    answers_collected:
        Number of individual question answers that arrived in time.
    """

    cardinality: int
    cost: float
    confidence: Optional[float]
    in_time_fraction: float
    answers_collected: int

    @property
    def usable(self) -> bool:
        """Whether this price/cardinality combination completed in time.

        The paper disqualifies a bin configuration once "no enough answers are
        obtained" within the threshold; we require at least half of the
        requested assignments to have finished.
        """
        return self.confidence is not None and self.in_time_fraction >= 0.5


@dataclass
class CalibrationResult:
    """Outcome of a calibration run.

    Attributes
    ----------
    measurements:
        Every probe measurement, keyed by ``(cardinality, cost)``.
    selected:
        For each cardinality, the cheapest usable measurement.
    probe_spend:
        Total reward paid for the probe bins.
    """

    measurements: Dict[Tuple[int, float], ProbeMeasurement]
    selected: Dict[int, ProbeMeasurement]
    probe_spend: float

    def confidence_series(self, cost: float) -> Dict[int, float]:
        """Measured confidence per cardinality for one price (Figure 3 series)."""
        series = {}
        for (cardinality, c), measurement in sorted(self.measurements.items()):
            if c == cost and measurement.confidence is not None:
                series[cardinality] = measurement.confidence
        return series

    def bin_set(self, name: str = "calibrated") -> TaskBinSet:
        """Build the task bin menu from the selected measurements."""
        if not self.selected:
            raise CalibrationError("no cardinality produced a usable measurement")
        bins = []
        for cardinality, measurement in sorted(self.selected.items()):
            confidence = min(0.999, max(1e-6, measurement.confidence or 0.0))
            bins.append(TaskBin(cardinality, confidence, measurement.cost))
        return TaskBinSet(bins, name=name)


class ProbeCalibrator:
    """Estimate the ``(l, r_l, c_l)`` menu by posting probe bins.

    Parameters
    ----------
    platform:
        The simulated crowd platform to probe.
    candidate_costs:
        Reward levels to test per bin, ascending (e.g. the paper's
        ``[0.05, 0.08, 0.10]`` for Jelly).
    assignments_per_probe:
        Workers requested per probe bin (the paper uses 10).
    probes_per_cardinality:
        Number of distinct probe bins posted per (cardinality, cost) pair;
        more probes sharpen the confidence estimate at higher probe spend.
    seed:
        Seed for generating the probe questions' ground truth.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        candidate_costs: Sequence[float],
        assignments_per_probe: int = 10,
        probes_per_cardinality: int = 3,
        seed: RandomSource = None,
    ) -> None:
        if not candidate_costs:
            raise CalibrationError("candidate_costs must not be empty")
        if assignments_per_probe < 1:
            raise CalibrationError("assignments_per_probe must be at least 1")
        if probes_per_cardinality < 1:
            raise CalibrationError("probes_per_cardinality must be at least 1")
        self.platform = platform
        self.candidate_costs = sorted(candidate_costs)
        self.assignments_per_probe = assignments_per_probe
        self.probes_per_cardinality = probes_per_cardinality
        self._rng = ensure_rng(seed)
        # Probe tasks use negative ids to avoid colliding with real tasks.
        # The counter lives on the instance so repeated calibrate() runs
        # against the same platform never reuse an id.
        self._next_task_id = -1

    def calibrate(self, cardinalities: Sequence[int]) -> CalibrationResult:
        """Probe every cardinality at every candidate price.

        Parameters
        ----------
        cardinalities:
            The bin cardinalities to measure, e.g. ``range(1, 21)``.

        Returns
        -------
        CalibrationResult
            Raw measurements plus the per-cardinality cheapest usable choice.
        """
        if not cardinalities:
            raise CalibrationError("cardinalities must not be empty")
        measurements: Dict[Tuple[int, float], ProbeMeasurement] = {}
        selected: Dict[int, ProbeMeasurement] = {}
        spend_before = self.platform.total_spend

        for cardinality in cardinalities:
            for cost in self.candidate_costs:
                probe_bin = TaskBin(cardinality, 0.5, cost)
                correct = 0
                answered = 0
                in_time_responses = 0
                requested = 0
                for _ in range(self.probes_per_cardinality):
                    truths = {}
                    for _ in range(cardinality):
                        truths[self._next_task_id] = bool(self._rng.random() < 0.5)
                        self._next_task_id -= 1
                    posting = self.platform.post_bin(
                        probe_bin, truths, assignments=self.assignments_per_probe
                    )
                    requested += self.assignments_per_probe
                    for response in posting.in_time_responses:
                        in_time_responses += 1
                        for task_id, answer in response.answers.items():
                            answered += 1
                            if answer == truths[task_id]:
                                correct += 1
                confidence = correct / answered if answered else None
                measurement = ProbeMeasurement(
                    cardinality=cardinality,
                    cost=cost,
                    confidence=confidence,
                    in_time_fraction=in_time_responses / requested if requested else 0.0,
                    answers_collected=answered,
                )
                measurements[(cardinality, cost)] = measurement
                if cardinality not in selected and measurement.usable:
                    selected[cardinality] = measurement

        return CalibrationResult(
            measurements=measurements,
            selected=selected,
            probe_spend=self.platform.total_spend - spend_before,
        )
