"""Worker supply model: how fast assignments get picked up at a given reward.

Observation (3) of Section 2: the *quantity* of workers is notably sensitive to
the offered reward — at $0.05 per bin only cardinalities up to 14 completed
within the 40-minute threshold, versus 30 at $0.10.  The model here captures
that with a Poisson worker-arrival process whose rate grows with the offered
per-bin reward,

    rate_per_minute = base_rate * (cost_per_bin / reference_cost) ** elasticity,

while the time a worker needs to answer the bin grows linearly with its
cardinality.  A posting therefore completes within the response-time threshold
only when the queueing delay of its requested assignments plus the answering
time fits inside the threshold — cheap bins support small cardinalities only,
expensive bins support large ones, which is exactly the "overtime" pattern of
Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import require_positive


@dataclass(frozen=True)
class RewardSensitiveArrivalModel:
    """Poisson arrival of workers with reward-elastic rates.

    Attributes
    ----------
    base_rate_per_minute:
        Worker arrival rate (per minute) at the reference per-bin reward.
    reference_cost:
        Per-bin reward (USD) that yields the base rate.
    elasticity:
        Exponent of the rate/reward relationship; larger values make supply
        more strongly reward-sensitive.
    minutes_per_question:
        Expected answering time per atomic task in a bin.
    """

    base_rate_per_minute: float = 0.4
    reference_cost: float = 0.05
    elasticity: float = 1.4
    minutes_per_question: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.base_rate_per_minute, "base_rate_per_minute")
        require_positive(self.reference_cost, "reference_cost")
        require_positive(self.elasticity, "elasticity")
        require_positive(self.minutes_per_question, "minutes_per_question")

    def minutes_per_bin(self, cardinality: int) -> float:
        """Expected time a worker spends answering a bin of ``cardinality``."""
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1; got {cardinality}")
        return self.minutes_per_question * cardinality

    def arrival_rate(self, cost_per_bin: float, cardinality: int = 1) -> float:
        """Worker arrival rate (per minute) for a bin posting.

        The ``cardinality`` argument is accepted for interface symmetry; the
        rate itself depends on the reward only — the cardinality enters through
        the answering time instead.
        """
        require_positive(cost_per_bin, "cost_per_bin")
        ratio = cost_per_bin / self.reference_cost
        return self.base_rate_per_minute * ratio**self.elasticity

    def expected_completion_minutes(
        self, cost_per_bin: float, cardinality: int, assignments: int = 1
    ) -> float:
        """Expected time until ``assignments`` workers have completed the bin.

        With Poisson arrivals of rate ``lambda``, the expected time until the
        k-th arrival is ``k / lambda``; each accepted worker then spends the
        answering time on top.
        """
        if assignments < 1:
            raise ValueError(f"assignments must be at least 1; got {assignments}")
        rate = self.arrival_rate(cost_per_bin, cardinality)
        return assignments / rate + self.minutes_per_bin(cardinality)

    def completes_in_time(
        self,
        cost_per_bin: float,
        cardinality: int,
        assignments: int,
        time_threshold_minutes: float,
    ) -> bool:
        """Whether a posting is expected to finish within the response threshold."""
        require_positive(time_threshold_minutes, "time_threshold_minutes")
        expected = self.expected_completion_minutes(
            cost_per_bin, cardinality, assignments
        )
        return expected <= time_threshold_minutes
