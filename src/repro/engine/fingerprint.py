"""Cache keys for the batch planning engine.

The engine memoises optimal-priority-queue construction (Algorithm 2) across
problem instances.  A queue is fully determined by the task bin set and the
reliability threshold it was built for, so the cache key combines the bin
set's content fingerprint with the bit-exact threshold.  Key helpers live in
one module so every cache layer (in-process, per-worker, a future
cross-process store) agrees on what "the same queue" means.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.bins import TaskBinSet
from repro.core.problem import SladeProblem
from repro.utils.hashing import float_token

#: A cache key: (bin-set content digest, bit-exact threshold token).
OPQKey = Tuple[str, str]


def opq_key(bins: TaskBinSet, threshold: float) -> OPQKey:
    """The cache key under which the OPQ for ``(bins, threshold)`` is stored."""
    return (bins.fingerprint, float_token(threshold))


def problem_key(problem: SladeProblem) -> str:
    """Content fingerprint of a whole problem instance.

    Exposed for batch statistics and deduplication; identical keys mean a
    deterministic solver would produce identical plans.
    """
    return problem.fingerprint
