"""The plan cache: share OPQ construction across problem instances.

Algorithm 2 (optimal priority queue construction) dominates the cost of
solving a SLADE instance whenever ``n`` is not enormous — building the queue
for the SMIC menu at ``t = 0.97`` is two orders of magnitude slower than
running Algorithm 3 with the queue in hand.  Experiment sweeps and production
batches, however, solve many instances that share one ``(bin set, threshold)``
pair.  :class:`PlanCache` memoises queue construction under the stable keys of
:mod:`repro.engine.fingerprint` so that work happens once per pair.

The cache is thread-safe (the batch planner's thread executor shares one
instance) and LRU-bounded when ``max_entries`` is set.  For process-based
parallelism the cache cannot be shared directly; :meth:`export_entries` /
:meth:`absorb` ship a pre-warmed snapshot to the workers instead.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.algorithms.opq import OptimalPriorityQueue, build_optimal_priority_queue
from repro.core.bins import TaskBinSet
from repro.engine.fingerprint import OPQKey, opq_key
from repro.utils.timing import Stopwatch


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters.

    Attributes
    ----------
    hits:
        Queue requests answered from the cache.
    misses:
        Queue requests that triggered an Algorithm 2 run.
    entries:
        Queues currently stored.
    build_seconds:
        Total wall-clock time spent constructing queues on misses.
    """

    hits: int
    misses: int
    entries: int
    build_seconds: float

    @property
    def requests(self) -> int:
        """Total queue requests served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without construction (0.0 when idle)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an ``earlier`` one.

        The batch planner brackets each batch with two snapshots so its
        statistics describe that batch alone even when the cache is reused.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
            build_seconds=self.build_seconds - earlier.build_seconds,
        )


class PlanCache:
    """Memoises optimal priority queues by ``(bin set, threshold)``.

    Parameters
    ----------
    max_entries:
        Optional LRU bound on the number of stored queues.  ``None`` (the
        default) keeps every queue, which is appropriate for sweeps whose
        distinct ``(bins, threshold)`` pairs number in the dozens.

    The bound method :meth:`queue_for` matches the
    :data:`~repro.algorithms.opq.QueueFactory` signature, so a cache can be
    injected directly into :class:`~repro.algorithms.opq.OPQSolver` and
    :class:`~repro.algorithms.opq_extended.OPQExtendedSolver` via their
    ``queue_factory`` parameter.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive; got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[OPQKey, OptimalPriorityQueue]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._build_seconds = 0.0

    # -- the hot path ----------------------------------------------------------

    def queue_for(self, bins: TaskBinSet, threshold: float) -> OptimalPriorityQueue:
        """Return the OPQ for ``(bins, threshold)``, building it on first use.

        Matches the :data:`~repro.algorithms.opq.QueueFactory` signature so it
        can be passed wherever a queue supplier is expected.
        """
        key = opq_key(bins, threshold)
        with self._lock:
            queue = self._entries.get(key)
            if queue is not None:
                self._hits += 1
                self._entries.move_to_end(key)
                return queue
            # Build under the lock: construction is pure Python (GIL-bound),
            # so releasing the lock would only let threads duplicate work.
            self._misses += 1
            watch = Stopwatch()
            with watch:
                queue = build_optimal_priority_queue(bins, threshold)
            self._build_seconds += watch.elapsed
            self._entries[key] = queue
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
            return queue

    def warm(self, bins: TaskBinSet, thresholds: Iterable[float]) -> None:
        """Pre-build the queues for every threshold in ``thresholds``.

        Used by the batch planner before dispatching to worker processes, so
        each expensive construction happens exactly once in the parent.
        """
        for threshold in thresholds:
            self.queue_for(bins, threshold)

    # -- bookkeeping -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: OPQKey) -> bool:
        return key in self._entries

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._entries),
                build_seconds=self._build_seconds,
            )

    def clear(self) -> None:
        """Drop every stored queue (counters are kept)."""
        with self._lock:
            self._entries.clear()

    # -- process-parallel support ----------------------------------------------

    def export_entries(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        """A picklable snapshot of the stored queues for worker processes."""
        with self._lock:
            return dict(self._entries)

    def absorb(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        """Adopt queues exported by another cache (counted as neither hit nor miss)."""
        with self._lock:
            for key, queue in entries.items():
                self._entries.setdefault(key, queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats
        return (
            f"PlanCache(entries={snapshot.entries}, hits={snapshot.hits}, "
            f"misses={snapshot.misses})"
        )
