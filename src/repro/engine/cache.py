"""The plan cache: share OPQ construction across problem instances.

Algorithm 2 (optimal priority queue construction) dominates the cost of
solving a SLADE instance whenever ``n`` is not enormous — building the queue
for the SMIC menu at ``t = 0.97`` is two orders of magnitude slower than
running Algorithm 3 with the queue in hand.  Experiment sweeps and production
batches, however, solve many instances that share one ``(bin set, threshold)``
pair.  :class:`PlanCache` memoises queue construction under the stable keys of
:mod:`repro.engine.fingerprint` so that work happens once per pair.

The cache owns the *policy* — hit/miss counters, build timing, thread safety —
and delegates *storage* to a :class:`~repro.engine.backends.base.CacheBackend`:
the in-process :class:`~repro.engine.backends.memory.MemoryBackend` (the
default, LRU-bounded when ``max_entries`` is set) or the persistent
:class:`~repro.engine.backends.sqlite.SQLiteBackend`, which survives restarts
and is shared between processes.  The cache is thread-safe (the batch
planner's thread executor shares one instance).  For process-based
parallelism the in-memory backend cannot be shared directly;
:meth:`export_entries` / :meth:`absorb` ship a pre-warmed snapshot to the
workers instead.

Concurrency is **per key**, not global: threads requesting *distinct*
fingerprints proceed in parallel (builds are GIL-bound, but network-backed
storage round trips genuinely overlap), while threads missing on the *same*
fingerprint coalesce — one leader performs the single backend lookup and the
single Algorithm 2 build, and every follower waits on the in-flight entry
and shares the resulting queue object (counted as a hit plus
``cache.coalesced_waits``).  So a thread executor over a
:class:`~repro.engine.backends.remote.RemoteBackend` or
:class:`~repro.engine.backends.sharded.ShardedBackend` never serialises
behind one slow (timeout-bounded) round trip for an unrelated key, and a
thundering herd on one fingerprint issues exactly one GET and one build.
Backends advertising ``concurrent_safe = True`` are called without extra
locking; anything else is serialised on an internal storage lock (the
pre-existing contract for third-party backends).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, TypeVar

from repro.algorithms.opq import (
    Combination,
    OptimalPriorityQueue,
    queue_is_complete,
)
from repro.algorithms.opq_vec import build_queue, resolve_core
from repro.core.bins import TaskBinSet
from repro.engine.backends import CacheBackend, MemoryBackend
from repro.engine.fingerprint import OPQKey, opq_key
from repro.engine.telemetry import Telemetry
from repro.utils.timing import Stopwatch

_T = TypeVar("_T")

#: Distinguishes "backend has no telemetry attribute" from "attribute is None".
_UNSET = object()


class _InflightBuild:
    """One fingerprint's in-flight lookup/build, shared by coalescing waiters.

    The leader resolves :attr:`queue` (hit or fresh build) before setting
    :attr:`done`; followers wait and adopt the object without touching the
    backend.  When the leader fails, :attr:`queue` stays ``None`` and each
    follower retries as a new leader (matching the pre-coalescing behaviour,
    where every thread attempted the build independently).
    """

    __slots__ = ("done", "queue")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.queue: Optional[OptimalPriorityQueue] = None


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of a cache's counters.

    Attributes
    ----------
    hits:
        Queue requests answered from the cache.
    misses:
        Queue requests that triggered an Algorithm 2 run.
    entries:
        Queues currently stored.
    build_seconds:
        Total wall-clock time spent constructing queues on misses.
    evictions:
        Entries dropped by the backend's LRU bound (0 for unbounded stores).
    partial_hits:
        ``peek`` calls answered with an *incomplete* (truncated) frontier.
        The caller typically refines and publishes afterwards, so counting
        these as plain hits double-counted the request once the publish
        landed as a miss; they get their own counter instead.
    curve_seeds:
        Cold builds warm-started from a nearby threshold's cached frontier
        on the same bin menu (see :meth:`PlanCache.seed_for`).
    """

    hits: int
    misses: int
    entries: int
    build_seconds: float
    evictions: int = 0
    partial_hits: int = 0
    curve_seeds: int = 0

    @property
    def requests(self) -> int:
        """Total queue requests served (partial peeks are counted at publish)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered without construction (0.0 when idle)."""
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The delta between this snapshot and an ``earlier`` one.

        The batch planner brackets each batch with two snapshots so its
        statistics describe that batch alone even when the cache is reused.
        """
        return CacheStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            entries=self.entries,
            build_seconds=self.build_seconds - earlier.build_seconds,
            evictions=self.evictions - earlier.evictions,
            partial_hits=self.partial_hits - earlier.partial_hits,
            curve_seeds=self.curve_seeds - earlier.curve_seeds,
        )


class PlanCache:
    """Memoises optimal priority queues by ``(bin set, threshold)``.

    Parameters
    ----------
    max_entries:
        Optional LRU bound on the number of stored queues.  ``None`` (the
        default) keeps every queue, which is appropriate for sweeps whose
        distinct ``(bins, threshold)`` pairs number in the dozens.  Only
        valid with the default backend; bounded custom backends configure
        their own limit.
    backend:
        The storage to delegate to; a fresh unbounded
        :class:`~repro.engine.backends.memory.MemoryBackend` when omitted.
        Pass a :class:`~repro.engine.backends.sqlite.SQLiteBackend` to share
        queues across processes and restarts.
    telemetry:
        Optional :class:`~repro.engine.telemetry.Telemetry` registry; when
        set, the cache reports ``cache.hits`` / ``cache.misses`` /
        ``cache.partial_hits`` / ``cache.curve_seeds`` /
        ``cache.evictions`` counters and ``cache.build_seconds`` alongside
        its own :attr:`stats` (the service layer shares one registry across
        the cache, planner, and transport so ``/metrics`` is one snapshot).
    opq_core:
        Algorithm 2 core for cold builds: ``"auto"`` (numpy when available,
        the default), ``"python"``, or ``"numpy"``; ``None`` defers to the
        ``SLADE_OPQ_CORE`` environment variable, then ``auto``.  See
        :func:`repro.algorithms.opq_vec.resolve_core`.

    The bound method :meth:`queue_for` matches the
    :data:`~repro.algorithms.opq.QueueFactory` signature, so a cache can be
    injected directly into :class:`~repro.algorithms.opq.OPQSolver` and
    :class:`~repro.algorithms.opq_extended.OPQExtendedSolver` via their
    ``queue_factory`` parameter.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        backend: Optional[CacheBackend] = None,
        telemetry: Optional[Telemetry] = None,
        opq_core: Optional[str] = None,
    ) -> None:
        if opq_core is not None:
            resolve_core(opq_core)  # fail fast on an unknown core name
        self._opq_core = opq_core
        if backend is None:
            backend = MemoryBackend(max_entries=max_entries)
        elif max_entries is not None:
            raise ValueError(
                "max_entries and backend are mutually exclusive; bound the "
                "backend itself instead"
            )
        self.backend = backend
        self.max_entries = getattr(backend, "max_entries", max_entries)
        self.telemetry = telemetry
        # Backends that report per-tier counters (remote, tiered) expose a
        # ``telemetry`` attribute; adopt this cache's registry when the
        # backend was built without one, so /metrics is one snapshot.
        if telemetry is not None and getattr(backend, "telemetry", _UNSET) is None:
            backend.telemetry = telemetry
        #: Guards the counters and the in-flight build table (never held
        #: across a backend call or a build).
        self._lock = threading.Lock()
        #: Serialises storage calls for backends that are not internally
        #: thread-safe; bypassed when the backend declares
        #: ``concurrent_safe = True`` (memory, sqlite, remote, sharded,
        #: tiered-over-safe-tiers all do).
        self._storage_lock = threading.Lock()
        self._backend_concurrent = bool(getattr(backend, "concurrent_safe", False))
        self._inflight: Dict[OPQKey, _InflightBuild] = {}
        self._hits = 0
        self._misses = 0
        self._partial_hits = 0
        self._curve_seeds = 0
        self._build_seconds = 0.0
        self._evictions_seen = getattr(backend, "evictions", 0)
        #: The plan curve: per bin-menu fingerprint, the thresholds whose
        #: complete frontiers this process has seen, mapped to their backend
        #: keys.  Purely an in-process index — the frontiers themselves stay
        #: in the backend, and a stale curve point (evicted entry) is
        #: dropped on the next lookup.
        self._curves: Dict[str, Dict[float, OPQKey]] = {}

    # -- the hot path ----------------------------------------------------------

    def queue_for(self, bins: TaskBinSet, threshold: float) -> OptimalPriorityQueue:
        """Return the OPQ for ``(bins, threshold)``, building it on first use.

        Matches the :data:`~repro.algorithms.opq.QueueFactory` signature so it
        can be passed wherever a queue supplier is expected.

        Concurrent callers coalesce per key: one leader performs the single
        backend lookup and (on a miss) the single Algorithm 2 build; every
        other thread waits on the in-flight entry and shares the resulting
        queue object without its own backend round trip.  Distinct keys
        never wait on each other.
        """
        key = opq_key(bins, threshold)
        while True:
            with self._lock:
                flight = self._inflight.get(key)
                if flight is None:
                    flight = _InflightBuild()
                    self._inflight[key] = flight
                    break  # this thread leads the lookup/build for `key`
            flight.done.wait()
            if flight.queue is not None:
                self._record_hit(coalesced=True)
                return flight.queue
            # The leader failed without a queue; retry as a new leader so a
            # transient error is not broadcast to every waiter.
        try:
            queue = self._guarded(lambda: self.backend.get(key))
            if queue is not None:
                flight.queue = queue
                self._register_curve_point(bins, threshold, key, queue)
                self._record_hit()
                return queue
            seed = self.seed_for(bins, threshold)
            watch = Stopwatch()
            with watch:
                queue = build_queue(
                    bins, threshold, seed=seed, core=self._opq_core
                )
            self._guarded(lambda: self.backend.put(key, queue))
            flight.queue = queue
            self._register_curve_point(bins, threshold, key, queue)
            self._record_miss(watch.elapsed, seeded=seed is not None)
            return queue
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    # -- anytime access --------------------------------------------------------

    def peek(
        self, bins: TaskBinSet, threshold: float
    ) -> Optional[OptimalPriorityQueue]:
        """Return the cached OPQ for ``(bins, threshold)`` without building.

        The anytime path: a deadline-bounded caller wants the queue *if it is
        already there* but must never pay for a cold Algorithm 2 run it cannot
        afford.  A found *complete* queue counts as a hit; an absent one
        records nothing (the caller decides whether to build, and
        :meth:`publish` accounts the build when it lands).  The returned
        queue may be *incomplete* (a truncated frontier published by an
        earlier budgeted build) — check
        :func:`~repro.algorithms.opq.queue_is_complete`.  An incomplete
        frontier is counted under ``cache.partial_hits`` instead of
        ``cache.hits``: the caller will refine and publish it, and counting
        the same request as both a hit and a (publish-time) miss skewed the
        warm-rate windows.
        """
        key = opq_key(bins, threshold)
        queue = self._guarded(lambda: self.backend.get(key))
        if queue is not None:
            if queue_is_complete(queue):
                self._register_curve_point(bins, threshold, key, queue)
                self._record_hit()
            else:
                self._record_partial_hit()
        return queue

    def publish(
        self,
        bins: TaskBinSet,
        threshold: float,
        queue: OptimalPriorityQueue,
        build_seconds: float = 0.0,
    ) -> bool:
        """Store a queue built outside the cache, refining coarse entries.

        A *complete* queue (full Pareto frontier) always lands, overwriting
        any truncated frontier a budget-starved request published earlier.  An
        *incomplete* queue only lands when nothing better is stored — it never
        downgrades a complete entry, and between two incomplete frontiers the
        larger one wins.  Returns whether the queue was stored; a stored build
        is accounted as a miss with ``build_seconds`` of construction time,
        mirroring :meth:`queue_for`'s bookkeeping.
        """
        key = opq_key(bins, threshold)

        def exchange() -> bool:
            existing = self.backend.get(key)
            if existing is not None:
                if queue_is_complete(existing) and not queue_is_complete(queue):
                    return False
                if (not queue_is_complete(queue)
                        and len(existing) >= len(queue)):
                    return False
            self.backend.put(key, queue)
            return True

        stored = self._guarded(exchange)
        if stored:
            self._register_curve_point(bins, threshold, key, queue)
            self._record_miss(build_seconds)
        return stored

    # -- cross-threshold plan-curve reuse --------------------------------------

    def seed_for(
        self, bins: TaskBinSet, threshold: float
    ) -> Optional[List[Combination]]:
        """Frontier elements of the nearest cached threshold on ``bins``'s menu.

        The paper's scalability experiments (and production sweeps) vary the
        threshold over a fixed bin menu; nearby thresholds share Pareto-
        frontier structure.  This walks the menu's *plan curve* — the
        thresholds whose complete frontiers this process has already seen —
        and returns the closest donor's elements to warm-start a cold build
        (:func:`~repro.algorithms.opq_vec.build_queue` re-validates each
        element, so donors below the requested threshold are safe too; the
        nearest donor *at or above* is preferred because its whole frontier
        is feasible here).  Returns ``None`` when the menu has no usable
        curve point; stale points (evicted entries) are dropped as they are
        discovered.
        """
        with self._lock:
            curve = dict(self._curves.get(bins.fingerprint, {}))
        if not curve:
            return None
        above = sorted(t for t in curve if t >= threshold)
        below = sorted((t for t in curve if t < threshold), reverse=True)
        # Probe without refreshing recency when the backend distinguishes
        # the two (the in-memory LRU does): an opportunistic donor read must
        # not keep the donor alive over entries requests actually asked for.
        probe = getattr(self.backend, "peek", self.backend.get)
        for donor in above + below:
            key = curve[donor]
            queue = self._guarded(lambda: probe(key))
            if queue is None:
                with self._lock:
                    menu_curve = self._curves.get(bins.fingerprint)
                    if menu_curve is not None and menu_curve.get(donor) == key:
                        del menu_curve[donor]
                continue
            elements = queue.elements()
            if elements:
                return elements
        return None

    def _register_curve_point(
        self,
        bins: TaskBinSet,
        threshold: float,
        key: OPQKey,
        queue: OptimalPriorityQueue,
    ) -> None:
        """Remember that the menu's curve has a complete frontier at ``threshold``."""
        if not queue_is_complete(queue):
            return
        with self._lock:
            self._curves.setdefault(bins.fingerprint, {})[float(threshold)] = key

    def _guarded(self, call: Callable[[], _T]) -> _T:
        """Run one backend storage call with the required serialisation."""
        if self._backend_concurrent:
            return call()
        with self._storage_lock:
            return call()

    def _record_hit(self, coalesced: bool = False) -> None:
        with self._lock:
            self._hits += 1
        if self.telemetry is not None:
            self.telemetry.increment("cache.hits")
            if coalesced:
                self.telemetry.increment("cache.coalesced_waits")

    def _record_partial_hit(self) -> None:
        with self._lock:
            self._partial_hits += 1
        if self.telemetry is not None:
            self.telemetry.increment("cache.partial_hits")

    def _record_miss(self, build_seconds: float, seeded: bool = False) -> None:
        with self._lock:
            self._misses += 1
            if seeded:
                self._curve_seeds += 1
            self._build_seconds += build_seconds
            # Attribute evictions through the monotone backend counter
            # instead of a before/after diff, which concurrent leaders on
            # other keys would corrupt.
            total_evictions = getattr(self.backend, "evictions", 0)
            evicted = total_evictions - self._evictions_seen
            self._evictions_seen = total_evictions
        if self.telemetry is not None:
            self.telemetry.increment("cache.misses")
            self.telemetry.increment("cache.build_seconds", build_seconds)
            if seeded:
                self.telemetry.increment("cache.curve_seeds")
            if evicted > 0:
                self.telemetry.increment("cache.evictions", evicted)

    def warm(self, bins: TaskBinSet, thresholds: Iterable[float]) -> None:
        """Pre-build the queues for every threshold in ``thresholds``.

        Used by the batch planner before dispatching to worker processes, so
        each expensive construction happens exactly once in the parent.
        """
        for threshold in thresholds:
            self.queue_for(bins, threshold)

    # -- bookkeeping -----------------------------------------------------------

    def __len__(self) -> int:
        return self._guarded(lambda: len(self.backend))

    def __contains__(self, key: OPQKey) -> bool:
        return self._guarded(lambda: key in self.backend)

    @property
    def persistent(self) -> bool:
        """Whether stored queues survive a process restart."""
        return bool(getattr(self.backend, "persistent", False))

    @property
    def stats(self) -> CacheStats:
        """A consistent snapshot of the cache counters."""
        with self._lock:
            hits = self._hits
            misses = self._misses
            partial_hits = self._partial_hits
            curve_seeds = self._curve_seeds
            build_seconds = self._build_seconds
            evictions = getattr(self.backend, "evictions", 0)
        # The entry count is read OUTSIDE the hot-path lock: remote/tiered
        # backends answer len() with a network STATS round trip, and a
        # /metrics scrape hitting a slow cache server must never stall
        # concurrent solves.  All backends answer len() safely without the
        # cache's serialisation (dict len is atomic, SQLite connections are
        # serialized, the remote client pools under its own lock).
        return CacheStats(
            hits=hits,
            misses=misses,
            entries=len(self.backend),
            build_seconds=build_seconds,
            evictions=evictions,
            partial_hits=partial_hits,
            curve_seeds=curve_seeds,
        )

    def backend_metrics(self) -> Dict[str, float]:
        """Point-in-time gauges the backend exposes for ``/metrics`` scrapes.

        Remote and tiered backends report tier sizes and server-side
        key/byte counts; plain stores report nothing.  Called *without* the
        cache lock — a slow cache-server STATS round trip (bounded by the
        client timeout, fail-open) must not stall concurrent solves — which
        is safe because the backends that implement ``extra_metrics`` are
        internally thread-safe for read-only probes.
        """
        probe = getattr(self.backend, "extra_metrics", None)
        if probe is None:
            return {}
        return dict(probe())

    def invalidate(
        self,
        bins: TaskBinSet,
        thresholds: Optional[Iterable[float]] = None,
    ) -> int:
        """Targeted per-key removal of a menu's cached plans.

        Drift-driven recalibration retires a menu epoch: its entries are no
        longer trustworthy, but the rest of the cache is.  This removes the
        menu's known entries key by key — the menu's in-process plan-curve
        points plus any explicitly supplied ``thresholds`` — through the
        backend's ``delete`` (both tiers of a tiered backend, all replicas
        of a sharded one), never a fleet-wide :meth:`clear`.

        The menu's plan-curve index is dropped first, so a concurrent
        :meth:`seed_for` cannot resurrect a deleted entry as a warm-start
        donor: by the time the backend deletes run, the curve no longer
        points at them.

        Returns the number of keys the backend reported actually removed
        (fail-open distributed backends may report fewer than targeted).
        """
        menu_fp = bins.fingerprint
        with self._lock:
            curve = self._curves.pop(menu_fp, {})
        candidates: Dict[OPQKey, None] = {key: None for key in curve.values()}
        if thresholds is not None:
            for threshold in thresholds:
                candidates[opq_key(bins, threshold)] = None
        delete = getattr(self.backend, "delete", None)
        if delete is None:  # third-party backend predating the delete contract
            return 0
        removed = 0
        for key in candidates:
            if self._guarded(lambda k=key: delete(k)):
                removed += 1
        if self.telemetry is not None and removed:
            self.telemetry.increment("cache.invalidations", removed)
        return removed

    def clear(self) -> None:
        """Drop every stored queue (counters are kept)."""
        self._guarded(self.backend.clear)

    def close(self) -> None:
        """Release backend resources (e.g. the SQLite connection)."""
        self._guarded(self.backend.close)

    # -- process-parallel support ----------------------------------------------

    def export_entries(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        """A picklable snapshot of the stored queues for worker processes."""
        return self._guarded(self.backend.snapshot)

    def absorb(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        """Adopt queues exported by another cache (counted as neither hit nor miss)."""
        self._guarded(lambda: self.backend.merge(entries))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        snapshot = self.stats
        return (
            f"PlanCache(entries={snapshot.entries}, hits={snapshot.hits}, "
            f"misses={snapshot.misses}, backend={type(self.backend).__name__})"
        )
