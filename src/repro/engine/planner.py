"""The batch planner: dispatch many SLADE instances through shared caches.

This is the engine's front door.  A :class:`BatchPlanner` owns a
:class:`~repro.engine.cache.PlanCache` and knows how to instantiate any
registry solver with the cache injected (for solvers that build optimal
priority queues) so that Algorithm 2 runs once per distinct
``(bin set, threshold)`` pair across the whole batch.  Three execution
strategies are supported:

``serial``
    Solve in submission order on the calling thread (the default).
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor` sharing one cache.
    Python threads only overlap during I/O, but the strategy exercises the
    exact code path a future async service frontend would use.
``process``
    A :class:`~concurrent.futures.ProcessPoolExecutor`.  The parent pre-warms
    its cache with every queue the batch needs, then ships the queues to the
    workers, so construction still happens once overall.

Whatever the strategy, the produced plans are identical to solving each
instance with a cold solver — the equivalence is pinned by
``tests/engine/test_engine_equivalence.py``.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.algorithms.base import SolveResult
from repro.algorithms.opq_extended import group_thresholds
from repro.algorithms.registry import create_solver, solver_accepts_queue_factory
from repro.core.problem import SladeProblem
from repro.engine.cache import CacheStats, PlanCache
from repro.engine.specs import BatchSpec
from repro.engine.telemetry import Telemetry
from repro.utils.timing import Stopwatch

#: Execution strategies understood by :class:`BatchPlanner`.
EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class BatchItem:
    """One solved instance within a batch."""

    index: int
    problem: SladeProblem
    solver: str
    result: SolveResult

    @property
    def total_cost(self) -> float:
        """Total incentive cost of the instance's plan."""
        return self.result.total_cost

    @property
    def elapsed_seconds(self) -> float:
        """Wall-clock time spent inside the solver for this instance."""
        return self.result.elapsed_seconds


@dataclass(frozen=True)
class BatchStats:
    """Per-batch statistics: cache behaviour and solve-time breakdown.

    Attributes
    ----------
    instances:
        Number of problems solved.
    solver:
        Registry name of the solver used.
    executor:
        Execution strategy actually used (single-instance batches always
        report ``"serial"`` regardless of the configured strategy).
    workers:
        Worker count for parallel strategies (1 for serial).
    wall_seconds:
        End-to-end batch wall-clock time.
    solve_seconds:
        Sum of per-instance solver time (>= wall time under parallelism).
    build_seconds:
        Time spent constructing optimal priority queues (cache misses only).
    cache_hits / cache_misses:
        Queue requests served from / added to the cache during this batch,
        aggregated across worker processes when applicable.
    """

    instances: int
    solver: str
    executor: str
    workers: int
    wall_seconds: float
    solve_seconds: float
    build_seconds: float
    cache_hits: int
    cache_misses: int

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of queue requests answered without construction."""
        requests = self.cache_hits + self.cache_misses
        if requests == 0:
            return 0.0
        return self.cache_hits / requests

    def as_dict(self) -> Dict[str, Any]:
        """A flat dictionary for reports and JSON export."""
        return {
            "instances": self.instances,
            "solver": self.solver,
            "executor": self.executor,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "solve_seconds": self.solve_seconds,
            "build_seconds": self.build_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
        }


@dataclass
class BatchResult:
    """Everything a batch run produced: solved items plus statistics."""

    items: List[BatchItem]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    @property
    def results(self) -> List[SolveResult]:
        """The per-instance solve results, in submission order."""
        return [item.result for item in self.items]

    @property
    def total_cost(self) -> float:
        """Summed incentive cost across every instance in the batch."""
        return sum(item.total_cost for item in self.items)

    @property
    def all_feasible(self) -> bool:
        """Whether every produced plan satisfies its instance's thresholds."""
        return all(item.result.feasible for item in self.items)

    def as_dict(self, include_plans: bool = False) -> Dict[str, Any]:
        """A JSON-compatible summary of the batch: per-item rows plus stats.

        ``include_plans=True`` inlines each item's full decomposition plan
        (via :func:`repro.io.serialization.plan_to_dict`); the default keeps
        only the headline numbers, which is what reports and dashboards want.
        """
        # Imported here: repro.io.serialization sits above the engine in the
        # layering (it also serialises service types), so the engine must not
        # import it at module load time.
        from repro.io.serialization import plan_to_dict

        items = []
        for item in self.items:
            entry: Dict[str, Any] = {
                "index": item.index,
                "problem": item.problem.name,
                "n": item.problem.n,
                "solver": item.solver,
                "total_cost": item.total_cost,
                "elapsed_seconds": item.elapsed_seconds,
                "feasible": item.result.feasible,
            }
            if include_plans:
                entry["plan"] = plan_to_dict(item.result.plan)
            items.append(entry)
        return {"stats": self.stats.as_dict(), "items": items}


def _merge_options(
    base: Optional[Dict[str, Any]],
    override: Optional[Dict[str, Any]],
    verify: bool,
) -> Dict[str, Any]:
    options: Dict[str, Any] = dict(base or {})
    options.update(override or {})
    options.setdefault("verify", verify)
    return options


#: Per-worker-process cache, seeded once by :func:`_init_worker` so the
#: parent's pre-built queues are pickled per *worker*, not per instance.
_WORKER_CACHE: Optional[PlanCache] = None


def _init_worker(entries: Dict[Any, Any]) -> None:
    """Process-pool initializer: adopt the parent's pre-built queues."""
    global _WORKER_CACHE
    _WORKER_CACHE = PlanCache()
    _WORKER_CACHE.absorb(entries)


def _solve_job(
    payload: Tuple[SladeProblem, str, Dict[str, Any]],
) -> Tuple[SolveResult, CacheStats]:
    """Process-pool worker: solve one instance against the worker cache.

    Module-level so it is picklable; reports the cache counters *delta* of
    this job back so the batch statistics cover worker-side hits too.
    """
    problem, solver_name, options = payload
    cache = _WORKER_CACHE if _WORKER_CACHE is not None else PlanCache()
    before = cache.stats
    if solver_accepts_queue_factory(solver_name):
        options = dict(options)
        options.setdefault("queue_factory", cache.queue_for)
    solver = create_solver(solver_name, **options)
    result = solver.solve(problem)
    return result, cache.stats.since(before)


class BatchPlanner:
    """Solve many SLADE instances through one shared plan cache.

    Parameters
    ----------
    cache:
        The :class:`~repro.engine.cache.PlanCache` to share; a fresh unbounded
        cache is created when omitted.  Pass an existing cache to share queue
        construction across multiple batches (e.g. a whole figure sweep).
    solver_options:
        Default per-solver keyword arguments, keyed by registry name —
        the same shape :class:`~repro.experiments.config.ExperimentConfig`
        uses.  Per-call options override these.
    verify:
        Whether solvers should assert plan feasibility (the default; matches
        :class:`~repro.algorithms.base.Solver`).
    executor:
        ``"serial"``, ``"thread"`` or ``"process"``.
    max_workers:
        Worker count for the parallel strategies; ``None`` lets the pool
        choose.
    telemetry:
        Optional :class:`~repro.engine.telemetry.Telemetry` registry; when
        set, every batch reports ``planner.batches`` / ``planner.instances``
        counters and a ``planner.batch_size`` series (and is also forwarded
        to the planner's cache when the planner constructs it).
    """

    def __init__(
        self,
        cache: Optional[PlanCache] = None,
        solver_options: Optional[Dict[str, Dict[str, Any]]] = None,
        verify: bool = True,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTORS}"
            )
        self.cache = cache if cache is not None else PlanCache(telemetry=telemetry)
        self.solver_options = dict(solver_options or {})
        self.verify = verify
        self.executor = executor
        self.max_workers = max_workers
        self.telemetry = telemetry

    # -- single-instance path ----------------------------------------------------

    def solve(
        self,
        problem: SladeProblem,
        solver: str = "opq",
        options: Optional[Dict[str, Any]] = None,
        verify: Optional[bool] = None,
    ) -> SolveResult:
        """Solve one instance through the shared cache.

        This is the unit the experiment runner delegates to; it behaves like
        ``create_solver(solver, **options).solve(problem)`` except that OPQ
        construction is served from (and recorded in) the planner's cache.
        """
        effective = _merge_options(
            self.solver_options.get(solver),
            options,
            self.verify if verify is None else verify,
        )
        if solver_accepts_queue_factory(solver):
            effective.setdefault("queue_factory", self.cache.queue_for)
        return create_solver(solver, **effective).solve(problem)

    # -- batch path ----------------------------------------------------------------

    def solve_many(
        self,
        problems: Union[BatchSpec, Iterable[SladeProblem]],
        solver: str = "opq",
        options: Optional[Dict[str, Any]] = None,
        verify: Optional[bool] = None,
    ) -> BatchResult:
        """Solve every instance in ``problems`` and return items plus stats.

        ``problems`` may be a :class:`~repro.engine.specs.BatchSpec` (expanded
        lazily) or any iterable of problem instances.  Items come back in
        submission order regardless of the execution strategy.
        """
        instances: List[SladeProblem] = list(problems)
        effective = _merge_options(
            self.solver_options.get(solver),
            options,
            self.verify if verify is None else verify,
        )

        before = self.cache.stats
        worker_stats: List[CacheStats] = []
        # Single-instance batches gain nothing from a pool; fall back to (and
        # report) serial execution.
        executor_used = (
            "serial" if len(instances) <= 1 else self.executor
        )
        watch = Stopwatch()
        with watch:
            if executor_used == "serial":
                results = self._run_serial(instances, solver, effective)
            elif executor_used == "thread":
                results = self._run_threads(instances, solver, effective)
            else:
                results = self._run_processes(
                    instances, solver, effective, worker_stats
                )
        after = self.cache.stats

        delta = after.since(before)
        hits = delta.hits + sum(s.hits for s in worker_stats)
        misses = delta.misses + sum(s.misses for s in worker_stats)
        build = delta.build_seconds + sum(s.build_seconds for s in worker_stats)
        items = [
            BatchItem(index=i, problem=p, solver=solver, result=r)
            for i, (p, r) in enumerate(zip(instances, results))
        ]
        stats = BatchStats(
            instances=len(items),
            solver=solver,
            executor=executor_used,
            workers=1 if executor_used == "serial" else self._worker_count(len(instances)),
            wall_seconds=watch.elapsed,
            solve_seconds=sum(r.elapsed_seconds for r in results),
            build_seconds=build,
            cache_hits=hits,
            cache_misses=misses,
        )
        if self.telemetry is not None:
            self.telemetry.increment("planner.batches")
            self.telemetry.increment("planner.instances", len(items))
            self.telemetry.observe("planner.batch_size", len(items))
        return BatchResult(items=items, stats=stats)

    # -- execution strategies -------------------------------------------------------

    def _worker_count(self, instances: int) -> int:
        if self.executor == "serial" or instances <= 1:
            return 1
        if self.max_workers is not None:
            return max(1, min(self.max_workers, instances))
        return min(8, instances)

    def _make_solver(self, solver: str, options: Dict[str, Any]):
        effective = dict(options)
        if solver_accepts_queue_factory(solver):
            effective.setdefault("queue_factory", self.cache.queue_for)
        return create_solver(solver, **effective)

    def _run_serial(
        self,
        instances: Sequence[SladeProblem],
        solver: str,
        options: Dict[str, Any],
    ) -> List[SolveResult]:
        return [
            self._make_solver(solver, options).solve(problem)
            for problem in instances
        ]

    def _run_threads(
        self,
        instances: Sequence[SladeProblem],
        solver: str,
        options: Dict[str, Any],
    ) -> List[SolveResult]:
        workers = self._worker_count(len(instances))

        def run(problem: SladeProblem) -> SolveResult:
            # One solver per task: Solver instances carry per-call metadata
            # and are not thread-safe; the cache underneath is.
            return self._make_solver(solver, options).solve(problem)

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run, instances))

    def _prewarm(self, instances: Sequence[SladeProblem], solver: str) -> None:
        """Build every queue the batch will need into the parent cache.

        A homogeneous instance is warmed under its common threshold (what
        :class:`~repro.algorithms.opq.OPQSolver` requests) *and* under its
        Algorithm 4 group thresholds, because
        :class:`~repro.algorithms.opq_extended.OPQExtendedSolver` requests
        the residual round-trip ``1 - e^{ln(1-t)}``, which is not always
        bit-identical to ``t`` — and cache keys are bit-exact.  Heterogeneous
        instances request one queue per Algorithm 4 group, whose thresholds
        :func:`~repro.algorithms.opq_extended.group_thresholds` reveals
        without paying for construction.
        """
        if not solver_accepts_queue_factory(solver):
            return
        for problem in instances:
            if problem.is_homogeneous:
                self.cache.warm(problem.bins, (problem.homogeneous_threshold,))
            self.cache.warm(
                problem.bins, group_thresholds(problem.task.thresholds)
            )

    def _run_processes(
        self,
        instances: Sequence[SladeProblem],
        solver: str,
        options: Dict[str, Any],
        worker_stats: List[CacheStats],
    ) -> List[SolveResult]:
        self._prewarm(instances, solver)
        entries = self.cache.export_entries()
        payloads = [(problem, solver, options) for problem in instances]
        workers = self._worker_count(len(instances))
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_init_worker, initargs=(entries,)
        ) as pool:
            outcomes = list(pool.map(_solve_job, payloads))
        results = [result for result, _stats in outcomes]
        worker_stats.extend(stats for _result, stats in outcomes)
        return results
