"""Serving-stack telemetry: thread-safe counters and value series.

The engine and service layers each know one slice of what a deployment wants
to watch — the plan cache sees hits, misses, evictions and build time; the
batch planner sees batch sizes; the async frontend sees queue waits and flush
sizes; the HTTP transport sees statuses and admission rejections.  A single
:class:`Telemetry` registry collects all of it so ``GET /metrics`` can
publish one coherent snapshot without any layer importing another.

Two primitives cover every hook point:

* :meth:`Telemetry.increment` — monotone counters (``cache.hits``,
  ``admission.rate_limited``, ``http.responses.429`` ...).
* :meth:`Telemetry.observe` — value series summarised as
  count/total/min/max/last (``service.batch_size``,
  ``service.queue_wait_seconds`` ...).

:meth:`Telemetry.snapshot` flattens both into one ``{name: number}`` dict
(series expand to ``name.count``, ``name.total``, ``name.min``, ``name.max``,
``name.last`` and, for convenience, ``name.mean``);
:func:`render_prometheus` turns a snapshot into Prometheus text exposition
lines for scrapers.  Everything is stdlib-only and safe to call from solver
worker threads, the asyncio event loop, and HTTP handler tasks concurrently.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Iterable, Optional


@dataclass
class SeriesStats:
    """Running summary of one observed value series."""

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    last: float = 0.0

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value
        self.last = value

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before the first observation)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count


class Telemetry:
    """A thread-safe registry of named counters and value series.

    Metric names are dotted paths (``"cache.hits"``,
    ``"service.batch_size"``); a name is either a counter or a series, never
    both — :meth:`increment` and :meth:`observe` on the same name raise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, SeriesStats] = {}

    # -- recording -------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            if name in self._series:
                raise ValueError(f"{name!r} is a series, not a counter")
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def observe(self, name: str, value: float) -> None:
        """Record one value into the series ``name`` (creating it empty)."""
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is a counter, not a series")
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = SeriesStats()
            series.observe(value)

    # -- reading ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of the counter ``name`` (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def series(self, name: str) -> SeriesStats:
        """A copy of the series ``name`` (empty if never observed)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return SeriesStats()
            return SeriesStats(
                count=series.count,
                total=series.total,
                minimum=series.minimum,
                maximum=series.maximum,
                last=series.last,
            )

    def snapshot(self) -> Dict[str, float]:
        """One flat, consistent ``{metric: number}`` view of everything."""
        with self._lock:
            out: Dict[str, float] = dict(self._counters)
            for name, series in self._series.items():
                out[f"{name}.count"] = float(series.count)
                out[f"{name}.total"] = series.total
                out[f"{name}.min"] = series.minimum
                out[f"{name}.max"] = series.maximum
                out[f"{name}.last"] = series.last
                out[f"{name}.mean"] = series.mean
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Drop every counter and series (tests and bench harnesses)."""
        with self._lock:
            self._counters.clear()
            self._series.clear()


def prometheus_name(name: str, prefix: str = "slade") -> str:
    """Convert a dotted metric name into a Prometheus-safe identifier."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"{prefix}_{safe}"


def render_prometheus(
    snapshot: Dict[str, float],
    prefix: str = "slade",
    extra: Optional[Dict[str, float]] = None,
) -> str:
    """Render a snapshot as Prometheus text exposition (one gauge per metric).

    ``extra`` merges additional point-in-time gauges (e.g. current cache
    entries, in-flight requests) into the scrape without mutating the
    registry.
    """
    merged = dict(snapshot)
    if extra:
        merged.update(extra)
    lines: Iterable[str] = (
        f"{prometheus_name(name, prefix)} {_render_value(value)}"
        for name, value in sorted(merged.items())
    )
    return "\n".join(lines) + "\n"


def _render_value(value: float) -> str:
    """Exact rendering: integral counters must not lose digits.

    ``:g`` truncates to 6 significant digits, so a counter past ~1e6 would
    stall in visible steps and break rate() math on the scraper side.
    """
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
