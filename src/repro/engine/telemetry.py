"""Serving-stack telemetry: thread-safe counters and value series.

The engine and service layers each know one slice of what a deployment wants
to watch — the plan cache sees hits, misses, evictions and build time; the
batch planner sees batch sizes; the async frontend sees queue waits and flush
sizes; the HTTP transport sees statuses and admission rejections.  A single
:class:`Telemetry` registry collects all of it so ``GET /metrics`` can
publish one coherent snapshot without any layer importing another.

Two primitives cover every hook point:

* :meth:`Telemetry.increment` — monotone counters (``cache.hits``,
  ``admission.rate_limited``, ``http.responses.429`` ...).
* :meth:`Telemetry.observe` — value series summarised as
  count/total/min/max/last (``service.batch_size``,
  ``service.queue_wait_seconds`` ...), optionally bucketed into a histogram
  when the first observation declares boundaries (``buckets=...``) — a mean
  hides tail latency; a p99 scraped from buckets does not.

:meth:`Telemetry.snapshot` flattens both into one ``{name: number}`` dict
(series expand to ``name.count``, ``name.total``, ``name.min``, ``name.max``,
``name.last`` and, for convenience, ``name.mean``; bucketed series add
cumulative ``name.bucket.le_<bound>`` counts);
:func:`render_prometheus` turns a snapshot into Prometheus text exposition
lines for scrapers, emitting proper ``_bucket{le="..."}`` / ``_sum`` lines
for the histograms passed alongside.  Everything is stdlib-only and safe to
call from solver worker threads, the asyncio event loop, and HTTP handler
tasks concurrently.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Queue-wait histogram boundaries (seconds).  Sized around the async
#: frontend's default ``max_wait_seconds`` of 10 ms: sub-millisecond buckets
#: show a healthy loop, the top buckets show a saturated executor.
QUEUE_WAIT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Remote-cache round-trip boundaries (seconds).  Loopback round trips sit in
#: the sub-millisecond buckets; anything beyond 100 ms is a WAN hop or a
#: struggling server, and past the client timeout the call fails open.
REMOTE_RTT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0,
)


def log_bucket_bounds(
    low: float, high: float, factor: float = 2.0
) -> Tuple[float, ...]:
    """Geometrically spaced histogram boundaries covering ``[low, high]``.

    HDR-style latency histograms want constant *relative* resolution — a
    10 µs error matters at 100 µs but not at 10 s — which geometric spacing
    provides: every bucket is ``factor`` times wider than its predecessor.
    The last bound is the first power of ``factor`` at or above ``high``, so
    the whole target range is covered.
    """
    if low <= 0:
        raise ValueError(f"low must be positive; got {low}")
    if high <= low:
        raise ValueError(f"high must exceed low; got [{low}, {high}]")
    if factor <= 1.0:
        raise ValueError(f"factor must exceed 1; got {factor}")
    bounds = [low]
    while bounds[-1] < high:
        bounds.append(bounds[-1] * factor)
    return tuple(bounds)


@dataclass
class SeriesStats:
    """Running summary of one observed value series.

    When ``bucket_bounds`` is set the series is also a histogram:
    ``bucket_counts[i]`` counts observations with
    ``bounds[i-1] < value <= bounds[i]`` (Prometheus ``le`` semantics), with
    one extra overflow slot for values above the last bound.
    """

    count: int = 0
    total: float = 0.0
    minimum: float = 0.0
    maximum: float = 0.0
    last: float = 0.0
    bucket_bounds: Optional[Tuple[float, ...]] = None
    bucket_counts: Optional[List[int]] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.bucket_bounds is not None and self.bucket_counts is None:
            self.bucket_counts = [0] * (len(self.bucket_bounds) + 1)

    def observe(self, value: float) -> None:
        if self.count == 0:
            self.minimum = value
            self.maximum = value
        else:
            self.minimum = min(self.minimum, value)
            self.maximum = max(self.maximum, value)
        self.count += 1
        self.total += value
        self.last = value
        if self.bucket_bounds is not None:
            assert self.bucket_counts is not None
            # bisect_left gives the first bound >= value: `le` semantics, so
            # a value exactly on a boundary lands in that boundary's bucket.
            self.bucket_counts[bisect_left(self.bucket_bounds, value)] += 1

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before the first observation)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> Optional[float]:
        """Upper-bound estimate of the ``q``-quantile from the buckets.

        Returns the smallest bucket boundary that covers at least a ``q``
        fraction of observations (Prometheus ``le`` semantics); ranks landing
        in the overflow bucket return the observed maximum.  ``None`` when
        the series is unbucketed or empty.

        The estimate is exact up to bucket resolution: the true quantile lies
        in ``(previous bound, returned value]`` — pinned by the hypothesis
        property tests in ``tests/loadgen/test_histogram.py``.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must lie in (0, 1]; got {q}")
        if self.bucket_bounds is None or self.count == 0:
            return None
        assert self.bucket_counts is not None
        rank = math.ceil(q * self.count)
        running = 0
        for bound, bucket in zip(self.bucket_bounds, self.bucket_counts):
            running += bucket
            if running >= rank:
                return bound
        return self.maximum

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(bound, observations <= bound)`` pairs (empty when unbucketed)."""
        if self.bucket_bounds is None:
            return []
        assert self.bucket_counts is not None
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bucket_bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        return out


@dataclass(frozen=True)
class HistogramSnapshot:
    """A consistent copy of one bucketed series for rendering."""

    bounds: Tuple[float, ...]
    cumulative: Tuple[int, ...]  #: observations <= bounds[i]
    count: int                   #: total observations (the +Inf bucket)
    total: float                 #: sum of observed values


class Telemetry:
    """A thread-safe registry of named counters and value series.

    Metric names are dotted paths (``"cache.hits"``,
    ``"service.batch_size"``); a name is either a counter or a series, never
    both — :meth:`increment` and :meth:`observe` on the same name raise.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._series: Dict[str, SeriesStats] = {}

    # -- recording -------------------------------------------------------------

    def increment(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to the counter ``name`` (creating it at zero)."""
        with self._lock:
            if name in self._series:
                raise ValueError(f"{name!r} is a series, not a counter")
            self._counters[name] = self._counters.get(name, 0.0) + amount

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Iterable[float]] = None,
    ) -> None:
        """Record one value into the series ``name`` (creating it empty).

        ``buckets`` declares histogram boundaries when the series is first
        created; later observations inherit them (the first declaration
        wins), so hook points can pass their boundary constant on every call.
        """
        with self._lock:
            if name in self._counters:
                raise ValueError(f"{name!r} is a counter, not a series")
            series = self._series.get(name)
            if series is None:
                bounds = (
                    tuple(sorted(set(buckets))) if buckets is not None else None
                )
                series = self._series[name] = SeriesStats(bucket_bounds=bounds)
            series.observe(value)

    # -- reading ---------------------------------------------------------------

    def counter(self, name: str) -> float:
        """Current value of the counter ``name`` (0.0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def series(self, name: str) -> SeriesStats:
        """A copy of the series ``name`` (empty if never observed)."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return SeriesStats()
            return SeriesStats(
                count=series.count,
                total=series.total,
                minimum=series.minimum,
                maximum=series.maximum,
                last=series.last,
                bucket_bounds=series.bucket_bounds,
                bucket_counts=(
                    list(series.bucket_counts)
                    if series.bucket_counts is not None
                    else None
                ),
            )

    def histograms(self) -> Dict[str, HistogramSnapshot]:
        """A consistent copy of every bucketed series, keyed by name."""
        with self._lock:
            out: Dict[str, HistogramSnapshot] = {}
            for name, series in self._series.items():
                if series.bucket_bounds is None:
                    continue
                cumulative = series.cumulative_buckets()
                out[name] = HistogramSnapshot(
                    bounds=tuple(bound for bound, _cum in cumulative),
                    cumulative=tuple(cum for _bound, cum in cumulative),
                    count=series.count,
                    total=series.total,
                )
        return out

    def snapshot(self) -> Dict[str, float]:
        """One flat, consistent ``{metric: number}`` view of everything."""
        with self._lock:
            out: Dict[str, float] = dict(self._counters)
            for name, series in self._series.items():
                out[f"{name}.count"] = float(series.count)
                out[f"{name}.total"] = series.total
                out[f"{name}.min"] = series.minimum
                out[f"{name}.max"] = series.maximum
                out[f"{name}.last"] = series.last
                out[f"{name}.mean"] = series.mean
                for bound, cum in series.cumulative_buckets():
                    out[f"{name}.bucket.le_{format_bound(bound)}"] = float(cum)
                if series.bucket_bounds is not None:
                    out[f"{name}.bucket.le_inf"] = float(series.count)
        return dict(sorted(out.items()))

    def reset(self) -> None:
        """Drop every counter and series (tests and bench harnesses)."""
        with self._lock:
            self._counters.clear()
            self._series.clear()


def prometheus_name(name: str, prefix: str = "slade") -> str:
    """Convert a dotted metric name into a Prometheus-safe identifier."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in name)
    return f"{prefix}_{safe}"


def format_bound(bound: float) -> str:
    """A compact, stable rendering of one histogram boundary (``0.005``)."""
    return f"{bound:g}"


def render_prometheus(
    snapshot: Dict[str, float],
    prefix: str = "slade",
    extra: Optional[Dict[str, float]] = None,
    histograms: Optional[Dict[str, HistogramSnapshot]] = None,
) -> str:
    """Render a snapshot as Prometheus text exposition (one gauge per metric).

    ``extra`` merges additional point-in-time gauges (e.g. current cache
    entries, in-flight requests) into the scrape without mutating the
    registry.  ``histograms`` (from :meth:`Telemetry.histograms`) render as
    native histogram exposition — ``<name>_bucket{le="..."}`` lines plus
    ``<name>_sum`` — instead of the flattened ``.bucket.le_*`` gauge keys,
    which are dropped from the text form (the JSON form keeps them).
    """
    merged = dict(snapshot)
    if extra:
        merged.update(extra)
    if histograms:
        flattened_prefixes = tuple(f"{name}.bucket." for name in histograms)
        merged = {
            name: value
            for name, value in merged.items()
            if not name.startswith(flattened_prefixes)
        }
    lines: List[str] = [
        f"{prometheus_name(name, prefix)} {_render_value(value)}"
        for name, value in sorted(merged.items())
    ]
    for name, hist in sorted((histograms or {}).items()):
        base = prometheus_name(name, prefix)
        for bound, cum in zip(hist.bounds, hist.cumulative):
            lines.append(f'{base}_bucket{{le="{format_bound(bound)}"}} {cum}')
        lines.append(f'{base}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{base}_sum {_render_value(hist.total)}")
    return "\n".join(lines) + "\n"


def _render_value(value: float) -> str:
    """Exact rendering: integral counters must not lose digits.

    ``:g`` truncates to 6 significant digits, so a counter past ~1e6 would
    stall in visible steps and break rate() math on the scraper side.
    """
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
