"""In-process cache storage: an ordered dict with optional LRU eviction.

This is the historical storage of :class:`~repro.engine.cache.PlanCache`,
extracted behind the :class:`~repro.engine.backends.base.CacheBackend`
protocol.  Entries are held by reference, so a hit returns the *same* queue
object that was stored — solvers may therefore share one queue across
thousands of instances with zero copying.

Storage calls take an internal lock (cheap when uncontended), so the plan
cache's per-key leaders may touch the store concurrently — required for the
tiered backend's near tier, where a get/put must not wait behind another
key's far-tier network round trip.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.fingerprint import OPQKey


class MemoryBackend:
    """Ordered-dict storage with optional LRU bound.

    Parameters
    ----------
    max_entries:
        Optional bound on the number of stored queues; the least recently
        *used* entry is evicted first.  ``None`` (the default) stores
        everything, which suits sweeps whose distinct ``(bins, threshold)``
        pairs number in the dozens.
    """

    persistent = False

    #: Every storage call is guarded by an internal lock, so the plan
    #: cache's concurrent per-key leaders need no extra serialisation.
    concurrent_safe = True

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive; got {max_entries}")
        self.max_entries = max_entries
        #: Entries dropped by the LRU bound since construction (telemetry).
        self.evictions = 0
        self._lock = threading.RLock()
        self._entries: "OrderedDict[OPQKey, OptimalPriorityQueue]" = OrderedDict()

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        with self._lock:
            queue = self._entries.get(key)
            if queue is not None:
                self._entries.move_to_end(key)
            return queue

    def peek(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        """A read that does *not* refresh LRU recency.

        The plan cache's curve seeding probes *other* thresholds' entries to
        warm-start a build; those probes are opportunistic and must not keep
        a donor alive at the expense of entries requests actually asked for.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        with self._lock:
            self._entries[key] = queue
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.evictions += 1

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        with self._lock:
            for key, queue in entries.items():
                self._entries.setdefault(key, queue)

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        with self._lock:
            return dict(self._entries)

    def delete(self, key: OPQKey) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def close(self) -> None:
        """Nothing to release for in-memory storage."""

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: OPQKey) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        # len(self) takes the lock; _entries must never be read unlocked.
        return f"MemoryBackend(entries={len(self)}, max_entries={self.max_entries})"
