"""Persistent cache storage: queues pickled into a SQLite file.

A long-lived worker fleet restarts, redeploys, and scales horizontally; an
in-memory plan cache starts cold every time.  :class:`SQLiteBackend` stores
each optimal priority queue as a pickled blob keyed by the stable
``(bin-set fingerprint, threshold token)`` pair of
:mod:`repro.engine.fingerprint`, so a second process — or the same process
after a restart — opens the file and serves its first requests as cache hits.

Queues are deterministic functions of their key, so concurrent writers can
only ever race to store equivalent values; ``INSERT OR IGNORE`` plus SQLite's
own file locking make the race harmless.  Within a process, unpickled queues
are memoised so repeated hits return the same object without re-reading the
blob (matching :class:`~repro.engine.backends.memory.MemoryBackend`'s
by-reference semantics on the hot path).  Storage calls serialise on an
internal lock, so the plan cache's concurrent per-key leaders (and the
``repro cached --persist`` server loop) can share one instance safely.

Blobs use the same pinned cross-host pickle codec as the networked backend
(:func:`repro.engine.backends.wire.encode_queue`), so a SQLite file on shared
storage is readable by every interpreter in a mixed-version fleet.  The
*raw-payload* methods (:meth:`put_payload` / :meth:`payloads` /
:meth:`delete`) move those same blobs without unpickling them — the
``repro cached --persist`` server stores client payloads through this API,
which means a ``--persist`` file and a ``sqlite:<path>`` backend file are
the same format: warmth written by either is readable by both.
"""

from __future__ import annotations

import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.backends.wire import decode_queue, encode_queue
from repro.engine.fingerprint import OPQKey

_SCHEMA = """
CREATE TABLE IF NOT EXISTS opq_entries (
    bins_fingerprint TEXT NOT NULL,
    threshold_token  TEXT NOT NULL,
    payload          BLOB NOT NULL,
    touch_seq        INTEGER NOT NULL,
    PRIMARY KEY (bins_fingerprint, threshold_token)
)
"""


class SQLiteBackend:
    """Queue storage in a SQLite file shared across processes and restarts.

    Parameters
    ----------
    path:
        The database file; created (with its schema) when missing.
    max_entries:
        Optional LRU bound on the number of stored queues.  Recency is
        tracked with a monotone ``touch_seq`` column updated on every hit,
        so eviction order is meaningful even across processes.
    """

    persistent = True

    #: Storage calls serialise on an internal lock, so concurrent per-key
    #: leaders in :class:`~repro.engine.cache.PlanCache` are safe.
    concurrent_safe = True

    def __init__(self, path: Union[str, Path], max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive; got {max_entries}")
        self.path = Path(path)
        self.max_entries = max_entries
        #: Entries dropped by the LRU bound by *this* process (telemetry).
        self.evictions = 0
        self._lock = threading.RLock()
        # autocommit (isolation_level=None) keeps each statement in its own
        # implicit transaction; check_same_thread=False because calls are
        # serialised on self._lock and may come from any worker thread.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute(_SCHEMA)
        self._memo: Dict[OPQKey, OptimalPriorityQueue] = {}

    # -- storage protocol ------------------------------------------------------

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        with self._lock:
            queue = self._memo.get(key)
            if queue is not None:
                self._touch(key)
                return queue
            row = self._conn.execute(
                "SELECT payload FROM opq_entries "
                "WHERE bins_fingerprint = ? AND threshold_token = ?",
                key,
            ).fetchone()
            if row is None:
                return None
            queue = decode_queue(row[0])
            self._memo[key] = queue
            self._touch(key)
            return queue

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        with self._lock:
            self._store(key, encode_queue(queue))
            self._memo[key] = queue
            self._evict()

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        with self._lock:
            for key, queue in entries.items():
                self._conn.execute(
                    "INSERT OR IGNORE INTO opq_entries "
                    "(bins_fingerprint, threshold_token, payload, touch_seq) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        key[0],
                        key[1],
                        encode_queue(queue),
                        self._next_seq(),
                    ),
                )
                self._memo.setdefault(key, queue)
            self._evict()

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT bins_fingerprint, threshold_token, payload FROM opq_entries"
            ).fetchall()
            out: Dict[OPQKey, OptimalPriorityQueue] = {}
            for bins_fp, token, payload in rows:
                key = (bins_fp, token)
                queue = self._memo.get(key)
                out[key] = queue if queue is not None else decode_queue(payload)
            return out

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM opq_entries")
            self._memo.clear()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __len__(self) -> int:
        with self._lock:
            return self._count_rows()

    def __contains__(self, key: OPQKey) -> bool:
        with self._lock:
            row = self._conn.execute(
                "SELECT 1 FROM opq_entries "
                "WHERE bins_fingerprint = ? AND threshold_token = ?",
                key,
            ).fetchone()
            return row is not None

    # -- raw payload access (the cache server's persistence path) --------------

    def put_payload(self, key: OPQKey, payload: bytes) -> None:
        """Store an already-encoded queue blob without unpickling it.

        The ``repro cached --persist`` server is deliberately ignorant of
        payload contents (a hostile blob must harm only the client that
        stored it); this path writes the client's bytes through verbatim.
        The in-process memo is left untouched — raw writers never read
        queues back as objects.
        """
        with self._lock:
            self._store(key, payload)
            self._evict()

    def payloads(self) -> Iterator[Tuple[OPQKey, bytes]]:
        """Every stored ``(key, blob)`` pair, least recently used first.

        Iteration order preserves LRU recency so a restarting server can
        rebuild its in-memory LRU chain faithfully.
        """
        with self._lock:
            rows = self._conn.execute(
                "SELECT bins_fingerprint, threshold_token, payload "
                "FROM opq_entries ORDER BY touch_seq ASC"
            ).fetchall()
        for bins_fp, token, payload in rows:
            yield (bins_fp, token), payload

    def delete(self, key: OPQKey) -> bool:
        """Drop one entry; return whether a row was removed."""
        with self._lock:
            cursor = self._conn.execute(
                "DELETE FROM opq_entries "
                "WHERE bins_fingerprint = ? AND threshold_token = ?",
                key,
            )
            memoed = self._memo.pop(key, None) is not None
            return cursor.rowcount > 0 or memoed

    # -- recency and eviction ---------------------------------------------------

    def _store(self, key: OPQKey, payload: bytes) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO opq_entries "
            "(bins_fingerprint, threshold_token, payload, touch_seq) "
            "VALUES (?, ?, ?, ?)",
            (key[0], key[1], payload, self._next_seq()),
        )

    def _count_rows(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM opq_entries"
        ).fetchone()[0]

    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(touch_seq), 0) + 1 FROM opq_entries"
        ).fetchone()
        return int(row[0])

    def _touch(self, key: OPQKey) -> None:
        # Recency only matters for eviction; unbounded stores skip the
        # bookkeeping so warm hits stay read-only (no per-request fsync).
        if self.max_entries is None:
            return
        self._conn.execute(
            "UPDATE opq_entries SET touch_seq = ? "
            "WHERE bins_fingerprint = ? AND threshold_token = ?",
            (self._next_seq(), key[0], key[1]),
        )

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        excess = self._count_rows() - self.max_entries
        if excess <= 0:
            return
        self.evictions += excess
        self._conn.execute(
            "DELETE FROM opq_entries WHERE rowid IN ("
            "  SELECT rowid FROM opq_entries ORDER BY touch_seq ASC LIMIT ?"
            ")",
            (excess,),
        )
        remaining = {
            (bins_fp, token)
            for bins_fp, token in self._conn.execute(
                "SELECT bins_fingerprint, threshold_token FROM opq_entries"
            )
        }
        self._memo = {k: v for k, v in self._memo.items() if k in remaining}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend(path={str(self.path)!r}, entries={len(self)})"
