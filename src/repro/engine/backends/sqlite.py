"""Persistent cache storage: queues pickled into a SQLite file.

A long-lived worker fleet restarts, redeploys, and scales horizontally; an
in-memory plan cache starts cold every time.  :class:`SQLiteBackend` stores
each optimal priority queue as a pickled blob keyed by the stable
``(bin-set fingerprint, threshold token)`` pair of
:mod:`repro.engine.fingerprint`, so a second process — or the same process
after a restart — opens the file and serves its first requests as cache hits.

Queues are deterministic functions of their key, so concurrent writers can
only ever race to store equivalent values; ``INSERT OR IGNORE`` plus SQLite's
own file locking make the race harmless.  Within a process, unpickled queues
are memoised so repeated hits return the same object without re-reading the
blob (matching :class:`~repro.engine.backends.memory.MemoryBackend`'s
by-reference semantics on the hot path).

Blobs use the same pinned cross-host pickle codec as the networked backend
(:func:`repro.engine.backends.wire.encode_queue`), so a SQLite file on shared
storage is readable by every interpreter in a mixed-version fleet.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Dict, Optional, Union

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.backends.wire import decode_queue, encode_queue
from repro.engine.fingerprint import OPQKey

_SCHEMA = """
CREATE TABLE IF NOT EXISTS opq_entries (
    bins_fingerprint TEXT NOT NULL,
    threshold_token  TEXT NOT NULL,
    payload          BLOB NOT NULL,
    touch_seq        INTEGER NOT NULL,
    PRIMARY KEY (bins_fingerprint, threshold_token)
)
"""


class SQLiteBackend:
    """Queue storage in a SQLite file shared across processes and restarts.

    Parameters
    ----------
    path:
        The database file; created (with its schema) when missing.
    max_entries:
        Optional LRU bound on the number of stored queues.  Recency is
        tracked with a monotone ``touch_seq`` column updated on every hit,
        so eviction order is meaningful even across processes.
    """

    persistent = True

    def __init__(self, path: Union[str, Path], max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive; got {max_entries}")
        self.path = Path(path)
        self.max_entries = max_entries
        #: Entries dropped by the LRU bound by *this* process (telemetry).
        self.evictions = 0
        # autocommit (isolation_level=None) keeps each statement in its own
        # implicit transaction; check_same_thread=False because PlanCache
        # serialises calls under its lock and may be driven from a thread pool.
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, isolation_level=None
        )
        self._conn.execute(_SCHEMA)
        self._memo: Dict[OPQKey, OptimalPriorityQueue] = {}

    # -- storage protocol ------------------------------------------------------

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        queue = self._memo.get(key)
        if queue is not None:
            self._touch(key)
            return queue
        row = self._conn.execute(
            "SELECT payload FROM opq_entries "
            "WHERE bins_fingerprint = ? AND threshold_token = ?",
            key,
        ).fetchone()
        if row is None:
            return None
        queue = decode_queue(row[0])
        self._memo[key] = queue
        self._touch(key)
        return queue

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        payload = encode_queue(queue)
        self._conn.execute(
            "INSERT OR REPLACE INTO opq_entries "
            "(bins_fingerprint, threshold_token, payload, touch_seq) "
            "VALUES (?, ?, ?, ?)",
            (key[0], key[1], payload, self._next_seq()),
        )
        self._memo[key] = queue
        self._evict()

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        for key, queue in entries.items():
            self._conn.execute(
                "INSERT OR IGNORE INTO opq_entries "
                "(bins_fingerprint, threshold_token, payload, touch_seq) "
                "VALUES (?, ?, ?, ?)",
                (
                    key[0],
                    key[1],
                    encode_queue(queue),
                    self._next_seq(),
                ),
            )
            self._memo.setdefault(key, queue)
        self._evict()

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        rows = self._conn.execute(
            "SELECT bins_fingerprint, threshold_token, payload FROM opq_entries"
        ).fetchall()
        out: Dict[OPQKey, OptimalPriorityQueue] = {}
        for bins_fp, token, payload in rows:
            key = (bins_fp, token)
            queue = self._memo.get(key)
            out[key] = queue if queue is not None else decode_queue(payload)
        return out

    def clear(self) -> None:
        self._conn.execute("DELETE FROM opq_entries")
        self._memo.clear()

    def close(self) -> None:
        self._conn.close()

    def __len__(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM opq_entries").fetchone()[0]

    def __contains__(self, key: OPQKey) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM opq_entries "
            "WHERE bins_fingerprint = ? AND threshold_token = ?",
            key,
        ).fetchone()
        return row is not None

    # -- recency and eviction ---------------------------------------------------

    def _next_seq(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(MAX(touch_seq), 0) + 1 FROM opq_entries"
        ).fetchone()
        return int(row[0])

    def _touch(self, key: OPQKey) -> None:
        # Recency only matters for eviction; unbounded stores skip the
        # bookkeeping so warm hits stay read-only (no per-request fsync).
        if self.max_entries is None:
            return
        self._conn.execute(
            "UPDATE opq_entries SET touch_seq = ? "
            "WHERE bins_fingerprint = ? AND threshold_token = ?",
            (self._next_seq(), key[0], key[1]),
        )

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        excess = len(self) - self.max_entries
        if excess <= 0:
            return
        self.evictions += excess
        self._conn.execute(
            "DELETE FROM opq_entries WHERE rowid IN ("
            "  SELECT rowid FROM opq_entries ORDER BY touch_seq ASC LIMIT ?"
            ")",
            (excess,),
        )
        remaining = {
            (bins_fp, token)
            for bins_fp, token in self._conn.execute(
                "SELECT bins_fingerprint, threshold_token FROM opq_entries"
            )
        }
        self._memo = {k: v for k, v in self._memo.items() if k in remaining}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SQLiteBackend(path={str(self.path)!r}, entries={len(self)})"
