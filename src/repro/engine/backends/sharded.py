"""Sharded plan-cache storage: a consistent-hash ring over cache servers.

One ``repro cached`` process is the fleet's single point of warmth: if it
dies every host falls back to cold Algorithm 2 builds, and one process bounds
total cache capacity.  :class:`ShardedBackend` spreads fingerprints over *N*
servers with a consistent-hash ring (:class:`HashRing`) and keeps each entry
on *R* consecutive ring successors, so the fleet tolerates ``R - 1``
simultaneous shard deaths with zero lost warmth and scales capacity linearly
with shard count.

Semantics, in priority order:

1. **Fail open, always.**  Each shard is reached through a
   :class:`~repro.engine.backends.remote.RemoteBackend` with its own
   timeouts; a dead shard is skipped, and when *every* replica of a key is
   unreachable the read is a miss (``sharded_cache.fail_open``) — the caller
   rebuilds locally, exactly like the single-server backend.
2. **Read with fail-over.**  A read walks the key's ``R`` successors in ring
   order and answers from the first shard that has the entry.  Answering
   from a non-primary replica (because an earlier successor was down or
   missing the key) counts ``sharded_cache.failovers`` plus the serving
   shard's own ``...failovers`` counter.
3. **Write through to every replica.**  A PUT lands on all ``R`` successors
   (best effort per shard), so one cold build warms every replica at once.
4. **Repair on read.**  When a replica answers a read that an earlier
   *reachable* successor missed (a restarted or freshly joined shard), the
   entry is written back to the lagging shard — counted as
   ``sharded_cache.rebalances`` — so replication degrades only while a shard
   is actually down.

The ring uses SHA-256 points with configurable virtual nodes per endpoint
(``vnodes``), giving the two properties the property tests pin down: keys
spread evenly across shards, and removing one endpoint remaps only that
endpoint's ~1/N share of the keyspace (minimal disruption).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.backends.remote import (
    DEFAULT_POOL_SIZE,
    DEFAULT_TIMEOUT,
    RemoteBackend,
)
from repro.engine.backends.wire import encode_key
from repro.engine.fingerprint import OPQKey
from repro.engine.telemetry import Telemetry

#: Default virtual nodes per endpoint.  128 points per shard keeps the
#: largest shard's share within a few tens of percent of ideal for small
#: fleets while ring construction stays sub-millisecond.
DEFAULT_VNODES = 128

#: Default replication factor: every entry lives on two consecutive ring
#: successors, so any single shard death preserves full warmth.
DEFAULT_REPLICAS = 2


def _ring_hash(data: bytes) -> int:
    """A stable 64-bit ring coordinate (process-salt-free, cross-host)."""
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """A consistent-hash ring mapping byte keys onto endpoint labels.

    Each endpoint owns ``vnodes`` pseudo-random points on a 64-bit circle; a
    key belongs to the endpoints owning the first points at or after the
    key's own coordinate (its *successors*).  The layout is a pure function
    of the endpoint labels and ``vnodes`` — independent of insertion order —
    so every client in a fleet computes identical placements.
    """

    def __init__(self, endpoints: Iterable[str], vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be positive; got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._endpoints: List[str] = []
        for endpoint in endpoints:
            self.add(endpoint)

    @property
    def endpoints(self) -> Tuple[str, ...]:
        """The current endpoint labels, in insertion order."""
        return tuple(self._endpoints)

    def add(self, endpoint: str) -> None:
        """Place ``endpoint``'s virtual nodes on the ring."""
        if endpoint in self._endpoints:
            raise ValueError(f"endpoint {endpoint!r} is already on the ring")
        self._endpoints.append(endpoint)
        for index in range(self.vnodes):
            point = _ring_hash(f"{endpoint}#{index}".encode("utf-8"))
            self._points.append((point, endpoint))
        # Ties (two labels hashing to one point) break by label so the
        # layout stays deterministic across hosts.
        self._points.sort()

    def remove(self, endpoint: str) -> None:
        """Take ``endpoint``'s virtual nodes off the ring."""
        if endpoint not in self._endpoints:
            raise ValueError(f"endpoint {endpoint!r} is not on the ring")
        self._endpoints.remove(endpoint)
        self._points = [item for item in self._points if item[1] != endpoint]

    def successors(self, key: bytes, count: int) -> List[str]:
        """The first ``count`` distinct endpoints clockwise from ``key``.

        Fewer than ``count`` labels come back when the ring holds fewer
        endpoints; an empty ring yields an empty list.
        """
        if not self._points or count < 1:
            return []
        start = bisect_right(self._points, (_ring_hash(key), ""))
        found: List[str] = []
        for offset in range(len(self._points)):
            endpoint = self._points[(start + offset) % len(self._points)][1]
            if endpoint not in found:
                found.append(endpoint)
                if len(found) == count:
                    break
        return found

    def primary(self, key: bytes) -> Optional[str]:
        """The key's first successor (``None`` on an empty ring)."""
        owners = self.successors(key, 1)
        return owners[0] if owners else None

    def __len__(self) -> int:
        return len(self._endpoints)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashRing(endpoints={len(self._endpoints)}, vnodes={self.vnodes})"


class ShardedBackend:
    """Plan-cache storage spread over a fleet of ``repro cached`` shards.

    Parameters
    ----------
    endpoints:
        ``(host, port)`` pairs of the cache servers, in any order (placement
        is order-independent).
    replicas:
        Ring successors each entry is written to; clamped to the endpoint
        count (a 3-replica config over 2 shards writes both).
    vnodes:
        Virtual nodes per endpoint on the hash ring.
    timeout / pool_size:
        Forwarded to every per-shard :class:`RemoteBackend`.
    telemetry:
        Optional registry for the aggregate and per-shard counters; also
        propagated to the per-shard clients so their ``remote_cache.*``
        fail-open and round-trip metrics land in the same snapshot.
    """

    #: Entries live on the shard servers; they survive this process.
    persistent = True

    #: Per-shard clients pool their own sockets under their own locks, so
    #: the plan cache may drive this backend from concurrent key-leaders.
    concurrent_safe = True

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        replicas: int = DEFAULT_REPLICAS,
        vnodes: int = DEFAULT_VNODES,
        timeout: float = DEFAULT_TIMEOUT,
        pool_size: int = DEFAULT_POOL_SIZE,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not endpoints:
            raise ValueError("sharded backend needs at least one endpoint")
        if replicas < 1:
            raise ValueError(f"replicas must be positive; got {replicas}")
        labels = [f"{host}:{port}" for host, port in endpoints]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate shard endpoints in {labels}")
        self.replicas = min(replicas, len(labels))
        self.shards: Dict[str, RemoteBackend] = {
            label: RemoteBackend(host, port, timeout=timeout, pool_size=pool_size)
            for label, (host, port) in zip(labels, endpoints)
        }
        self.ring = HashRing(labels, vnodes=vnodes)
        self._telemetry: Optional[Telemetry] = None
        self.telemetry = telemetry
        #: Client-side evictions never happen (shards bound themselves).
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        #: Reads answered by a non-primary replica.
        self.failovers = 0
        #: Reads where every replica was unreachable (degraded to a miss).
        self.fail_opens = 0
        #: Repair writes restoring replication on a lagging reachable shard.
        self.rebalances = 0
        self.shard_hits: Dict[str, int] = {label: 0 for label in labels}

    # -- telemetry plumbing ----------------------------------------------------

    @property
    def telemetry(self) -> Optional[Telemetry]:
        return self._telemetry

    @telemetry.setter
    def telemetry(self, registry: Optional[Telemetry]) -> None:
        self._telemetry = registry
        if registry is not None:
            for shard in self.shards.values():
                if shard.telemetry is None:
                    shard.telemetry = registry

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self._telemetry is not None:
            self._telemetry.increment(name, amount)

    # -- placement -------------------------------------------------------------

    def owners(self, key: OPQKey) -> List[str]:
        """The shard labels holding ``key``, primary first."""
        return self.ring.successors(encode_key(key), self.replicas)

    # -- storage protocol ------------------------------------------------------

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        lagging: List[str] = []
        any_down = False
        for position, label in enumerate(self.owners(key)):
            queue, reachable = self.shards[label].try_get(key)
            if queue is not None:
                self.hits += 1
                self.shard_hits[label] += 1
                self._count("sharded_cache.hits")
                self._count(f"sharded_cache.shard.{label}.hits")
                if position > 0:
                    # An earlier successor was down or cold: the replica
                    # carried the read.
                    self.failovers += 1
                    self._count("sharded_cache.failovers")
                    self._count(f"sharded_cache.shard.{label}.failovers")
                self._repair(key, queue, lagging)
                return queue
            if reachable:
                lagging.append(label)
            else:
                any_down = True
        if any_down and not lagging:
            # Every replica unreachable: the fleet-wide fail-open path.
            self.fail_opens += 1
            self._count("sharded_cache.fail_open")
        else:
            self.misses += 1
            self._count("sharded_cache.misses")
        return None

    def _repair(
        self,
        key: OPQKey,
        queue: OptimalPriorityQueue,
        lagging: List[str],
    ) -> None:
        """Write ``key`` back to reachable shards that missed it.

        A shard that answered a CONTAINS/GET round trip but lacked the entry
        (restarted without ``--persist``, or newly joined the ring) regains
        its replica here, so one shard bounce degrades replication only
        until the next read of each key.
        """
        for label in lagging:
            self.shards[label].put(key, queue)
            self.rebalances += 1
            self._count("sharded_cache.rebalances")
            self._count(f"sharded_cache.shard.{label}.rebalances")

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        # Best effort per shard: a dead replica only costs future fail-over
        # reads, never a request error.
        for label in self.owners(key):
            self.shards[label].put(key, queue)

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        for key, queue in entries.items():
            self.put(key, queue)

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        """Empty by design, matching :class:`RemoteBackend`: process-pool
        workers open their own shard connections instead of shipping pickles.
        """
        return {}

    def delete(self, key: OPQKey) -> bool:
        """Drop ``key`` from every replica that answers.

        Best effort per shard, like :meth:`put`: a dead replica keeps its
        stale copy until read repair next touches the key — but since
        invalidation accompanies a menu-epoch bump, nothing will ever ask
        for the stale key again, so the leftover copy only occupies space
        until the shard's own LRU reclaims it.
        """
        removed = False
        for label in self.owners(key):
            removed = self.shards[label].delete(key) or removed
        return removed

    def clear(self) -> None:
        for shard in self.shards.values():
            shard.clear()

    def close(self) -> None:
        for shard in self.shards.values():
            shard.close()

    def __len__(self) -> int:
        # Shards count replicated copies, so the distinct-key estimate is
        # the reachable total divided by the replication factor.
        total = 0
        for shard in self.shards.values():
            stats = shard.server_stats()
            if stats:
                total += int(stats.get("keys", 0))
        return round(total / self.replicas)

    def __contains__(self, key: OPQKey) -> bool:
        return any(key in self.shards[label] for label in self.owners(key))

    # -- observability ---------------------------------------------------------

    def extra_metrics(self) -> Dict[str, float]:
        """Per-shard server gauges plus a live-shard count (fail-open)."""
        metrics: Dict[str, float] = {
            "sharded_cache.shards": float(len(self.shards)),
            "sharded_cache.replicas": float(self.replicas),
        }
        shards_up = 0
        for label, shard in sorted(self.shards.items()):
            stats = shard.server_stats()
            if not stats:
                continue
            shards_up += 1
            prefix = f"sharded_cache.shard.{label}"
            metrics[f"{prefix}.server_keys"] = float(stats.get("keys", 0))
            metrics[f"{prefix}.server_bytes"] = float(stats.get("bytes", 0))
            metrics[f"{prefix}.server_evictions"] = float(
                stats.get("evictions", 0)
            )
        metrics["sharded_cache.shards_up"] = float(shards_up)
        return metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedBackend(shards={sorted(self.shards)}, "
            f"replicas={self.replicas}, vnodes={self.ring.vnodes})"
        )
