"""The cache server's wire protocol: length-prefixed, versioned, checksummed.

One frame shape carries every request and reply between
:class:`~repro.engine.backends.remote.RemoteBackend` and the
``repro cached`` server:

.. code-block:: text

    +-------+---------+--------+---------+-------------+----------+
    | magic | version | opcode | key len | payload len | checksum |  16-byte
    | 2B    | 1B      | 1B     | u32     | u32         | crc32    |  header
    +-------+---------+--------+---------+-------------+----------+
    | key bytes ...                | payload bytes ...            |
    +------------------------------+------------------------------+

The checksum covers ``key + payload``, so a truncated or bit-flipped frame is
detected before any value is trusted; the version byte lets a future protocol
revision reject old peers with a clear error instead of misparsing.  Both
sides treat any violation as :class:`WireProtocolError` — the server answers
an ``ERROR`` reply and drops the connection (its framing is unrecoverable),
the client fails open and solves locally.

The module also owns the *payload* codec: queues travel as pickles pinned to
:data:`QUEUE_PICKLE_PROTOCOL` so every host in a fleet — regardless of its
interpreter's ``pickle.HIGHEST_PROTOCOL`` — produces blobs every other host
can read.  :func:`decode_queue` validates the unpickled type, so a corrupt or
hostile payload surfaces as :class:`WirePayloadError`, never as a wrong plan.
"""

from __future__ import annotations

import pickle
import socket as socket_module
import struct
import time
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # asyncio stays a lazy import on the hot sync paths
    import asyncio

from repro.algorithms.opq import OptimalPriorityQueue
from repro.core.errors import SladeError
from repro.engine.fingerprint import OPQKey

#: First bytes of every frame; anything else is not this protocol.
MAGIC = b"SC"

#: Protocol revision; bumped on incompatible frame changes.
WIRE_VERSION = 1

#: magic(2) version(1) opcode(1) key_len(u32) payload_len(u32) crc32(u32).
HEADER = struct.Struct("!2sBBIII")

#: Keys are fingerprint/threshold tokens — far below this bound.
MAX_KEY_BYTES = 4 * 1024

#: Pickled queues for the paper's menus are kilobytes; 64 MiB is a hard stop
#: against a corrupted length field allocating unbounded memory.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

# -- opcodes (requests) ----------------------------------------------------------

OP_GET = 0x01
OP_PUT = 0x02
OP_DELETE = 0x03
OP_STATS = 0x04
OP_PING = 0x05
OP_CONTAINS = 0x06
OP_CLEAR = 0x07

# -- opcodes (replies) -----------------------------------------------------------

REPLY_VALUE = 0x81    #: payload carries the stored value
REPLY_MISS = 0x82     #: key not present
REPLY_OK = 0x83       #: mutation acknowledged / key present
REPLY_STATS = 0x84    #: payload carries a JSON statistics document
REPLY_PONG = 0x85     #: liveness answer
REPLY_ERROR = 0x86    #: payload carries a UTF-8 error message

_REQUEST_OPS = frozenset(
    (OP_GET, OP_PUT, OP_DELETE, OP_STATS, OP_PING, OP_CONTAINS, OP_CLEAR)
)
_REPLY_OPS = frozenset(
    (REPLY_VALUE, REPLY_MISS, REPLY_OK, REPLY_STATS, REPLY_PONG, REPLY_ERROR)
)

#: Pinned cross-host pickle protocol (supported by every CPython this repo
#: targets); ``HIGHEST_PROTOCOL`` would let a newer interpreter poison the
#: shared cache for older fleet members.
QUEUE_PICKLE_PROTOCOL = 4


class WireProtocolError(SladeError):
    """A frame violates the protocol (bad magic/version/opcode/length/checksum)."""


class WirePayloadError(SladeError):
    """A frame was well-formed but its payload is not a valid queue."""


@dataclass(frozen=True)
class Frame:
    """One decoded frame: opcode plus opaque key and payload bytes."""

    op: int
    key: bytes = b""
    payload: bytes = b""


def encode_frame(op: int, key: bytes = b"", payload: bytes = b"") -> bytes:
    """Serialise one frame; validates sizes so bad frames never hit the wire."""
    if op not in _REQUEST_OPS and op not in _REPLY_OPS:
        raise WireProtocolError(f"unknown opcode 0x{op:02x}")
    if len(key) > MAX_KEY_BYTES:
        raise WireProtocolError(f"key of {len(key)} bytes exceeds {MAX_KEY_BYTES}")
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"payload of {len(payload)} bytes exceeds {MAX_PAYLOAD_BYTES}"
        )
    checksum = zlib.crc32(key + payload) & 0xFFFFFFFF
    return HEADER.pack(MAGIC, WIRE_VERSION, op, len(key), len(payload), checksum) \
        + key + payload


def decode_header(header: bytes) -> "tuple[int, int, int, int]":
    """Validate a 16-byte header; returns ``(op, key_len, payload_len, crc)``.

    Raises :class:`WireProtocolError` on bad magic, version, opcode, or a
    length field past the protocol bounds — *before* any body is read, so a
    corrupted length cannot make a peer allocate unbounded memory.
    """
    if len(header) != HEADER.size:
        raise WireProtocolError(
            f"truncated header: {len(header)} of {HEADER.size} bytes"
        )
    magic, version, op, key_len, payload_len, checksum = HEADER.unpack(header)
    if magic != MAGIC:
        raise WireProtocolError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported protocol version {version} (this peer speaks "
            f"{WIRE_VERSION})"
        )
    if op not in _REQUEST_OPS and op not in _REPLY_OPS:
        raise WireProtocolError(f"unknown opcode 0x{op:02x}")
    if key_len > MAX_KEY_BYTES:
        raise WireProtocolError(f"key length {key_len} exceeds {MAX_KEY_BYTES}")
    if payload_len > MAX_PAYLOAD_BYTES:
        raise WireProtocolError(
            f"payload length {payload_len} exceeds {MAX_PAYLOAD_BYTES}"
        )
    return op, key_len, payload_len, checksum


def decode_frame(data: bytes) -> Frame:
    """Decode one complete frame from a byte string (tests, fuzzing)."""
    op, key_len, payload_len, checksum = decode_header(data[:HEADER.size])
    body = data[HEADER.size:]
    if len(body) != key_len + payload_len:
        raise WireProtocolError(
            f"frame body is {len(body)} bytes; header promised "
            f"{key_len + payload_len}"
        )
    key, payload = body[:key_len], body[key_len:]
    if zlib.crc32(key + payload) & 0xFFFFFFFF != checksum:
        raise WireProtocolError("checksum mismatch (corrupt frame)")
    return Frame(op=op, key=key, payload=payload)


async def read_frame(reader: "asyncio.StreamReader") -> Optional[Frame]:
    """Read one frame from an asyncio stream; ``None`` on clean EOF.

    Raises :class:`WireProtocolError` on malformed framing and lets the
    stream's own ``IncompleteReadError`` surface mid-frame disconnects.
    """
    import asyncio

    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise WireProtocolError(
            f"connection closed mid-header ({len(exc.partial)} bytes)"
        ) from exc
    op, key_len, payload_len, checksum = decode_header(header)
    try:
        body = await reader.readexactly(key_len + payload_len)
    except asyncio.IncompleteReadError as exc:
        raise WireProtocolError(
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{key_len + payload_len} body bytes)"
        ) from exc
    key, payload = body[:key_len], body[key_len:]
    if zlib.crc32(key + payload) & 0xFFFFFFFF != checksum:
        raise WireProtocolError("checksum mismatch (corrupt frame)")
    return Frame(op=op, key=key, payload=payload)


def read_frame_from_socket(
    sock: socket_module.socket, deadline: Optional[float] = None
) -> Frame:
    """Read one frame from a blocking socket (the client side).

    ``deadline`` (a ``time.monotonic()`` instant) bounds the *whole* frame,
    not each ``recv``: without it a half-dead server trickling one byte per
    just-under-the-timeout interval could hold the caller far beyond the
    configured timeout.  Expiry raises ``socket.timeout`` (an ``OSError``)
    so it rides the caller's fail-open path.

    Raises :class:`WireProtocolError` on malformed or truncated frames and
    propagates ``OSError``/``socket.timeout`` for the caller's fail-open
    handling.
    """
    header = _recv_exactly(sock, HEADER.size, deadline)
    op, key_len, payload_len, checksum = decode_header(header)
    body = _recv_exactly(sock, key_len + payload_len, deadline)
    key, payload = body[:key_len], body[key_len:]
    if zlib.crc32(key + payload) & 0xFFFFFFFF != checksum:
        raise WireProtocolError("checksum mismatch (corrupt frame)")
    return Frame(op=op, key=key, payload=payload)


def _recv_exactly(
    sock: socket_module.socket, count: int, deadline: Optional[float] = None
) -> bytes:
    chunks = []
    remaining = count
    while remaining > 0:
        if deadline is not None:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise socket_module.timeout(
                    "round-trip deadline exceeded mid-frame"
                )
            sock.settimeout(budget)
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# -- key codec -------------------------------------------------------------------

#: Separator between the two key components; neither a hex digest nor a
#: ``float.hex`` token can contain it.
_KEY_SEPARATOR = b"\n"


def encode_key(key: OPQKey) -> bytes:
    """Serialise an :data:`~repro.engine.fingerprint.OPQKey` for the wire."""
    return key[0].encode("utf-8") + _KEY_SEPARATOR + key[1].encode("utf-8")


def decode_key(data: bytes) -> OPQKey:
    """Inverse of :func:`encode_key`."""
    fingerprint, sep, token = data.partition(_KEY_SEPARATOR)
    if not sep:
        raise WireProtocolError(f"malformed cache key {data!r}")
    return (fingerprint.decode("utf-8"), token.decode("utf-8"))


# -- queue payload codec ---------------------------------------------------------


def encode_queue(queue: OptimalPriorityQueue) -> bytes:
    """Pickle a queue at the pinned cross-host protocol."""
    return pickle.dumps(queue, protocol=QUEUE_PICKLE_PROTOCOL)


def decode_queue(data: bytes) -> OptimalPriorityQueue:
    """Unpickle and type-check a queue payload.

    Raises :class:`WirePayloadError` for anything that does not unpickle into
    an :class:`~repro.algorithms.opq.OptimalPriorityQueue` — truncated blobs,
    foreign pickles, or garbage bytes.
    """
    try:
        value = pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - pickle raises a medley of types
        raise WirePayloadError(f"queue payload does not unpickle: {exc}") from exc
    if not isinstance(value, OptimalPriorityQueue):
        raise WirePayloadError(
            f"queue payload unpickled into {type(value).__name__}, "
            "not OptimalPriorityQueue"
        )
    return value
