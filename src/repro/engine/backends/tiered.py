"""Tiered cache storage: an in-process LRU in front of shared storage.

A bare :class:`~repro.engine.backends.remote.RemoteBackend` pays a network
round trip (plus an unpickle) on *every* hit, and a bare
:class:`~repro.engine.backends.sqlite.SQLiteBackend` pays file I/O across
processes.  :class:`TieredBackend` keeps both honest: a near tier (a
:class:`~repro.engine.backends.memory.MemoryBackend`, optionally LRU-bounded)
answers hot fingerprints by reference in-process, while the far tier (remote
or SQLite) shares warmth across the fleet.

Semantics:

* **read** — near tier first; on a far-tier hit the entry is *promoted* into
  the near tier so the next request is in-process.
* **write** — write-through: a freshly built queue lands in both tiers, so a
  single cold build on any host warms every sibling.
* **failure** — the far tier's own fail-open behaviour is preserved; the near
  tier keeps serving its residents even with the far tier gone.

Per-tier traffic is reported to telemetry as ``tiered.local_hits`` /
``tiered.remote_hits`` (far-tier promotions) / ``tiered.misses``, alongside
whatever the far tier reports for itself.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.backends.base import CacheBackend
from repro.engine.fingerprint import OPQKey
from repro.engine.telemetry import Telemetry


class TieredBackend:
    """A near (in-process) tier in front of a far (shared) tier.

    Parameters
    ----------
    local:
        The near tier; a :class:`~repro.engine.backends.memory.MemoryBackend`
        (optionally bounded) in every supported configuration.
    remote:
        The far tier: a :class:`~repro.engine.backends.remote.RemoteBackend`
        or a :class:`~repro.engine.backends.sqlite.SQLiteBackend`.
    telemetry:
        Optional registry for per-tier counters; assigning
        :attr:`telemetry` later (as :class:`~repro.engine.cache.PlanCache`
        does) propagates to the far tier when it can report telemetry of its
        own.
    """

    def __init__(
        self,
        local: CacheBackend,
        remote: CacheBackend,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self._telemetry: Optional[Telemetry] = None
        self.telemetry = telemetry
        self.local_hits = 0
        self.remote_hits = 0
        self.misses = 0

    # -- telemetry plumbing ----------------------------------------------------

    @property
    def telemetry(self) -> Optional[Telemetry]:
        return self._telemetry

    @telemetry.setter
    def telemetry(self, registry: Optional[Telemetry]) -> None:
        self._telemetry = registry
        if registry is not None and getattr(self.remote, "telemetry", False) is None:
            self.remote.telemetry = registry

    def _count(self, name: str) -> None:
        if self._telemetry is not None:
            self._telemetry.increment(name)

    # -- storage protocol ------------------------------------------------------

    @property
    def persistent(self) -> bool:
        """The tier pair survives restarts iff the far tier does."""
        return bool(getattr(self.remote, "persistent", False))

    @property
    def concurrent_safe(self) -> bool:
        """Safe for concurrent per-key leaders iff both tiers are.

        This is what keeps distinct fingerprints from serialising behind one
        another's far-tier network round trips in
        :class:`~repro.engine.cache.PlanCache`.
        """
        return bool(getattr(self.local, "concurrent_safe", False)) and bool(
            getattr(self.remote, "concurrent_safe", False)
        )

    @property
    def max_entries(self) -> Optional[int]:
        """The near tier's bound (the far tier bounds itself)."""
        return getattr(self.local, "max_entries", None)

    @property
    def evictions(self) -> int:
        """Combined evictions across both tiers (telemetry convention)."""
        return getattr(self.local, "evictions", 0) + getattr(
            self.remote, "evictions", 0
        )

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        queue = self.local.get(key)
        if queue is not None:
            self.local_hits += 1
            self._count("tiered.local_hits")
            return queue
        queue = self.remote.get(key)
        if queue is not None:
            # Promote: the next request for this fingerprint is in-process.
            self.local.put(key, queue)
            self.remote_hits += 1
            self._count("tiered.remote_hits")
            return queue
        self.misses += 1
        self._count("tiered.misses")
        return None

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        # Write-through: one cold build warms the whole fleet.
        self.local.put(key, queue)
        self.remote.put(key, queue)

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        self.local.merge(entries)
        self.remote.merge(entries)

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        # The near tier wins collisions: its entries are the objects already
        # being shared by reference in this process.
        merged = dict(self.remote.snapshot())
        merged.update(self.local.snapshot())
        return merged

    def delete(self, key: OPQKey) -> bool:
        """Purge ``key`` from *both* tiers.

        Order matters: the far tier goes first so a concurrent reader that
        races the purge cannot re-promote the entry into a near tier that
        was already cleaned (promotion's source is gone by the time the near
        tier is purged).  The far tier's own fail-open semantics are
        preserved (an unreachable far tier reports ``False`` there).
        """
        far = bool(self.remote.delete(key))
        near = bool(self.local.delete(key))
        return near or far

    def clear(self) -> None:
        self.local.clear()
        self.remote.clear()

    def close(self) -> None:
        self.local.close()
        self.remote.close()

    def __len__(self) -> int:
        # Write-through keeps the near tier a subset of the far tier, minus
        # far-tier outages; the larger count is the better estimate.
        return max(len(self.local), len(self.remote))

    def __contains__(self, key: OPQKey) -> bool:
        return key in self.local or key in self.remote

    # -- observability ---------------------------------------------------------

    def extra_metrics(self) -> Dict[str, float]:
        """Near-tier gauges plus whatever the far tier exposes."""
        metrics = {"tiered.local_entries": float(len(self.local))}
        far = getattr(self.remote, "extra_metrics", None)
        if far is not None:
            metrics.update(far())
        return metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TieredBackend(local={type(self.local).__name__}, "
            f"remote={type(self.remote).__name__})"
        )
