"""The storage contract behind :class:`~repro.engine.cache.PlanCache`.

The plan cache's *policy* (hit/miss counters, build timing, thread safety,
the ``QueueFactory`` signature) is independent of *where* queues live.  This
module pins the storage contract as a :class:`typing.Protocol` so the cache
can delegate to interchangeable backends: the in-process
:class:`~repro.engine.backends.memory.MemoryBackend` (the historical
behaviour) or the persistent
:class:`~repro.engine.backends.sqlite.SQLiteBackend` that survives restarts
and is shared between processes.

Backends store immutable values: the queue for a given
:data:`~repro.engine.fingerprint.OPQKey` is fully determined by the key
(Algorithm 2 is deterministic), so a stored entry is never *updated* in
place.  Entries can however become *irrelevant*: when a menu is recalibrated
to a new epoch its old keys will never be asked for again, so backends also
speak targeted per-key :meth:`CacheBackend.delete` — the drift-driven
invalidation path — alongside insertion, lookup and eviction.
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, runtime_checkable

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.fingerprint import OPQKey


@runtime_checkable
class CacheBackend(Protocol):
    """Storage interface for optimal-priority-queue cache entries.

    Implementations need not be thread-safe: :class:`~repro.engine.cache.PlanCache`
    serialises every storage call under its own lock.  They must, however,
    treat entries as immutable — two stores under the same key always carry
    equivalent queues.
    """

    #: Whether entries survive process restarts (drives warm-start reporting).
    persistent: bool

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        """Return the stored queue for ``key``, or ``None`` on a miss.

        A successful lookup refreshes the entry's recency for eviction
        purposes (LRU semantics when the backend is bounded).
        """
        ...

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        """Store ``queue`` under ``key``, evicting old entries if bounded."""
        ...

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        """Adopt ``entries``, keeping existing values on key collisions."""
        ...

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        """A picklable dict of every stored entry (for worker shipping)."""
        ...

    def delete(self, key: OPQKey) -> bool:
        """Drop one stored entry; return whether anything was removed.

        Distributed backends treat deletion as best-effort fan-out (remove
        from every replica/tier that answers) and stay fail-open: an
        unreachable store is reported as ``False``, never an exception.
        """
        ...

    def clear(self) -> None:
        """Drop every stored entry."""
        ...

    def close(self) -> None:
        """Release external resources (no-op for in-memory backends)."""
        ...

    def __len__(self) -> int:
        """Number of stored entries."""
        ...

    def __contains__(self, key: OPQKey) -> bool:
        """Whether ``key`` is currently stored."""
        ...
