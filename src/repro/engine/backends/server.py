"""The shared plan-cache server behind ``repro cached``.

A fleet of ``repro serve`` hosts each kept a private plan cache; every host
paid its own cold Algorithm 2 builds even when a sibling had already planned
the identical ``(bin set, threshold)`` fingerprint.  :class:`CacheServer` is
the fleet's shared warmth: a dependency-free asyncio TCP key-value store
speaking the length-prefixed protocol of
:mod:`repro.engine.backends.wire` (GET/PUT/DELETE/CONTAINS/CLEAR/STATS/PING).

The server is deliberately dumb — it stores opaque byte payloads under opaque
byte keys and never unpickles anything, so a hostile or corrupt payload can
harm only the client that stored it (clients validate on read and fail open).
Values are immutable by construction (a queue is a deterministic function of
its key), so concurrent PUTs can only race to store equivalent bytes and
last-writer-wins is harmless.

Protocol errors never crash the serving loop: a malformed frame answers one
``ERROR`` reply and closes that connection (its framing is unrecoverable);
every other connection, and the server itself, keeps going.

With ``persist_path`` set (the ``repro cached --persist <path>`` flag), the
in-memory store is backed by a
:class:`~repro.engine.backends.sqlite.SQLiteBackend` through its raw-payload
API: every PUT/DELETE/CLEAR/eviction writes through, and a restarting server
reloads its keys (in LRU order) before accepting connections — the fleet's
warmth survives the restart.  The server still never unpickles anything; it
moves the clients' opaque blobs in and out of the same SQLite schema the
``sqlite:<path>`` backend uses, so either side can read a file the other
wrote.  Persistence is fail-open like everything else: a failing disk write
counts ``persist_errors`` in STATS and the entry stays served from memory.
"""

from __future__ import annotations

import asyncio
import json
import sqlite3
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.engine.backends.sqlite import SQLiteBackend
from repro.engine.backends.wire import (
    OP_CLEAR,
    OP_CONTAINS,
    OP_DELETE,
    OP_GET,
    OP_PING,
    OP_PUT,
    OP_STATS,
    REPLY_ERROR,
    REPLY_MISS,
    REPLY_OK,
    REPLY_PONG,
    REPLY_STATS,
    REPLY_VALUE,
    Frame,
    WireProtocolError,
    decode_key,
    encode_key,
    encode_frame,
    read_frame,
)


class CacheServer:
    """An asyncio TCP key-value store for pickled plan queues.

    Parameters
    ----------
    max_entries:
        Optional LRU bound on stored keys; a GET refreshes recency, a PUT past
        the bound evicts the least recently used entry.  ``None`` (the
        default) stores everything.
    persist_path:
        Optional SQLite file backing the in-memory store.  Existing entries
        are reloaded at construction (so a restarted server keeps the
        fleet's warmth), and every mutation writes through.  Only keys that
        parse as cache keys are persisted — foreign byte keys stay
        memory-only, since the SQLite schema stores the two key components
        as text columns.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        persist_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive; got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._bytes_stored = 0
        self._started = time.monotonic()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.deletes = 0
        self.evictions = 0
        self.frame_errors = 0
        self.connections = 0
        #: Persistence write-throughs that failed (the entry stays in memory).
        self.persist_errors = 0
        #: Keys reloaded from the persistence file at construction.
        self.restored_keys = 0
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        #: Kept separate from the live handle so stats() still reports a
        #: persistent server after close() has released the connection.
        self.persist_path = Path(persist_path) if persist_path is not None else None
        self._persist: Optional[SQLiteBackend] = None
        #: Single worker so write-behind persistence keeps mutation order;
        #: SQLite writes must never run on the serving event loop.
        self._persist_executor: Optional[ThreadPoolExecutor] = None
        if self.persist_path is not None:
            self._persist = SQLiteBackend(self.persist_path)
            self._persist_executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="cache-persist"
            )
            self._restore()
            self._evict()

    def _restore(self) -> None:
        """Reload persisted entries (LRU order) into the in-memory store."""
        assert self._persist is not None
        for key, payload in self._persist.payloads():
            wire_key = encode_key(key)
            self._entries[wire_key] = payload
            self._bytes_stored += len(payload)
            self.restored_keys += 1

    # -- persistence write-through ---------------------------------------------

    # Mutations submit to the single persistence worker (FIFO, so disk sees
    # the same order as memory) and return immediately: the event loop never
    # waits on SQLite.  close() drains the queue before releasing the file.

    def _persist_put(self, wire_key: bytes, payload: bytes) -> None:
        if self._persist is None or self._persist_executor is None:
            return
        self._persist_executor.submit(
            self._persist_put_sync, self._persist, wire_key, payload
        )

    def _persist_put_sync(
        self, persist: SQLiteBackend, wire_key: bytes, payload: bytes
    ) -> None:
        try:
            persist.put_payload(decode_key(wire_key), payload)
        except (WireProtocolError, sqlite3.Error):
            # Foreign keys are memory-only; disk failures are fail-open.
            self.persist_errors += 1

    def _persist_delete(self, wire_key: bytes) -> None:
        if self._persist is None or self._persist_executor is None:
            return
        self._persist_executor.submit(
            self._persist_delete_sync, self._persist, wire_key
        )

    def _persist_delete_sync(
        self, persist: SQLiteBackend, wire_key: bytes
    ) -> None:
        try:
            persist.delete(decode_key(wire_key))
        except (WireProtocolError, sqlite3.Error):
            self.persist_errors += 1

    def _persist_clear(self) -> None:
        if self._persist is None or self._persist_executor is None:
            return
        self._persist_executor.submit(self._persist_clear_sync, self._persist)

    def _persist_clear_sync(self, persist: SQLiteBackend) -> None:
        try:
            persist.clear()
        except sqlite3.Error:
            self.persist_errors += 1

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting and release the listening socket.

        In-flight request frames finish answering; idle connections see EOF
        on their next read.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._persist is not None:
            persist, self._persist = self._persist, None
            executor, self._persist_executor = self._persist_executor, None

            def _drain_and_close() -> None:
                if executor is not None:
                    executor.shutdown(wait=True)
                persist.close()

            # Pending write-behind work and the SQLite close both block;
            # finish them off-loop so in-flight connections keep draining.
            await asyncio.get_running_loop().run_in_executor(
                None, _drain_and_close
            )

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except WireProtocolError as exc:
                    # The stream is desynchronised; answer once and hang up.
                    self.frame_errors += 1
                    writer.write(
                        encode_frame(REPLY_ERROR, payload=str(exc).encode("utf-8"))
                    )
                    await writer.drain()
                    return
                if frame is None:
                    return
                writer.write(self._dispatch(frame))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    # -- request dispatch ------------------------------------------------------

    def _dispatch(self, frame: Frame) -> bytes:
        if frame.op == OP_GET:
            value = self._entries.get(frame.key)
            if value is None:
                self.misses += 1
                return encode_frame(REPLY_MISS)
            self._entries.move_to_end(frame.key)
            self.hits += 1
            return encode_frame(REPLY_VALUE, payload=value)
        if frame.op == OP_PUT:
            old = self._entries.get(frame.key)
            if old is not None:
                self._bytes_stored -= len(old)
            self._entries[frame.key] = frame.payload
            self._entries.move_to_end(frame.key)
            self._bytes_stored += len(frame.payload)
            self.puts += 1
            self._persist_put(frame.key, frame.payload)
            self._evict()
            return encode_frame(REPLY_OK)
        if frame.op == OP_DELETE:
            value = self._entries.pop(frame.key, None)
            if value is None:
                return encode_frame(REPLY_MISS)
            self._bytes_stored -= len(value)
            self.deletes += 1
            self._persist_delete(frame.key)
            return encode_frame(REPLY_OK)
        if frame.op == OP_CONTAINS:
            return encode_frame(
                REPLY_OK if frame.key in self._entries else REPLY_MISS
            )
        if frame.op == OP_CLEAR:
            self._entries.clear()
            self._bytes_stored = 0
            self._persist_clear()
            return encode_frame(REPLY_OK)
        if frame.op == OP_STATS:
            return encode_frame(
                REPLY_STATS, payload=json.dumps(self.stats()).encode("utf-8")
            )
        if frame.op == OP_PING:
            return encode_frame(REPLY_PONG)
        # decode_header already rejects unknown opcodes; a reply opcode sent
        # as a request lands here.
        self.frame_errors += 1
        return encode_frame(
            REPLY_ERROR, payload=f"opcode 0x{frame.op:02x} is not a request".encode()
        )

    def _evict(self) -> None:
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            key, value = self._entries.popitem(last=False)
            self._bytes_stored -= len(value)
            self.evictions += 1
            # A bounded persistent server stays bounded on disk too.
            self._persist_delete(key)

    # -- statistics ------------------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """The STATS document: keys, bytes, traffic counters, uptime."""
        return {
            "keys": len(self._entries),
            "bytes": self._bytes_stored,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "deletes": self.deletes,
            "evictions": self.evictions,
            "frame_errors": self.frame_errors,
            "connections": self.connections,
            "persisted": int(self.persist_path is not None),
            "persist_errors": self.persist_errors,
            "restored_keys": self.restored_keys,
            "uptime_seconds": time.monotonic() - self._started,
        }

    def __len__(self) -> int:
        return len(self._entries)


async def run_cache_server(
    host: str,
    port: int,
    max_entries: Optional[int] = None,
    persist_path: Optional[Union[str, Path]] = None,
    stop: Optional["asyncio.Event"] = None,
    on_ready: Optional[Callable[[CacheServer], None]] = None,
) -> CacheServer:
    """Start a server, run until ``stop`` is set, close cleanly.

    The ``repro cached`` CLI entry point; ``on_ready(server)`` fires once the
    socket is bound (used to print the listening address).  Returns the
    closed server so callers can read final statistics.
    """
    loop = asyncio.get_running_loop()
    # Construction restores persisted entries from SQLite — blocking work
    # that must not run on the loop once other coroutines are scheduled.
    server = await loop.run_in_executor(
        None,
        lambda: CacheServer(max_entries=max_entries, persist_path=persist_path),
    )
    await server.start(host, port)
    if on_ready is not None:
        on_ready(server)
    if stop is None:  # pragma: no cover - interactive use only
        stop = asyncio.Event()  # never set: serve until cancelled
    try:
        await stop.wait()
    finally:
        await server.close()
    return server


class CacheServerThread:
    """A cache server on a private event loop in a daemon thread.

    Test and benchmark harness: boots synchronously, exposes the bound
    address, and tears down on :meth:`stop`.  The underlying
    :class:`CacheServer` is reachable as :attr:`server` for counter
    assertions after the loop has stopped.
    """

    def __init__(
        self,
        max_entries: Optional[int] = None,
        persist_path: Optional[Union[str, Path]] = None,
    ) -> None:
        self.server = CacheServer(max_entries=max_entries, persist_path=persist_path)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=10):  # pragma: no cover - defensive
            raise RuntimeError("cache server thread failed to start")

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.close()

    @property
    def host(self) -> str:
        assert self.server.host is not None
        return self.server.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def stop(self) -> None:
        """Shut the server down and join the thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10)

    def __enter__(self) -> "CacheServerThread":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.stop()
