"""Pluggable storage backends for the plan cache.

:class:`~repro.engine.cache.PlanCache` keeps its policy (counters, locking,
the ``QueueFactory`` signature) and delegates storage to a
:class:`~repro.engine.backends.base.CacheBackend`:

* :class:`~repro.engine.backends.memory.MemoryBackend` — the in-process
  ordered-dict store with optional LRU eviction (the default).
* :class:`~repro.engine.backends.sqlite.SQLiteBackend` — a persistent SQLite
  store shared across processes and restarts, so long-lived worker fleets
  begin warm.
* :class:`~repro.engine.backends.remote.RemoteBackend` — a networked store on
  a shared ``repro cached`` server, so multi-*host* fleets warm one another;
  unreachable or corrupt servers fail open into local rebuilds.
* :class:`~repro.engine.backends.sharded.ShardedBackend` — a consistent-hash
  ring over several ``repro cached`` servers with configurable replication:
  reads fail over to the next replica, writes land on every replica, and the
  whole ring going dark still fails open into local rebuilds.
* :class:`~repro.engine.backends.tiered.TieredBackend` — an in-process LRU in
  front of a remote, sharded, or SQLite far tier: hot fingerprints stay
  in-process, cold builds write through to the fleet.

:func:`open_backend` turns a compact spec string (``"memory"``,
``"memory:128"``, ``"sqlite:plans.db"``, ``"remote://host:port"``,
``"sharded://h1:p1,h2:p2,h3:p3?replicas=2"``,
``"tiered:memory:128+remote://host:port"``) into a backend instance; the
service layer and the ``repro serve`` CLI use it so deployments pick a store
with a flag instead of code.
"""

from __future__ import annotations

from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.core.errors import SladeError
from repro.engine.backends.base import CacheBackend
from repro.engine.backends.memory import MemoryBackend
from repro.engine.backends.remote import RemoteBackend
from repro.engine.backends.sharded import HashRing, ShardedBackend
from repro.engine.backends.sqlite import SQLiteBackend
from repro.engine.backends.tiered import TieredBackend
from repro.engine.telemetry import Telemetry

#: File suffixes treated as SQLite databases by :func:`open_backend`.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class BackendSpecError(SladeError, ValueError):
    """A cache backend spec string does not name a known backend.

    Subclasses :class:`ValueError` for callers that treat spec parsing as
    input validation, and :class:`~repro.core.errors.SladeError` so the CLI's
    uniform error handling reports it as a one-liner instead of a traceback.
    """


def _parse_remote_spec(
    spec: str, telemetry: Optional[Telemetry]
) -> RemoteBackend:
    """Build a :class:`RemoteBackend` from ``remote://host:port[?...]``.

    Query parameters: ``timeout`` (seconds, float) and ``pool`` (idle
    connections kept, int).
    """
    split = urlsplit(spec)
    if split.scheme != "remote":
        raise BackendSpecError(f"not a remote backend spec: {spec!r}")
    if not split.hostname or split.port is None:
        raise BackendSpecError(
            f"remote backend spec needs host and port: 'remote://host:port', "
            f"got {spec!r}"
        )
    params = {
        key: values[-1] for key, values in parse_qs(split.query).items()
    }
    kwargs = {}
    try:
        if "timeout" in params:
            kwargs["timeout"] = float(params.pop("timeout"))
        if "pool" in params:
            kwargs["pool_size"] = int(params.pop("pool"))
    except ValueError as exc:
        raise BackendSpecError(f"invalid remote backend option: {exc}") from None
    if params:
        unknown = ", ".join(sorted(params))
        raise BackendSpecError(
            f"unknown remote backend option(s) {unknown} in {spec!r}"
        )
    return RemoteBackend(
        split.hostname, split.port, telemetry=telemetry, **kwargs
    )


def _parse_sharded_spec(
    spec: str, telemetry: Optional[Telemetry]
) -> ShardedBackend:
    """Build a :class:`ShardedBackend` from ``sharded://h1:p1,h2:p2[?...]``.

    Query parameters: ``replicas`` (ring successors per entry, default 2),
    ``vnodes`` (virtual nodes per endpoint, default 128), and the per-shard
    client options ``timeout`` / ``pool``.

    ``urlsplit`` cannot host a comma-separated endpoint list, so the spec is
    parsed by hand.
    """
    body = spec[len("sharded://"):]
    body, _, query = body.partition("?")
    endpoints = []
    for token in body.split(","):
        token = token.strip()
        if not token:
            continue
        host, sep, port_text = token.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            port = -1
        if not sep or not host or not (1 <= port <= 65535):
            raise BackendSpecError(
                f"sharded backend endpoints must be 'host:port'; got {token!r} "
                f"in {spec!r}"
            )
        endpoints.append((host, port))
    if not endpoints:
        raise BackendSpecError(
            f"sharded backend spec needs at least one endpoint: "
            f"'sharded://host:port[,host:port...]', got {spec!r}"
        )
    params = {key: values[-1] for key, values in parse_qs(query).items()}
    kwargs = {}
    try:
        if "replicas" in params:
            kwargs["replicas"] = int(params.pop("replicas"))
        if "vnodes" in params:
            kwargs["vnodes"] = int(params.pop("vnodes"))
        if "timeout" in params:
            kwargs["timeout"] = float(params.pop("timeout"))
        if "pool" in params:
            kwargs["pool_size"] = int(params.pop("pool"))
    except ValueError as exc:
        raise BackendSpecError(f"invalid sharded backend option: {exc}") from None
    if params:
        unknown = ", ".join(sorted(params))
        raise BackendSpecError(
            f"unknown sharded backend option(s) {unknown} in {spec!r}"
        )
    return ShardedBackend(endpoints, telemetry=telemetry, **kwargs)


def _parse_tiered_spec(
    spec: str, max_entries: Optional[int], telemetry: Optional[Telemetry]
) -> TieredBackend:
    """Build a :class:`TieredBackend` from ``tiered:<near>+<far>``.

    The near tier must be a memory spec (``memory`` / ``memory:<N>``); the
    far tier is any non-tiered spec (``remote://...``, ``sqlite:<path>``).
    ``max_entries`` bounds the near tier.
    """
    body = spec[len("tiered:"):]
    near_spec, sep, far_spec = body.partition("+")
    if not sep or not near_spec or not far_spec:
        raise BackendSpecError(
            f"tiered backend spec needs two tiers: 'tiered:<memory>+<far>', "
            f"got {spec!r}"
        )
    # Validate the near spec BEFORE constructing anything: a sqlite near
    # spec would otherwise create the database file (and leak its
    # connection) just to be rejected.
    if near_spec != "memory" and not near_spec.startswith("memory:"):
        raise BackendSpecError(
            f"the near tier of a tiered backend must be a memory spec; "
            f"got {near_spec!r}"
        )
    near = open_backend(near_spec, max_entries=max_entries)
    try:
        far = open_backend(far_spec, telemetry=telemetry)
        if isinstance(far, (MemoryBackend, TieredBackend)):
            far.close()
            raise BackendSpecError(
                f"the far tier of a tiered backend must be remote, sharded, "
                f"or sqlite; got {far_spec!r}"
            )
    except BaseException:
        near.close()
        raise
    return TieredBackend(near, far, telemetry=telemetry)


def open_backend(
    spec: Optional[str] = None,
    max_entries: Optional[int] = None,
    telemetry: Optional[Telemetry] = None,
) -> CacheBackend:
    """Build a cache backend from a spec string.

    Supported forms:

    ``None`` or ``"memory"``
        An unbounded (or ``max_entries``-bounded) :class:`MemoryBackend`.
    ``"memory:<N>"``
        A :class:`MemoryBackend` bounded to ``N`` entries.
    ``"sqlite:<path>"``
        A :class:`SQLiteBackend` at ``path``.
    ``"<path>.db"`` / ``"<path>.sqlite"`` / ``"<path>.sqlite3"``
        Shorthand for the SQLite form.
    ``"remote://<host>:<port>[?timeout=<s>&pool=<n>]"``
        A :class:`RemoteBackend` against a ``repro cached`` server.
    ``"sharded://<h>:<p>,<h>:<p>[,...][?replicas=<r>&vnodes=<v>&timeout=<s>&pool=<n>]"``
        A :class:`ShardedBackend`: a consistent-hash ring over several
        ``repro cached`` servers, each entry replicated to ``replicas`` ring
        successors, reads failing over between them.
    ``"tiered:<memory-spec>+<far-spec>"``
        A :class:`TieredBackend`: an in-process memory tier (bounded by its
        own ``memory:<N>`` form or by ``max_entries``) in front of a remote,
        sharded, or SQLite far tier, e.g.
        ``tiered:memory:128+sharded://10.0.0.7:9009,10.0.0.8:9009``.

    ``telemetry`` is forwarded to backends that report per-tier counters
    (remote, sharded, and tiered); memory and SQLite stores ignore it.

    Raises
    ------
    BackendSpecError
        If the spec matches none of the forms above.
    """
    # Constructor-level validation failures (e.g. a non-positive bound) are
    # spec problems from the caller's point of view; surface them uniformly.
    try:
        if spec is None or spec == "memory":
            return MemoryBackend(max_entries=max_entries)
        if spec.startswith("memory:"):
            raw = spec[len("memory:"):]
            try:
                bound = int(raw)
            except ValueError:
                raise BackendSpecError(
                    f"invalid memory backend bound: {raw!r}"
                ) from None
            return MemoryBackend(max_entries=bound)
        if spec.startswith("sqlite:"):
            path = spec[len("sqlite:"):]
            if not path:
                raise BackendSpecError(
                    "sqlite backend spec needs a path: 'sqlite:<path>'"
                )
            return SQLiteBackend(path, max_entries=max_entries)
        if spec.startswith("remote://"):
            return _parse_remote_spec(spec, telemetry)
        if spec.startswith("sharded://"):
            return _parse_sharded_spec(spec, telemetry)
        if spec.startswith("tiered:"):
            return _parse_tiered_spec(spec, max_entries, telemetry)
        # Last: the suffix shorthand, so explicit prefixes always win (a
        # tiered spec may itself end in ".db").
        if spec.endswith(_SQLITE_SUFFIXES):
            return SQLiteBackend(spec, max_entries=max_entries)
    except BackendSpecError:
        raise
    except ValueError as exc:
        raise BackendSpecError(f"invalid cache backend spec {spec!r}: {exc}") from exc
    raise BackendSpecError(
        f"unknown cache backend spec {spec!r}; expected 'memory', 'memory:<N>', "
        f"'sqlite:<path>', a path ending in {', '.join(_SQLITE_SUFFIXES)}, "
        f"'remote://host:port', 'sharded://host:port,host:port', or "
        f"'tiered:<memory>+<far>'"
    )


__all__ = [
    "BackendSpecError",
    "CacheBackend",
    "HashRing",
    "MemoryBackend",
    "RemoteBackend",
    "ShardedBackend",
    "SQLiteBackend",
    "TieredBackend",
    "open_backend",
]
