"""Pluggable storage backends for the plan cache.

:class:`~repro.engine.cache.PlanCache` keeps its policy (counters, locking,
the ``QueueFactory`` signature) and delegates storage to a
:class:`~repro.engine.backends.base.CacheBackend`:

* :class:`~repro.engine.backends.memory.MemoryBackend` — the in-process
  ordered-dict store with optional LRU eviction (the default).
* :class:`~repro.engine.backends.sqlite.SQLiteBackend` — a persistent SQLite
  store shared across processes and restarts, so long-lived worker fleets
  begin warm.

:func:`open_backend` turns a compact spec string (``"memory"``,
``"memory:128"``, ``"sqlite:plans.db"``) into a backend instance; the service
layer and the ``repro serve`` CLI use it so deployments pick a store with a
flag instead of code.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import SladeError
from repro.engine.backends.base import CacheBackend
from repro.engine.backends.memory import MemoryBackend
from repro.engine.backends.sqlite import SQLiteBackend

#: File suffixes treated as SQLite databases by :func:`open_backend`.
_SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")


class BackendSpecError(SladeError, ValueError):
    """A cache backend spec string does not name a known backend.

    Subclasses :class:`ValueError` for callers that treat spec parsing as
    input validation, and :class:`~repro.core.errors.SladeError` so the CLI's
    uniform error handling reports it as a one-liner instead of a traceback.
    """


def open_backend(
    spec: Optional[str] = None, max_entries: Optional[int] = None
) -> CacheBackend:
    """Build a cache backend from a spec string.

    Supported forms:

    ``None`` or ``"memory"``
        An unbounded (or ``max_entries``-bounded) :class:`MemoryBackend`.
    ``"memory:<N>"``
        A :class:`MemoryBackend` bounded to ``N`` entries.
    ``"sqlite:<path>"``
        A :class:`SQLiteBackend` at ``path``.
    ``"<path>.db"`` / ``"<path>.sqlite"`` / ``"<path>.sqlite3"``
        Shorthand for the SQLite form.

    Raises
    ------
    BackendSpecError
        If the spec matches none of the forms above.
    """
    # Constructor-level validation failures (e.g. a non-positive bound) are
    # spec problems from the caller's point of view; surface them uniformly.
    try:
        if spec is None or spec == "memory":
            return MemoryBackend(max_entries=max_entries)
        if spec.startswith("memory:"):
            raw = spec[len("memory:"):]
            try:
                bound = int(raw)
            except ValueError:
                raise BackendSpecError(
                    f"invalid memory backend bound: {raw!r}"
                ) from None
            return MemoryBackend(max_entries=bound)
        if spec.startswith("sqlite:"):
            path = spec[len("sqlite:"):]
            if not path:
                raise BackendSpecError(
                    "sqlite backend spec needs a path: 'sqlite:<path>'"
                )
            return SQLiteBackend(path, max_entries=max_entries)
        if spec.endswith(_SQLITE_SUFFIXES):
            return SQLiteBackend(spec, max_entries=max_entries)
    except BackendSpecError:
        raise
    except ValueError as exc:
        raise BackendSpecError(f"invalid cache backend spec {spec!r}: {exc}") from exc
    raise BackendSpecError(
        f"unknown cache backend spec {spec!r}; expected 'memory', 'memory:<N>', "
        f"'sqlite:<path>', or a path ending in {', '.join(_SQLITE_SUFFIXES)}"
    )


__all__ = [
    "BackendSpecError",
    "CacheBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "open_backend",
]
