"""The networked cache backend: a fleet shares one plan cache.

:class:`RemoteBackend` implements the
:class:`~repro.engine.backends.base.CacheBackend` protocol against a
``repro cached`` server (:mod:`repro.engine.backends.server`) over the
length-prefixed binary protocol of :mod:`repro.engine.backends.wire`.

Design rules, in priority order:

1. **Fail open.**  The cache is an accelerator, never a dependency: a server
   that is down, slow past the client timeout, or answering corrupt bytes is
   treated as a cache *miss* — the caller rebuilds locally and the serving
   path never sees an error.  Every degradation increments a telemetry
   counter (``remote_cache.fail_open`` / ``remote_cache.corrupt_payloads``)
   so operators see the fleet going cold before users feel it.
2. **Validate on read.**  Payloads are checksummed at the frame layer and
   type-checked after unpickling; a corrupt entry is deleted from the server
   (best effort) so one bad blob cannot poison every host's rebuild forever.
3. **No in-process memoisation.**  The backend is pure shared storage — every
   ``get`` is a real round trip.  Layer a
   :class:`~repro.engine.backends.tiered.TieredBackend` in front to keep hot
   fingerprints in-process (``tiered:memory+remote://...``).

Connections are pooled (a small LIFO stack guarded by a lock, so the backend
is safe under :class:`~repro.engine.cache.PlanCache`'s own locking *and* for
lock-free statistic probes).  A request that fails on a *reused* connection
is retried once on a fresh one, so a restarted server costs the fleet one
round trip, not a cold cache.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from typing import Dict, List, Optional

from repro.algorithms.opq import OptimalPriorityQueue
from repro.engine.fingerprint import OPQKey
from repro.engine.telemetry import REMOTE_RTT_BUCKETS, Telemetry
from repro.engine.backends.wire import (
    OP_CLEAR,
    OP_CONTAINS,
    OP_DELETE,
    OP_GET,
    OP_PING,
    OP_PUT,
    OP_STATS,
    REPLY_MISS,
    REPLY_OK,
    REPLY_PONG,
    REPLY_STATS,
    REPLY_VALUE,
    Frame,
    WirePayloadError,
    WireProtocolError,
    encode_frame,
    encode_key,
    encode_queue,
    decode_queue,
    read_frame_from_socket,
)

#: Default client-side timeout for connect and per-frame reads (seconds).
DEFAULT_TIMEOUT = 1.0

#: Default number of idle connections kept per backend.
DEFAULT_POOL_SIZE = 2

#: Everything that makes a round trip fail open rather than raise.
_FAIL_OPEN_ERRORS = (OSError, WireProtocolError, EOFError)


class _SocketPool:
    """A small LIFO pool of connected sockets with its own lock."""

    def __init__(self, host: str, port: int, timeout: float, size: int) -> None:
        self._address = (host, port)
        self._timeout = timeout
        self._size = size
        self._lock = threading.Lock()
        self._idle: List[socket.socket] = []

    def acquire(self) -> "tuple[socket.socket, bool]":
        """An open socket plus whether it was reused from the pool."""
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        return self.connect(), False

    def connect(self) -> socket.socket:
        sock = socket.create_connection(self._address, timeout=self._timeout)
        sock.settimeout(self._timeout)
        return sock

    def release(self, sock: socket.socket) -> None:
        with self._lock:
            if len(self._idle) < self._size:
                self._idle.append(sock)
                return
        _close_quietly(sock)

    def close_all(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for sock in idle:
            _close_quietly(sock)


def _close_quietly(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:  # pragma: no cover - close never matters
        pass


class RemoteBackend:
    """Plan-cache storage on a shared ``repro cached`` server.

    Parameters
    ----------
    host / port:
        The cache server's address.
    timeout:
        Connect and per-frame read timeout in seconds; a server slower than
        this fails open into a local rebuild.
    pool_size:
        Idle connections kept for reuse.
    telemetry:
        Optional registry for the tier counters (``remote_cache.hits`` /
        ``.misses`` / ``.fail_open`` / ``.corrupt_payloads``) and the
        ``remote_cache.round_trip_seconds`` latency histogram.
        :class:`~repro.engine.cache.PlanCache` attaches its own registry when
        the backend was built without one.
    """

    #: Entries live on the server, so they survive *this* process's restarts.
    persistent = True

    #: The socket pool carries its own lock and the counters are advisory,
    #: so :class:`~repro.engine.cache.PlanCache` may drive this backend from
    #: concurrent per-key leaders without extra serialisation.
    concurrent_safe = True

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = DEFAULT_TIMEOUT,
        pool_size: int = DEFAULT_POOL_SIZE,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"timeout must be positive; got {timeout}")
        if pool_size < 1:
            raise ValueError(f"pool_size must be positive; got {pool_size}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.telemetry = telemetry
        #: Client-side LRU evictions never happen here (the server bounds
        #: itself); kept for the ``CacheBackend`` counter convention.
        self.evictions = 0
        #: Round trips that degraded to a miss (server down/slow/desynced).
        self.fail_opens = 0
        #: Payloads that framed correctly but did not unpickle into a queue.
        self.corrupt_payloads = 0
        self.remote_hits = 0
        self.remote_misses = 0
        self._pool = _SocketPool(host, port, timeout, pool_size)

    # -- the round trip --------------------------------------------------------

    def _roundtrip(self, op: int, key: bytes = b"", payload: bytes = b"") -> Optional[Frame]:
        """Send one request frame and read its reply.

        Returns ``None`` when the server cannot be reached or answers
        garbage — the fail-open path.  A failure on a *reused* pooled
        connection is retried once on a fresh connection, so a restarted
        server does not surface as a spurious miss.
        """
        try:
            # An oversized key/payload raises before touching the wire; that
            # too must degrade to a miss, not surface as a request error.
            request = encode_frame(op, key, payload)
        except WireProtocolError:
            self._count_fail_open()
            return None
        started = time.perf_counter()
        try:
            sock, reused = self._pool.acquire()
        except _FAIL_OPEN_ERRORS:
            self._count_fail_open()
            return None
        try:
            reply = self._exchange(sock, request)
        except _FAIL_OPEN_ERRORS:
            _close_quietly(sock)
            if not reused:
                self._count_fail_open()
                return None
            try:
                sock = self._pool.connect()
            except _FAIL_OPEN_ERRORS:
                self._count_fail_open()
                return None
            try:
                reply = self._exchange(sock, request)
            except _FAIL_OPEN_ERRORS:
                _close_quietly(sock)
                self._count_fail_open()
                return None
        self._pool.release(sock)
        if self.telemetry is not None:
            self.telemetry.observe(
                "remote_cache.round_trip_seconds",
                time.perf_counter() - started,
                buckets=REMOTE_RTT_BUCKETS,
            )
        return reply

    def _exchange(self, sock: socket.socket, request: bytes) -> Frame:
        # One deadline for the whole exchange: a server trickling bytes just
        # under the per-recv timeout must still fail open at ~self.timeout.
        deadline = time.monotonic() + self.timeout
        sock.settimeout(self.timeout)
        try:
            sock.sendall(request)
            return read_frame_from_socket(sock, deadline=deadline)
        finally:
            # The reader shrinks the socket timeout toward the deadline;
            # restore it so a pooled connection starts its next exchange
            # with the full budget.
            try:
                sock.settimeout(self.timeout)
            except OSError:  # pragma: no cover - socket already dead
                pass

    def _count_fail_open(self) -> None:
        self.fail_opens += 1
        if self.telemetry is not None:
            self.telemetry.increment("remote_cache.fail_open")

    # -- storage protocol ------------------------------------------------------

    def get(self, key: OPQKey) -> Optional[OptimalPriorityQueue]:
        return self.try_get(key)[0]

    def try_get(self, key: OPQKey) -> "tuple[Optional[OptimalPriorityQueue], bool]":
        """``(queue, reachable)``: a miss on a live server is ``(None, True)``.

        The sharded backend needs the distinction a plain :meth:`get` hides:
        an unreachable shard ``(None, False)`` triggers fail-over to the next
        replica, while a reachable shard that simply lacks (or stored a
        corrupt copy of) the entry ``(None, True)`` is a candidate for read
        repair.
        """
        wire_key = encode_key(key)
        reply = self._roundtrip(OP_GET, wire_key)
        if reply is None:
            return None, False
        if reply.op == REPLY_MISS:
            self._count("remote_cache.misses")
            self.remote_misses += 1
            return None, True
        if reply.op != REPLY_VALUE:
            # An ERROR (or unexpected) reply is a server-side refusal; treat
            # it exactly like an unreachable server.
            self._count_fail_open()
            return None, False
        try:
            queue = decode_queue(reply.payload)
        except WirePayloadError:
            self.corrupt_payloads += 1
            self._count("remote_cache.corrupt_payloads")
            # Purge the poisoned entry so the next writer repairs the fleet.
            self._roundtrip(OP_DELETE, wire_key)
            return None, True
        self.remote_hits += 1
        self._count("remote_cache.hits")
        return queue, True

    def put(self, key: OPQKey, queue: OptimalPriorityQueue) -> None:
        # Fire-and-check: a failed PUT only costs the fleet future warmth.
        self._roundtrip(OP_PUT, encode_key(key), encode_queue(queue))

    def merge(self, entries: Dict[OPQKey, OptimalPriorityQueue]) -> None:
        # Values under one key are always equivalent, so PUT's
        # last-writer-wins matches merge's keep-existing semantics.
        for key, queue in entries.items():
            self.put(key, queue)

    def snapshot(self) -> Dict[OPQKey, OptimalPriorityQueue]:
        """Remote entries are not exported; workers reach the server directly.

        The snapshot contract exists to ship warmth into process pools; for a
        networked backend the pool members open their own connections, so an
        empty export is safe (workers fall back to the shared server).
        """
        return {}

    def delete(self, key: OPQKey) -> bool:
        """Drop one entry on the server (fail-open: unreachable is ``False``)."""
        reply = self._roundtrip(OP_DELETE, encode_key(key))
        return reply is not None and reply.op == REPLY_OK

    def clear(self) -> None:
        self._roundtrip(OP_CLEAR)

    def close(self) -> None:
        self._pool.close_all()

    def __len__(self) -> int:
        stats = self.server_stats()
        return int(stats["keys"]) if stats else 0

    def __contains__(self, key: OPQKey) -> bool:
        reply = self._roundtrip(OP_CONTAINS, encode_key(key))
        return reply is not None and reply.op == REPLY_OK

    # -- observability ---------------------------------------------------------

    def ping(self) -> bool:
        """Whether the server currently answers (never raises)."""
        reply = self._roundtrip(OP_PING)
        return reply is not None and reply.op == REPLY_PONG

    def server_stats(self) -> Optional[Dict[str, float]]:
        """The server's STATS document, or ``None`` when unreachable."""
        reply = self._roundtrip(OP_STATS)
        if reply is None or reply.op != REPLY_STATS:
            return None
        try:
            stats = json.loads(reply.payload)
        except ValueError:
            return None
        return stats if isinstance(stats, dict) else None

    def extra_metrics(self) -> Dict[str, float]:
        """Server-side gauges merged into ``/metrics`` scrapes (fail-open)."""
        stats = self.server_stats()
        if not stats:
            return {}
        return {
            "remote_cache.server_keys": float(stats.get("keys", 0)),
            "remote_cache.server_bytes": float(stats.get("bytes", 0)),
            "remote_cache.server_evictions": float(stats.get("evictions", 0)),
        }

    def _count(self, name: str) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RemoteBackend({self.host}:{self.port}, timeout={self.timeout}, "
            f"fail_opens={self.fail_opens})"
        )
