"""Single source of truth for telemetry metric names.

Every counter / series / gauge name the project records lives here, and
nowhere else: the SLD004 lint rule checks call sites against this module,
and the ``/metrics`` tests check rendered output against it.  Adding a
metric means adding it here first — a name that appears only at a call
site is treated as drift (most likely a typo) and fails ``repro lint``.

Naming convention: lowercase dotted ``component.metric`` segments of
``[a-z][a-z0-9_]*``, e.g. ``cache.hits`` or ``remote_cache.fail_open``.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

#: Monotonic counters (``Telemetry.increment``).
COUNTERS: FrozenSet[str] = frozenset({
    # plan cache
    "cache.hits",
    "cache.misses",
    "cache.partial_hits",
    "cache.curve_seeds",
    "cache.coalesced_waits",
    "cache.evictions",
    "cache.build_seconds",
    "cache.invalidations",
    # planner
    "planner.batches",
    "planner.instances",
    # service facade
    "service.requests",
    "service.failures",
    "service.flushes",
    # remote backend
    "remote_cache.hits",
    "remote_cache.misses",
    "remote_cache.fail_open",
    "remote_cache.corrupt_payloads",
    # tiered backend
    "tiered.local_hits",
    "tiered.remote_hits",
    "tiered.misses",
    # sharded backend
    "sharded_cache.hits",
    "sharded_cache.misses",
    "sharded_cache.failovers",
    "sharded_cache.rebalances",
    "sharded_cache.fail_open",
    # admission control
    "admission.admitted",
    "admission.rate_limited",
    "admission.overloaded",
    "admission.unauthorized",
    # deadline-aware serving
    "deadline.requests",
    "deadline.hits",
    "deadline.misses",
    "deadline.expired",
    "deadline.best_so_far",
    # http transport
    "http.requests",
    "http.protocol_errors",
    # drift-driven calibration loop
    "drift.observations",
    "drift.feedback_requests",
    "drift.recalibrations",
    "drift.revalidated_entries",
    "drift.invalidated_keys",
    "drift.failed_revalidations",
})

#: Distribution series (``Telemetry.observe``).
SERIES: FrozenSet[str] = frozenset({
    "planner.batch_size",
    "service.batch_size",
    "service.queue_wait_seconds",
    "remote_cache.round_trip_seconds",
    "drift.revalidation_seconds",
})

#: Point-in-time gauges (snapshot / ``/metrics`` extras).
GAUGES: FrozenSet[str] = frozenset({
    "cache.entries",
    "http.inflight_solves",
    "admission.inflight",
    "remote_cache.server_keys",
    "remote_cache.server_bytes",
    "remote_cache.server_evictions",
    "tiered.local_entries",
    "sharded_cache.shards",
    "sharded_cache.replicas",
    "sharded_cache.shards_up",
    "drift.monitored_menus",
    "drift.drifted_menus",
    "drift.max_shortfall",
})

#: Prefixes for names built at runtime (status codes, shard indices).
DYNAMIC_PREFIXES: Tuple[str, ...] = (
    "http.responses.",
    "sharded_cache.shard.",
)

ALL_STATIC: FrozenSet[str] = COUNTERS | SERIES | GAUGES


def matches_dynamic(name: str) -> bool:
    """True when ``name`` (or an f-string literal prefix) is dynamic."""
    return any(
        name.startswith(prefix) or prefix.startswith(name)
        for prefix in DYNAMIC_PREFIXES
        if name
    )


def is_known(name: str, kind: str = "any") -> bool:
    """True when ``name`` is registered for the given sink kind.

    ``kind`` is ``"counter"``, ``"series"``, ``"gauge"``, or ``"any"``.
    Dynamic-prefix names count as counters and gauges (per-shard stats
    are rendered both ways) but never as series.
    """
    if kind == "counter":
        return name in COUNTERS or matches_dynamic(name)
    if kind == "series":
        return name in SERIES
    if kind == "gauge":
        return name in GAUGES or matches_dynamic(name)
    return name in ALL_STATIC or matches_dynamic(name)
