"""Declarative batch specifications.

A :class:`BatchSpec` names a family of homogeneous SLADE instances — one bin
menu crossed with grids of task counts and reliability thresholds — without
materialising them.  The batch planner expands a spec into concrete
:class:`~repro.core.problem.SladeProblem` instances at dispatch time; the CLI's
``batch`` sub-command and the scalability benchmark both build their workloads
this way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidProblemError
from repro.core.problem import SladeProblem


@dataclass(frozen=True)
class BatchSpec:
    """A grid of homogeneous instances sharing one task bin menu.

    Attributes
    ----------
    bins:
        The task bin menu shared by every instance (what makes the batch
        cache-friendly: one OPQ per distinct threshold serves the whole grid).
    n_values:
        Task counts, one instance per value per threshold.
    thresholds:
        Homogeneous reliability thresholds.
    name:
        Label prefix for the generated problem names.
    repeat:
        How many copies of the grid to generate (used to model repeated
        traffic hitting the same instances; copies beyond the first are pure
        cache hits).
    """

    bins: TaskBinSet
    n_values: Tuple[int, ...] = (1_000,)
    thresholds: Tuple[float, ...] = (0.9,)
    name: str = "batch"
    repeat: int = 1

    def __post_init__(self) -> None:
        if not self.n_values:
            raise InvalidProblemError("a batch spec needs at least one task count")
        if not self.thresholds:
            raise InvalidProblemError("a batch spec needs at least one threshold")
        if self.repeat < 1:
            raise InvalidProblemError(f"repeat must be >= 1; got {self.repeat}")

    def __len__(self) -> int:
        return len(self.n_values) * len(self.thresholds) * self.repeat

    def __iter__(self) -> Iterator[SladeProblem]:
        for round_index in range(self.repeat):
            suffix = f"#{round_index}" if self.repeat > 1 else ""
            for threshold in self.thresholds:
                for n in self.n_values:
                    yield SladeProblem.homogeneous(
                        n,
                        threshold,
                        self.bins,
                        name=f"{self.name}-t{threshold}-n{n}{suffix}",
                    )

    def problems(self) -> List[SladeProblem]:
        """Materialise the grid as a list of problem instances."""
        return list(self)
