"""The batch planning engine: plan/OPQ caching and batched dispatch.

Solving a SLADE instance splits into two phases: constructing the optimal
priority queue (Algorithm 2, a function of the bin menu and the reliability
threshold alone) and covering the task set with it (Algorithm 3, cheap and
linear in ``n``).  Experiment sweeps, figure scripts and production batches
solve many instances sharing the same ``(bins, threshold)`` pair, so this
package memoises phase one and dispatches phase two — serially or in
thread/process pools — while collecting per-batch statistics.

Typical use::

    from repro.engine import BatchPlanner, BatchSpec

    spec = BatchSpec(bins=jelly_bin_set(20), n_values=(1000, 2000, 5000),
                     thresholds=(0.9,))
    batch = BatchPlanner().solve_many(spec, solver="opq")
    print(batch.total_cost, batch.stats.cache_hit_rate)
"""

from repro.engine.backends import (
    CacheBackend,
    HashRing,
    MemoryBackend,
    RemoteBackend,
    ShardedBackend,
    SQLiteBackend,
    TieredBackend,
    open_backend,
)
from repro.engine.backends.server import CacheServer, run_cache_server
from repro.engine.cache import CacheStats, PlanCache
from repro.engine.fingerprint import opq_key, problem_key
from repro.engine.planner import (
    BatchItem,
    BatchPlanner,
    BatchResult,
    BatchStats,
    EXECUTORS,
)
from repro.engine.specs import BatchSpec
from repro.engine.telemetry import (
    HistogramSnapshot,
    SeriesStats,
    Telemetry,
    render_prometheus,
)

__all__ = [
    "BatchItem",
    "BatchPlanner",
    "BatchResult",
    "BatchSpec",
    "BatchStats",
    "CacheBackend",
    "CacheServer",
    "CacheStats",
    "EXECUTORS",
    "HashRing",
    "HistogramSnapshot",
    "MemoryBackend",
    "PlanCache",
    "RemoteBackend",
    "ShardedBackend",
    "SQLiteBackend",
    "SeriesStats",
    "Telemetry",
    "TieredBackend",
    "open_backend",
    "opq_key",
    "problem_key",
    "render_prometheus",
    "run_cache_server",
]
