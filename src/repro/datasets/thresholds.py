"""Reliability-threshold generators for the heterogeneous experiments.

Section 7.2 of the paper draws per-task reliability thresholds from a Normal
distribution with mean ``mu`` (default 0.9) and standard deviation ``sigma``
(default 0.03), and mentions that uniform and heavy-tailed distributions give
similar results.  All three generators are provided; every generator clips its
output into a configurable open interval so the thresholds stay valid
probabilities strictly below 1.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.errors import InvalidProblemError
from repro.utils.rng import RandomSource, ensure_rng

#: Default clipping range for generated thresholds.  The lower bound keeps the
#: thresholds meaningful (a 0.5 threshold is satisfied by almost any bin); the
#: upper bound keeps ``-ln(1 - t)`` finite and the required number of
#: assignments small enough to be realistic.
DEFAULT_CLIP: Tuple[float, float] = (0.5, 0.995)


def _clip(values: np.ndarray, clip: Tuple[float, float]) -> List[float]:
    low, high = clip
    if not 0.0 <= low < high < 1.0:
        raise InvalidProblemError(
            f"clip range must satisfy 0 <= low < high < 1; got {clip}"
        )
    return [float(v) for v in np.clip(values, low, high)]


def constant_thresholds(n: int, threshold: float = 0.9) -> List[float]:
    """``n`` identical thresholds — the homogeneous setting."""
    if n <= 0:
        raise InvalidProblemError(f"n must be positive; got {n}")
    if not 0.0 <= threshold < 1.0:
        raise InvalidProblemError(f"threshold must lie in [0, 1); got {threshold}")
    return [threshold] * n


def normal_thresholds(
    n: int,
    mu: float = 0.9,
    sigma: float = 0.03,
    clip: Tuple[float, float] = DEFAULT_CLIP,
    seed: RandomSource = None,
) -> List[float]:
    """Normally distributed thresholds (the paper's default heterogeneous setting).

    Parameters
    ----------
    n:
        Number of atomic tasks.
    mu, sigma:
        Mean and standard deviation of the Normal distribution (paper defaults
        0.9 and 0.03).
    clip:
        Inclusive clipping range applied after sampling.
    seed:
        Seed or generator for reproducibility.
    """
    if n <= 0:
        raise InvalidProblemError(f"n must be positive; got {n}")
    if sigma < 0:
        raise InvalidProblemError(f"sigma must be non-negative; got {sigma}")
    rng = ensure_rng(seed)
    return _clip(rng.normal(mu, sigma, size=n), clip)


def uniform_thresholds(
    n: int,
    low: float = 0.85,
    high: float = 0.97,
    seed: RandomSource = None,
) -> List[float]:
    """Uniformly distributed thresholds in ``[low, high]``."""
    if n <= 0:
        raise InvalidProblemError(f"n must be positive; got {n}")
    if not 0.0 <= low <= high < 1.0:
        raise InvalidProblemError(
            f"uniform range must satisfy 0 <= low <= high < 1; got [{low}, {high}]"
        )
    rng = ensure_rng(seed)
    return [float(v) for v in rng.uniform(low, high, size=n)]


def heavy_tailed_thresholds(
    n: int,
    mu: float = 0.9,
    tail_exponent: float = 2.5,
    clip: Tuple[float, float] = DEFAULT_CLIP,
    seed: RandomSource = None,
) -> List[float]:
    """Heavy-tailed thresholds: most tasks near ``mu``, a few demanding far more.

    The deviation above ``mu`` follows a Pareto distribution scaled into the
    remaining headroom ``1 - mu``, so a small fraction of tasks require very
    high reliability — the situation where threshold partitioning matters most.
    """
    if n <= 0:
        raise InvalidProblemError(f"n must be positive; got {n}")
    if tail_exponent <= 1.0:
        raise InvalidProblemError(
            f"tail_exponent must exceed 1; got {tail_exponent}"
        )
    rng = ensure_rng(seed)
    deviations = rng.pareto(tail_exponent, size=n)
    headroom = max(0.0, clip[1] - mu)
    values = mu + headroom * (deviations / (1.0 + deviations))
    return _clip(values, clip)
