"""The Micro-Expressions Identification (SMIC) dataset profile (Example 3 / Figure 3b).

Workers label the emotion of a target portrait as positive or negative given a
sample portrait, with images drawn from the Spontaneous Micro-expression
Database.  The paper reports that the task is considerably harder than Jelly:
overall confidence hovers around 0.7 (roughly 0.85 at cardinality 2 dropping
towards the high 0.5s at cardinality 30), the per-bin prices tested are $0.05,
$0.10 and $0.20, and the response-time threshold is 30 minutes.

As with :mod:`repro.datasets.jelly`, the parameters are fitted to those anchor
points so the bin menus exercised by the experiments have the same shape as
the paper's.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bins import TaskBinSet
from repro.datasets.profiles import BinProfile, DatasetProfile, MarketCostCurve

#: Response-time threshold used for SMIC bins (minutes).
SMIC_RESPONSE_TIME_MINUTES = 30.0

#: Per-cost anchor parameters fitted to Figure 3b: confidence ~0.85 at
#: cardinality 2 for the top price, decaying towards ~0.55-0.60 at 30, with
#: cheap bins timing out earlier than expensive ones.
_BASE_PARAMETERS: Dict[float, Dict[str, float]] = {
    0.05: {"base": 0.830, "floor": 0.540, "decay": 0.080, "max_in_time": 12},
    0.10: {"base": 0.848, "floor": 0.560, "decay": 0.072, "max_in_time": 22},
    0.20: {"base": 0.862, "floor": 0.585, "decay": 0.065, "max_in_time": 30},
}


def smic_profile() -> DatasetProfile:
    """Return the SMIC dataset profile."""
    profiles = {
        cost: BinProfile(
            cost_per_bin=cost,
            base_confidence=params["base"],
            floor_confidence=params["floor"],
            decay=params["decay"],
            max_in_time_cardinality=int(params["max_in_time"]),
        )
        for cost, params in _BASE_PARAMETERS.items()
    }
    # Cost-independent confidence curve for the evaluation menu, anchored to
    # Figure 3b (about 0.85 at cardinality 2, high 0.5s at 30).
    confidence_curve = BinProfile(
        cost_per_bin=0.20,
        base_confidence=0.855,
        floor_confidence=0.565,
        decay=0.068,
        max_in_time_cardinality=30,
    )
    # Worker-supply parameters matching repro.crowd.presets.smic_platform.
    cost_curve = MarketCostCurve(
        base_rate_per_minute=0.55,
        reference_cost=0.05,
        elasticity=0.85,
        minutes_per_question=0.8,
        assignments=10,
        response_time_minutes=SMIC_RESPONSE_TIME_MINUTES,
    )
    return DatasetProfile(
        name="smic",
        profiles=profiles,
        difficulty=2,
        response_time_minutes=SMIC_RESPONSE_TIME_MINUTES,
        confidence_curve=confidence_curve,
        cost_curve=cost_curve,
    )


def smic_bin_set(max_cardinality: int = 20) -> TaskBinSet:
    """The SMIC task-bin menu used throughout the Section 7 experiments."""
    return smic_profile().bin_set(max_cardinality, name=f"smic-B{max_cardinality}")
