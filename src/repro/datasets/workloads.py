"""Large-scale task workload generators.

The decomposition algorithms only need task identifiers and thresholds, but
the crowd simulator additionally needs ground truth (is the satellite image a
positive?) to measure the achieved false-negative rate of an executed plan.
These helpers build :class:`~repro.core.task.CrowdsourcingTask` objects with
both.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.errors import InvalidProblemError
from repro.core.task import AtomicTask, CrowdsourcingTask
from repro.utils.rng import RandomSource, ensure_rng


def make_workload(
    n: int,
    thresholds: Optional[Sequence[float]] = None,
    threshold: float = 0.9,
    positive_rate: float = 0.1,
    name: str = "workload",
    seed: RandomSource = None,
) -> CrowdsourcingTask:
    """Build a large-scale task of ``n`` binary-choice atomic tasks.

    Parameters
    ----------
    n:
        Number of atomic tasks.
    thresholds:
        Optional per-task reliability thresholds (heterogeneous workloads).
        When omitted, every task uses ``threshold``.
    threshold:
        Common reliability threshold for homogeneous workloads.
    positive_rate:
        Fraction of atomic tasks whose ground-truth answer is "yes"; stored in
        each task's payload under ``"truth"`` for the crowd simulator.
    name:
        Label for experiment reports.
    seed:
        Seed or generator controlling the ground-truth draw.
    """
    if n <= 0:
        raise InvalidProblemError(f"n must be positive; got {n}")
    if not 0.0 <= positive_rate <= 1.0:
        raise InvalidProblemError(
            f"positive_rate must lie in [0, 1]; got {positive_rate}"
        )
    if thresholds is not None and len(thresholds) != n:
        raise InvalidProblemError(
            f"expected {n} thresholds, got {len(thresholds)}"
        )
    rng = ensure_rng(seed)
    truths = rng.random(n) < positive_rate
    tasks: List[AtomicTask] = []
    for i in range(n):
        t = threshold if thresholds is None else float(thresholds[i])
        tasks.append(AtomicTask(i, t, payload={"truth": bool(truths[i])}))
    return CrowdsourcingTask(tasks, name=name)


def make_fishing_line_workload(
    n: int = 1000,
    threshold: float = 0.95,
    positive_rate: float = 0.02,
    seed: RandomSource = 7,
) -> CrowdsourcingTask:
    """The fishing-line discovery scenario of Example 1.

    A satellite image sweep where positives (illegal fishing lines) are rare
    and missing one is costly, hence the high reliability threshold and the
    low positive rate.
    """
    return make_workload(
        n=n,
        threshold=threshold,
        positive_rate=positive_rate,
        name="fishing-line-discovery",
        seed=seed,
    )
