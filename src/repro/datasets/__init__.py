"""Synthetic datasets emulating the paper's AMT-derived inputs.

The original evaluation uses two datasets gathered on Amazon Mechanical Turk:
*Jelly-Beans-in-a-Jar* ("Jelly") and *Micro-Expressions Identification*
("SMIC").  Those raw worker answers are not publicly available, so this package
synthesises the same artefacts the algorithms consume:

* per-cardinality confidence/cost profiles (:mod:`repro.datasets.profiles`,
  :mod:`repro.datasets.jelly`, :mod:`repro.datasets.smic`) calibrated to the
  endpoints reported in Section 2 and Figure 3 of the paper,
* reliability-threshold generators for the heterogeneous experiments
  (:mod:`repro.datasets.thresholds`), and
* large-scale task workload generators with ground truth for the crowd
  simulator (:mod:`repro.datasets.workloads`).
"""

from repro.datasets.jelly import jelly_bin_set, jelly_profile
from repro.datasets.profiles import BinProfile, DatasetProfile
from repro.datasets.smic import smic_bin_set, smic_profile
from repro.datasets.thresholds import (
    constant_thresholds,
    heavy_tailed_thresholds,
    normal_thresholds,
    uniform_thresholds,
)
from repro.datasets.workloads import make_fishing_line_workload, make_workload

__all__ = [
    "BinProfile",
    "DatasetProfile",
    "jelly_profile",
    "jelly_bin_set",
    "smic_profile",
    "smic_bin_set",
    "constant_thresholds",
    "normal_thresholds",
    "uniform_thresholds",
    "heavy_tailed_thresholds",
    "make_workload",
    "make_fishing_line_workload",
]
