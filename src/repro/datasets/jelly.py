"""The Jelly-Beans-in-a-Jar dataset profile (Example 2 / Figure 3a,c).

Workers compare a target image against a 200-dot reference and answer whether
the target contains more dots.  The paper reports, for the default difficulty
(level 2, 200 dots):

* confidence 0.981 at cardinality 2 decaying to 0.783 at cardinality 30 for
  the highest price ($0.10 per bin);
* cheaper bins stop completing within the 40-minute threshold at smaller
  cardinalities — 14 for $0.05 and 24 for $0.08, versus 30 for $0.10;
* confidence is slightly lower at lower prices, and the decay is steeper for
  harder dot counts (difficulty 3 = 400 dots) and shallower for easier ones
  (difficulty 1 = 50 dots).

The numeric parameters below are fitted to those anchor points; the shapes —
moderate confidence decay versus steep per-task cost decay, and cost-sensitive
in-time limits — are what the SLADE evaluation depends on.
"""

from __future__ import annotations

from typing import Dict

from repro.core.bins import TaskBinSet
from repro.core.errors import InvalidBinError
from repro.datasets.profiles import BinProfile, DatasetProfile, MarketCostCurve

#: Response-time threshold used for Jelly bins (minutes).
JELLY_RESPONSE_TIME_MINUTES = 40.0

#: Difficulty level → multiplicative adjustment of the confidence decay rate
#: and additive adjustment of the base confidence.  Level 1 (50 dots) is
#: easier than the default level 2 (200 dots); level 3 (400 dots) is harder.
_DIFFICULTY_ADJUSTMENTS: Dict[int, Dict[str, float]] = {
    1: {"base_shift": +0.012, "floor_shift": +0.060, "decay_scale": 0.70},
    2: {"base_shift": 0.0, "floor_shift": 0.0, "decay_scale": 1.0},
    3: {"base_shift": -0.025, "floor_shift": -0.055, "decay_scale": 1.35},
}

#: Per-cost anchor parameters for difficulty level 2, fitted to Figure 3a:
#: confidence ~0.981 at cardinality 2 for the top price, ~0.783 at 30, and
#: in-time limits of 14 / 24 / 30 for costs 0.05 / 0.08 / 0.10.
_BASE_PARAMETERS: Dict[float, Dict[str, float]] = {
    0.05: {"base": 0.975, "floor": 0.760, "decay": 0.085, "max_in_time": 14},
    0.08: {"base": 0.982, "floor": 0.772, "decay": 0.078, "max_in_time": 24},
    0.10: {"base": 0.986, "floor": 0.780, "decay": 0.072, "max_in_time": 30},
}


def jelly_profile(difficulty: int = 2) -> DatasetProfile:
    """Return the Jelly dataset profile for a difficulty level (1, 2 or 3)."""
    if difficulty not in _DIFFICULTY_ADJUSTMENTS:
        raise InvalidBinError(
            f"Jelly difficulty must be 1, 2 or 3; got {difficulty}"
        )
    adjust = _DIFFICULTY_ADJUSTMENTS[difficulty]
    profiles = {}
    for cost, params in _BASE_PARAMETERS.items():
        profiles[cost] = BinProfile(
            cost_per_bin=cost,
            base_confidence=min(0.999, params["base"] + adjust["base_shift"]),
            floor_confidence=max(0.5, params["floor"] + adjust["floor_shift"]),
            decay=params["decay"] * adjust["decay_scale"],
            max_in_time_cardinality=int(params["max_in_time"]),
        )
    # Cost-independent confidence curve used by the evaluation menu; anchored
    # to the Figure 3a endpoints (0.981 at cardinality 2, 0.783 at 30).
    confidence_curve = BinProfile(
        cost_per_bin=0.10,
        base_confidence=min(0.999, 0.986 + adjust["base_shift"]),
        floor_confidence=max(0.5, 0.772 + adjust["floor_shift"]),
        decay=0.072 * adjust["decay_scale"],
        max_in_time_cardinality=30,
    )
    # Worker-supply parameters matching repro.crowd.presets.jelly_platform so
    # the derived "minimum in-time cost" menu and the simulator agree.
    cost_curve = MarketCostCurve(
        base_rate_per_minute=0.39,
        reference_cost=0.05,
        elasticity=1.4,
        minutes_per_question=1.0,
        assignments=10,
        response_time_minutes=JELLY_RESPONSE_TIME_MINUTES,
    )
    return DatasetProfile(
        name=f"jelly-diff{difficulty}",
        profiles=profiles,
        difficulty=difficulty,
        response_time_minutes=JELLY_RESPONSE_TIME_MINUTES,
        confidence_curve=confidence_curve,
        cost_curve=cost_curve,
    )


def jelly_bin_set(max_cardinality: int = 20, difficulty: int = 2) -> TaskBinSet:
    """The Jelly task-bin menu used throughout the Section 7 experiments.

    Parameters
    ----------
    max_cardinality:
        The paper's ``|B|`` knob (default 20, the paper's default).
    difficulty:
        Jelly difficulty level 1-3 (default 2, the paper's default).
    """
    return jelly_profile(difficulty).bin_set(
        max_cardinality, name=f"jelly-B{max_cardinality}-diff{difficulty}"
    )
