"""Confidence/cost profiles of task bins as a function of cardinality.

Section 2 of the paper measures, for each dataset and each per-bin incentive
cost, how worker *confidence* (probability of answering each atomic task in a
bin correctly) decays as the bin cardinality grows, and at which cardinality a
given price stops attracting enough workers within the response-time threshold.

A :class:`BinProfile` captures one such curve in closed form:

* confidence decays exponentially from ``base_confidence`` towards
  ``floor_confidence`` with rate ``decay`` — confidence drops moderately while
  the per-task cost drops steeply, which is exactly the mismatch the SLADE
  problem exploits;
* bins above ``max_in_time_cardinality`` are considered "overtime" (not enough
  answers arrive within the threshold) and are excluded from the usable bin
  set, mirroring the dotted-line curves of Figure 3.

A :class:`DatasetProfile` groups the per-cost curves of one dataset (Jelly or
SMIC) and builds :class:`~repro.core.bins.TaskBinSet` menus from them.

For the Section 7 evaluation the paper derives the per-cardinality cost as
"the minimum cost that meets the response time requirement".  The
:class:`MarketCostCurve` implements that inversion against the same
reward-elastic worker-supply law the crowd simulator uses: bigger bins take
longer to answer and therefore need a higher reward to finish within the
threshold, which yields a menu in the style of the paper's Table 1 — per-bin
cost increasing sub-linearly with cardinality, per-task cost decreasing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.bins import TaskBin, TaskBinSet
from repro.core.errors import InvalidBinError
from repro.utils.validation import (
    require_in_unit_interval,
    require_positive,
    require_probability_open,
)


@dataclass(frozen=True)
class BinProfile:
    """Closed-form confidence curve for one dataset at one per-bin cost.

    Attributes
    ----------
    cost_per_bin:
        Incentive cost (USD) paid for completing one task bin.
    base_confidence:
        Confidence of a 1-cardinality bin (no batching overhead).
    floor_confidence:
        Asymptotic confidence as cardinality grows very large; the cognitive
        load of long batches never drives accuracy below this level.
    decay:
        Exponential decay rate of confidence towards the floor per unit of
        cardinality.
    max_in_time_cardinality:
        Largest cardinality for which enough answers arrive within the
        response-time threshold at this price (Figure 3's solid-line range).
    """

    cost_per_bin: float
    base_confidence: float
    floor_confidence: float
    decay: float
    max_in_time_cardinality: int

    def __post_init__(self) -> None:
        require_positive(self.cost_per_bin, "cost_per_bin")
        require_probability_open(self.base_confidence, "base_confidence")
        require_in_unit_interval(self.floor_confidence, "floor_confidence")
        require_positive(self.decay, "decay")
        if self.floor_confidence > self.base_confidence:
            raise InvalidBinError(
                "floor_confidence cannot exceed base_confidence"
            )
        if self.max_in_time_cardinality < 1:
            raise InvalidBinError(
                "max_in_time_cardinality must be at least 1; "
                f"got {self.max_in_time_cardinality}"
            )

    def confidence(self, cardinality: int) -> float:
        """Expected confidence of a bin of the given cardinality.

        The curve is anchored so that ``confidence(1) == base_confidence`` and
        decays exponentially towards ``floor_confidence``.
        """
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1; got {cardinality}")
        span = self.base_confidence - self.floor_confidence
        return self.floor_confidence + span * math.exp(-self.decay * (cardinality - 1))

    def cost_per_task(self, cardinality: int) -> float:
        """Average incentive cost per atomic task at the given cardinality."""
        if cardinality < 1:
            raise ValueError(f"cardinality must be at least 1; got {cardinality}")
        return self.cost_per_bin / cardinality

    def in_time(self, cardinality: int) -> bool:
        """Whether bins of this cardinality finish within the time threshold."""
        return cardinality <= self.max_in_time_cardinality

    def task_bin(self, cardinality: int) -> TaskBin:
        """Materialise the task bin of the given cardinality."""
        return TaskBin(cardinality, self.confidence(cardinality), self.cost_per_bin)


@dataclass(frozen=True)
class MarketCostCurve:
    """Minimum per-bin cost that meets the response-time requirement.

    The crowd's willingness to pick up a bin follows the same reward-elastic
    law as :class:`repro.crowd.arrival.RewardSensitiveArrivalModel` (the
    parameters are kept in sync by the dataset presets):

        rate(cost) = base_rate * (cost / reference_cost) ** elasticity

    A posting of cardinality ``l`` that requests ``assignments`` workers
    completes in expectation after ``assignments / rate + minutes_per_question
    * l`` minutes.  Solving for the smallest cost that keeps this below the
    response-time threshold — and rounding up to a whole cent, since that is
    how rewards are posted — gives the per-cardinality cost of the menu.

    Attributes
    ----------
    base_rate_per_minute, reference_cost, elasticity, minutes_per_question:
        Worker-supply parameters (see the arrival model).
    assignments:
        Number of workers the response-time requirement is stated for.
    response_time_minutes:
        The platform's response-time threshold.
    minimum_cost:
        Floor on the posted reward (defaults to one cent).
    """

    base_rate_per_minute: float
    reference_cost: float
    elasticity: float
    minutes_per_question: float
    assignments: int
    response_time_minutes: float
    minimum_cost: float = 0.01

    def __post_init__(self) -> None:
        require_positive(self.base_rate_per_minute, "base_rate_per_minute")
        require_positive(self.reference_cost, "reference_cost")
        require_positive(self.elasticity, "elasticity")
        require_positive(self.minutes_per_question, "minutes_per_question")
        require_positive(self.response_time_minutes, "response_time_minutes")
        require_positive(self.minimum_cost, "minimum_cost")
        if self.assignments < 1:
            raise InvalidBinError(
                f"assignments must be at least 1; got {self.assignments}"
            )

    @property
    def max_feasible_cardinality(self) -> int:
        """Largest cardinality a worker can answer within the threshold at all."""
        return int(self.response_time_minutes / self.minutes_per_question)

    def cost(self, cardinality: int) -> float:
        """Minimum per-bin reward for ``cardinality`` to finish in time.

        Raises
        ------
        InvalidBinError
            If no price can finish the bin in time (the answering time alone
            exceeds the response-time threshold).
        """
        if cardinality < 1:
            raise InvalidBinError(f"cardinality must be at least 1; got {cardinality}")
        answering = self.minutes_per_question * cardinality
        slack = self.response_time_minutes - answering
        if slack <= 0:
            raise InvalidBinError(
                f"cardinality {cardinality} cannot finish within "
                f"{self.response_time_minutes} minutes at any price"
            )
        needed_rate = self.assignments / slack
        raw = self.reference_cost * (
            needed_rate / self.base_rate_per_minute
        ) ** (1.0 / self.elasticity)
        cents = math.ceil(raw * 100.0 - 1e-9)
        return max(self.minimum_cost, cents / 100.0)


@dataclass(frozen=True)
class DatasetProfile:
    """All per-cost confidence curves of one dataset.

    Attributes
    ----------
    name:
        Dataset label (``"jelly"`` or ``"smic"``).
    profiles:
        Mapping from per-bin cost to the corresponding :class:`BinProfile`;
        used to regenerate the Figure 3 motivation curves.
    difficulty:
        Optional difficulty level (Jelly supports 1-3, see Figure 3c).
    response_time_minutes:
        The response-time threshold used when the data was collected; carried
        through to the crowd simulator.
    confidence_curve:
        Cost-independent confidence curve used when building the evaluation
        menu (the paper observes worker confidence is much less sensitive to
        the reward than worker supply is).  Falls back to the most expensive
        per-cost profile when omitted.
    cost_curve:
        Market cost curve deriving the minimum in-time price per cardinality.
        When omitted, the menu falls back to the cheapest in-time per-cost
        profile (a coarser, three-price approximation).
    """

    name: str
    profiles: Mapping[float, BinProfile]
    difficulty: int = 2
    response_time_minutes: float = 40.0
    confidence_curve: Optional[BinProfile] = None
    cost_curve: Optional[MarketCostCurve] = None

    def __post_init__(self) -> None:
        if not self.profiles:
            raise InvalidBinError("a dataset profile needs at least one cost level")

    @property
    def costs(self) -> List[float]:
        """Available per-bin cost levels, ascending."""
        return sorted(self.profiles)

    def profile_for_cost(self, cost: float) -> BinProfile:
        """The confidence curve for one per-bin cost level."""
        try:
            return self.profiles[cost]
        except KeyError:
            raise KeyError(
                f"{self.name} has no profile for cost {cost}; available: {self.costs}"
            ) from None

    def confidence_series(
        self, cost: float, cardinalities: Sequence[int]
    ) -> Dict[int, float]:
        """Confidence per cardinality for one cost level (Figure 3 series).

        Cardinalities beyond the in-time limit are still reported (the paper
        plots them as dotted lines) — use :meth:`in_time_series` to know which
        points are usable.
        """
        profile = self.profile_for_cost(cost)
        return {l: profile.confidence(l) for l in cardinalities}

    def in_time_series(
        self, cost: float, cardinalities: Sequence[int]
    ) -> Dict[int, bool]:
        """Whether each cardinality finishes within the time threshold."""
        profile = self.profile_for_cost(cost)
        return {l: profile.in_time(l) for l in cardinalities}

    def menu_confidence(self, cardinality: int) -> float:
        """Confidence used for the evaluation menu at a given cardinality."""
        curve = self.confidence_curve or self.profiles[self.costs[-1]]
        return curve.confidence(cardinality)

    def menu_cost(self, cardinality: int) -> float:
        """Per-bin cost used for the evaluation menu at a given cardinality.

        The minimum cost meeting the response-time requirement when a
        :class:`MarketCostCurve` is configured; otherwise the cheapest of the
        discrete price levels that still completes in time.
        """
        if self.cost_curve is not None:
            return self.cost_curve.cost(cardinality)
        for cost in self.costs:
            if self.profiles[cost].in_time(cardinality):
                return cost
        return self.costs[-1]

    def bin_set(
        self,
        max_cardinality: int,
        name: Optional[str] = None,
    ) -> TaskBinSet:
        """Build the task-bin menu used by the Section 7 experiments.

        For every cardinality ``1..max_cardinality`` the cost is "the minimum
        cost that meets the response time requirement" (the paper's own rule)
        and the confidence comes from the dataset's confidence curve, yielding
        a Table-1-style menu: per-bin cost increasing with cardinality,
        per-task cost and confidence decreasing.

        Parameters
        ----------
        max_cardinality:
            The paper's ``|B|`` knob — the largest bin cardinality offered.
        name:
            Optional label for the resulting bin set.
        """
        if max_cardinality < 1:
            raise InvalidBinError(
                f"max_cardinality must be at least 1; got {max_cardinality}"
            )
        bins = []
        for cardinality in range(1, max_cardinality + 1):
            bins.append(
                TaskBin(
                    cardinality,
                    self.menu_confidence(cardinality),
                    self.menu_cost(cardinality),
                )
            )
        return TaskBinSet(bins, name=name or f"{self.name}-B{max_cardinality}")
