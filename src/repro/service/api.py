"""Typed request/response surface of the SLADE service layer.

The service layer turns the library-shaped solver stack into an *online
decomposition service*: callers describe what they want solved in a
:class:`SolveRequest`, the service normalises and dispatches it, and every
outcome — success or failure — comes back as a structured
:class:`SolveResponse` instead of a raised exception.  The shapes are plain
dataclasses so they serialise cleanly (see
:mod:`repro.io.serialization`) and survive transport boundaries
(JSON lines on the ``repro serve`` CLI, futures in the async frontend).

:class:`ServiceConfig` collects the tunables shared by the synchronous
facade and the async micro-batching frontend: the default solver, per-solver
options, threshold clamping bounds, micro-batch limits, and the plan-cache
backend spec.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.algorithms.anytime import (
    QUALITY_GREEDY,
    QUALITY_OPTIMAL,
    QUALITY_REFINED,
)
from repro.core.errors import SladeError
from repro.core.plan import DecompositionPlan
from repro.core.problem import SladeProblem

#: Cache provenance values carried by :attr:`SolveResponse.cache`.
CACHE_HIT = "hit"          #: the OPQ was served from the plan cache
CACHE_MISS = "miss"        #: the OPQ was built (and stored) for this request
CACHE_BYPASS = "bypass"    #: the solver does not consult the plan cache
CACHE_NONE = "none"        #: the request failed before/without touching the cache

#: Which ladder rung produced the winning plan (:attr:`Provenance.tier`).
TIER_CACHE = "cache"       #: an OPQ served from the plan cache answered
TIER_BUILD = "build"       #: a fresh (possibly budgeted) Algorithm 2 run answered
TIER_GREEDY = "greedy"     #: the immediate greedy floor answered
TIER_SOLVER = "solver"     #: a cache-bypassing solver answered directly

#: The degradation ladder, best first (:attr:`Provenance.quality` values).
QUALITIES = (QUALITY_OPTIMAL, QUALITY_REFINED, QUALITY_GREEDY)


class ServiceError(SladeError):
    """Base class for service-layer failures (validation, lifecycle)."""


class RequestValidationError(ServiceError):
    """A solve request failed normalisation (unknown solver, bad options)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that has been shut down."""


class AdmissionError(ServiceError):
    """Base class for admission-control rejections (quota, overload)."""


class RateLimitedError(AdmissionError):
    """A tenant exceeded its token-bucket rate or max-inflight quota.

    ``retry_after`` (seconds) estimates when the tenant's bucket will hold
    enough tokens again; transports surface it as a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class OverloadedError(AdmissionError):
    """The service as a whole is at its global in-flight capacity."""


class DeadlineExceededError(ServiceError):
    """A request's latency budget expired before a plan could be produced.

    Raised only when there is *nothing* feasible to return: the budget was
    already blown when the request reached the front of the queue (so the
    planner never ran), or it expired before even the greedy floor finished.
    A request whose budget runs out mid-refinement is *not* an error — it gets
    its best-so-far plan with a degraded :attr:`Provenance.quality`.
    Transports surface this as a structured 503, counted separately from
    overload rejections via the ``deadline.expired`` counter.
    """


class AuthenticationError(ServiceError):
    """The request failed the transport's shared-secret check (HTTP 401)."""


@dataclass(frozen=True)
class ErrorEnvelope:
    """A transport-safe description of a request failure.

    Attributes
    ----------
    type:
        The exception class name (``"InfeasiblePlanError"``, ...), so clients
        can branch on failure kinds without importing the library.
    message:
        The human-readable error message.
    """

    type: str
    message: str

    @classmethod
    def from_exception(cls, exc: BaseException) -> "ErrorEnvelope":
        """Wrap a caught exception into an envelope."""
        return cls(type=type(exc).__name__, message=str(exc))

    def __str__(self) -> str:
        return f"{self.type}: {self.message}"


def envelope_from_error(exc: BaseException) -> ErrorEnvelope:
    """The one conversion from a caught exception to a transport envelope.

    Every transport — the HTTP server, the JSON-lines ``repro serve`` loop,
    the facade's internal failure path — builds envelopes through this
    helper, so a malformed request fails with the same shape everywhere.
    """
    return ErrorEnvelope.from_exception(exc)


@dataclass(frozen=True)
class Provenance:
    """How the answer on a successful response was produced.

    Attributes
    ----------
    quality:
        Degradation marker from the anytime ladder: ``"optimal"`` — the
        requested computation ran to completion, the answer is undegraded;
        ``"refined"`` — a deadline truncated the OPQ refinement and a
        better-than-greedy best-so-far plan was served; ``"greedy"`` — only
        the immediate greedy floor fit the budget.  Every value denotes a
        *feasible* plan.
    tier:
        Which ladder rung produced the winning plan: :data:`TIER_CACHE`,
        :data:`TIER_BUILD`, :data:`TIER_GREEDY`, or :data:`TIER_SOLVER`.
    deadline_ms:
        The latency budget the request asked for (``None`` when unbudgeted).
    remaining_budget_ms:
        Budget left when the planner was dispatched — the requested budget
        minus queue/coalescing wait.  ``None`` when unbudgeted; ``0.0`` never
        appears on a response (an exhausted budget fails before dispatch).
    """

    quality: str
    tier: str
    deadline_ms: Optional[float] = None
    remaining_budget_ms: Optional[float] = None


@dataclass(frozen=True)
class SolveRequest:
    """One decomposition request submitted to the service.

    Attributes
    ----------
    problem:
        The SLADE instance to decompose.
    solver:
        Registry name of the solver to use; ``None`` defers to the service's
        configured default (or the anytime ladder when ``deadline_ms`` is
        set).
    options:
        Extra solver keyword arguments, merged over the service's per-solver
        defaults.
    verify:
        Per-request override of plan feasibility verification; ``None``
        defers to the service configuration.
    request_id:
        Caller-chosen correlation id echoed on the response; the service
        assigns a sequential one when omitted.
    tenant:
        Admission-control identity the request is accounted under.  The HTTP
        transport fills it from the ``X-Tenant`` header (the request field
        wins when both are present); ``None`` falls into the transport's
        default tenant.  Note the transport charges the header/default
        identity provisionally *before* parsing the body (refunded if the
        field names someone else), so an exhausted header tenant is
        rejected without the body ever being read.  The facade itself
        ignores this field.
    deadline_ms:
        Optional end-to-end latency budget in milliseconds, measured from the
        moment the service *receives* the request (wire parse, or facade
        entry for library callers).  Time spent queueing counts against it;
        a request whose budget expires before dispatch is rejected with
        :class:`DeadlineExceededError` and never reaches the planner.
    deadline_at:
        Internal absolute form of the budget: the ``time.monotonic()``
        instant the budget expires, stamped once at receipt so queue wait
        subtracts naturally.  Never serialised; transports and the facade
        fill it via :func:`repro.service.normalize.stamp_deadline`.
    """

    problem: SladeProblem
    solver: Optional[str] = None
    options: Mapping[str, Any] = field(default_factory=dict)
    verify: Optional[bool] = None
    request_id: Optional[str] = None
    tenant: Optional[str] = None
    deadline_ms: Optional[float] = None
    deadline_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem, SladeProblem):
            raise RequestValidationError(
                f"problem must be a SladeProblem, got {type(self.problem).__name__}"
            )
        if self.deadline_ms is not None:
            try:
                budget = float(self.deadline_ms)
            except (TypeError, ValueError):
                raise RequestValidationError(
                    f"deadline_ms must be a number, got {self.deadline_ms!r}"
                ) from None
            if budget <= 0:
                raise RequestValidationError(
                    f"deadline_ms must be > 0; got {self.deadline_ms}"
                )


@dataclass(frozen=True)
class SolveResponse:
    """The structured outcome of one solve request.

    Successful responses (``ok=True``) carry the plan and its headline
    numbers; failed ones (``ok=False``) carry an :class:`ErrorEnvelope` and
    ``None`` for the plan fields.  Either way the response records service
    timing, cache provenance, and the size of the micro-batch the request
    rode in (1 on the synchronous path).
    """

    request_id: str
    ok: bool
    solver: Optional[str]
    plan: Optional[DecompositionPlan]
    total_cost: Optional[float]
    feasible: Optional[bool]
    cache: str
    elapsed_seconds: float
    solve_seconds: float
    batch_size: int = 1
    problem_fingerprint: Optional[str] = None
    error: Optional[ErrorEnvelope] = None
    provenance: Optional[Provenance] = None

    def raise_for_error(self) -> "SolveResponse":
        """Raise :class:`ServiceError` if the request failed; else return self.

        Bridges back to exception-style control flow for callers that prefer
        it over inspecting the envelope.
        """
        if not self.ok:
            detail = str(self.error) if self.error is not None else "unknown error"
            raise ServiceError(f"request {self.request_id} failed: {detail}")
        return self


def failure_response(
    request_id: str,
    exc: BaseException,
    batch_size: int = 1,
    elapsed_seconds: float = 0.0,
) -> SolveResponse:
    """A uniform ``ok=False`` response for a request that never solved.

    Used for failures *outside* the facade (unparseable JSON, admission
    rejections, transport errors), so clients see the exact envelope shape a
    solver-level failure produces.
    """
    return SolveResponse(
        request_id=request_id,
        ok=False,
        solver=None,
        plan=None,
        total_cost=None,
        feasible=None,
        cache=CACHE_NONE,
        elapsed_seconds=elapsed_seconds,
        solve_seconds=0.0,
        batch_size=batch_size,
        error=envelope_from_error(exc),
    )


def http_status_for(exc: BaseException) -> int:
    """Map an exception to the HTTP status the transport should return.

    Admission rejections map to 429 (per-tenant quota) and 503 (global
    overload / shutting down / expired latency budget); failed shared-secret
    checks map to 401; every other library-level error is the caller's
    fault (400); anything unrecognised is a server error (500).
    """
    if isinstance(exc, RateLimitedError):
        return 429
    if isinstance(exc, (OverloadedError, ServiceClosedError, DeadlineExceededError)):
        return 503
    if isinstance(exc, AuthenticationError):
        return 401
    if isinstance(exc, (SladeError, KeyError, ValueError, TypeError)):
        return 400
    return 500


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables shared by :class:`~repro.service.facade.SladeService` and
    :class:`~repro.service.async_service.AsyncSladeService`.

    Attributes
    ----------
    solver:
        Default registry solver for requests that do not name one.
    solver_options:
        Default per-solver keyword arguments, keyed by registry name (the
        same shape :class:`~repro.engine.planner.BatchPlanner` takes).
    verify:
        Whether plans are feasibility-checked unless a request overrides it.
    threshold_floor / threshold_cap:
        Optional clamping bounds applied to every task threshold during
        normalisation.  A cap protects the service from pathological
        near-one thresholds whose OPQ construction is astronomically
        expensive; a floor enforces a minimum quality of service.  ``None``
        disables the respective bound.
    max_batch_size:
        Largest micro-batch the async frontend coalesces before flushing.
    max_wait_seconds:
        Longest the async frontend holds an incomplete micro-batch open.
    cache_backend:
        Plan-cache backend spec for :func:`repro.engine.backends.open_backend`
        (``"memory"``, ``"memory:<N>"``, ``"sqlite:<path>"``,
        ``"remote://host:port"`` for a shared ``repro cached`` server, or
        ``"tiered:memory:<N>+remote://host:port"`` for an in-process LRU in
        front of the shared tier); ``None`` means a fresh in-memory backend.
    max_cache_entries:
        Optional LRU bound forwarded to the backend.
    opq_core:
        Algorithm 2 core for cold OPQ builds: ``"auto"`` (numpy when
        available), ``"python"``, or ``"numpy"`` (falls back to python when
        numpy is absent).  ``None`` defers to the ``SLADE_OPQ_CORE``
        environment variable, then ``auto``.
    drift_window / drift_min_observations / drift_tolerance /
    drift_tolerance_above:
        Per-menu :class:`~repro.crowd.monitoring.QualityMonitor` tunables for
        the drift-driven calibration loop: sliding-window size, minimum
        observations before a cardinality can be flagged, and the tolerance
        band (``drift_tolerance_above`` defaults to ``drift_tolerance``,
        i.e. a symmetric band).
    drift_check_seconds:
        Interval of the HTTP server's background drift sweep; ``0`` disables
        the background worker (observations are still collected and a sweep
        can be driven manually).
    """

    solver: str = "opq"
    solver_options: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    verify: bool = True
    threshold_floor: Optional[float] = None
    threshold_cap: Optional[float] = None
    max_batch_size: int = 16
    max_wait_seconds: float = 0.01
    cache_backend: Optional[str] = None
    max_cache_entries: Optional[int] = None
    opq_core: Optional[str] = None
    drift_window: int = 200
    drift_min_observations: int = 30
    drift_tolerance: float = 0.05
    drift_tolerance_above: Optional[float] = None
    drift_check_seconds: float = 1.0

    def __post_init__(self) -> None:
        if self.opq_core is not None and self.opq_core not in (
            "auto", "python", "numpy"
        ):
            raise ServiceError(
                f"opq_core must be 'auto', 'python', or 'numpy'; "
                f"got {self.opq_core!r}"
            )
        if self.max_batch_size < 1:
            raise ServiceError(
                f"max_batch_size must be >= 1; got {self.max_batch_size}"
            )
        if self.max_wait_seconds < 0:
            raise ServiceError(
                f"max_wait_seconds must be >= 0; got {self.max_wait_seconds}"
            )
        for label, bound in (
            ("threshold_floor", self.threshold_floor),
            ("threshold_cap", self.threshold_cap),
        ):
            if bound is not None and not (0.0 <= bound < 1.0):
                raise ServiceError(f"{label} must lie in [0, 1); got {bound}")
        if (
            self.threshold_floor is not None
            and self.threshold_cap is not None
            and self.threshold_floor > self.threshold_cap
        ):
            raise ServiceError(
                f"threshold_floor {self.threshold_floor} exceeds "
                f"threshold_cap {self.threshold_cap}"
            )
        if self.drift_window < 1:
            raise ServiceError(
                f"drift_window must be >= 1; got {self.drift_window}"
            )
        if not 1 <= self.drift_min_observations <= self.drift_window:
            raise ServiceError(
                "drift_min_observations must lie in [1, drift_window]; "
                f"got {self.drift_min_observations}"
            )
        for label, bound in (
            ("drift_tolerance", self.drift_tolerance),
            ("drift_tolerance_above", self.drift_tolerance_above),
        ):
            if bound is not None and not (0.0 < bound < 1.0):
                raise ServiceError(
                    f"{label} must lie strictly between 0 and 1; got {bound}"
                )
        if self.drift_check_seconds < 0:
            raise ServiceError(
                f"drift_check_seconds must be >= 0; got {self.drift_check_seconds}"
            )

    def clamp_threshold(self, threshold: float) -> float:
        """Apply the configured floor/cap to one threshold value."""
        if self.threshold_floor is not None and threshold < self.threshold_floor:
            threshold = self.threshold_floor
        if self.threshold_cap is not None and threshold > self.threshold_cap:
            threshold = self.threshold_cap
        return threshold

    @property
    def clamps_thresholds(self) -> bool:
        """Whether any clamping bound is active."""
        return self.threshold_floor is not None or self.threshold_cap is not None


def solver_options_dict(
    options: Mapping[str, Mapping[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Deep-copy a per-solver options mapping into plain dicts."""
    return {name: dict(opts) for name, opts in options.items()}
