"""The SLADE service layer: typed requests, a facade, and an async frontend.

This package is the top of the stack (core → algorithms → engine → service,
see ``DESIGN.md``): it turns the solver library into an online decomposition
service.

* :mod:`repro.service.api` — the typed request/response surface
  (:class:`SolveRequest`, :class:`SolveResponse`, :class:`ServiceConfig`,
  error envelopes).
* :mod:`repro.service.facade` — :class:`SladeService`, the synchronous
  entry point that validates, normalises, dispatches through a shared
  :class:`~repro.engine.planner.BatchPlanner`, and never raises for
  request-level failures.
* :mod:`repro.service.async_service` — :class:`AsyncSladeService`, the
  asyncio micro-batching frontend that coalesces streaming ``submit()``
  traffic into the shared-menu batches the plan cache exploits.

Typical use::

    from repro.service import ServiceConfig, SladeService, SolveRequest

    service = SladeService(ServiceConfig(cache_backend="sqlite:plans.db"))
    response = service.solve(SolveRequest(problem=problem))
    if response.ok:
        print(response.total_cost, response.cache)   # e.g. 0.68 'miss'
"""

from repro.service.api import (
    CACHE_BYPASS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NONE,
    ErrorEnvelope,
    RequestValidationError,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    SolveRequest,
    SolveResponse,
)
from repro.service.async_service import AsyncSladeService
from repro.service.facade import SladeService

__all__ = [
    "AsyncSladeService",
    "CACHE_BYPASS",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_NONE",
    "ErrorEnvelope",
    "RequestValidationError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "SladeService",
    "SolveRequest",
    "SolveResponse",
]
