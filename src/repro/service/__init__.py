"""The SLADE service layer: typed requests, a facade, async + HTTP frontends.

This package is the top of the stack (core → algorithms → engine → service,
see ``DESIGN.md``): it turns the solver library into an online decomposition
service.

* :mod:`repro.service.api` — the typed request/response surface
  (:class:`SolveRequest`, :class:`SolveResponse`, :class:`ServiceConfig`,
  error envelopes and the ``envelope_from_error`` / ``failure_response`` /
  ``http_status_for`` helpers every transport shares).
* :mod:`repro.service.facade` — :class:`SladeService`, the synchronous
  entry point that validates, normalises, dispatches through a shared
  :class:`~repro.engine.planner.BatchPlanner`, and never raises for
  request-level failures.
* :mod:`repro.service.async_service` — :class:`AsyncSladeService`, the
  asyncio micro-batching frontend that coalesces streaming ``submit()``
  traffic into the shared-menu batches the plan cache exploits.
* :mod:`repro.service.transport` — the HTTP/1.1 server
  (:class:`HttpSladeServer`) plus per-tenant admission control
  (:class:`AdmissionController`), all stdlib.
* :mod:`repro.service.client` — :class:`SladeHttpClient`, a ``urllib``
  client for the HTTP transport (tests, benchmarks, the CI smoke job).

Typical use::

    from repro.service import ServiceConfig, SladeService, SolveRequest

    service = SladeService(ServiceConfig(cache_backend="sqlite:plans.db"))
    response = service.solve(SolveRequest(problem=problem))
    if response.ok:
        print(response.total_cost, response.cache)   # e.g. 0.68 'miss'
"""

from repro.service.api import (
    CACHE_BYPASS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NONE,
    TIER_BUILD,
    TIER_CACHE,
    TIER_GREEDY,
    TIER_SOLVER,
    AdmissionError,
    AuthenticationError,
    DeadlineExceededError,
    ErrorEnvelope,
    OverloadedError,
    Provenance,
    RateLimitedError,
    RequestValidationError,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    SolveRequest,
    SolveResponse,
    envelope_from_error,
    failure_response,
    http_status_for,
)
from repro.service.async_service import AsyncSladeService
from repro.service.client import AsyncSladeHttpClient, HttpReply, SladeHttpClient
from repro.service.facade import SladeService
from repro.service.normalize import (
    check_not_expired,
    parse_request_payload,
    remaining_budget_seconds,
    stamp_deadline,
)
from repro.service.transport import (
    AdmissionController,
    HttpSladeServer,
    TokenBucket,
    run_http_server,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AsyncSladeHttpClient",
    "AsyncSladeService",
    "AuthenticationError",
    "CACHE_BYPASS",
    "CACHE_HIT",
    "CACHE_MISS",
    "CACHE_NONE",
    "DeadlineExceededError",
    "ErrorEnvelope",
    "HttpReply",
    "HttpSladeServer",
    "OverloadedError",
    "Provenance",
    "RateLimitedError",
    "RequestValidationError",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceError",
    "SladeHttpClient",
    "SladeService",
    "SolveRequest",
    "SolveResponse",
    "TIER_BUILD",
    "TIER_CACHE",
    "TIER_GREEDY",
    "TIER_SOLVER",
    "TokenBucket",
    "check_not_expired",
    "envelope_from_error",
    "failure_response",
    "http_status_for",
    "parse_request_payload",
    "remaining_budget_seconds",
    "run_http_server",
    "stamp_deadline",
]
