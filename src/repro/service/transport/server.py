"""The asyncio HTTP server in front of the micro-batching service frontend.

:class:`HttpSladeServer` binds the stdlib-only HTTP/1.1 layer
(:mod:`repro.service.transport.http11`) onto one shared
:class:`~repro.service.async_service.AsyncSladeService`, so concurrent
requests from independent connections coalesce into the same planner
micro-batches and OPQ cache a single-process deployment already exploits.

Routes
------
``POST /v2/solve`` (``/v1/solve`` is a compatible alias)
    One solve request (the :func:`repro.io.serialization.solve_request_to_dict`
    shape, including the compact inline form); answers the matching
    ``solve_response`` JSON.  Application-level failures (infeasible plans,
    unknown solvers) come back as HTTP 200 with ``ok=false`` — the request
    was served; the *solve* failed.  Transport and admission failures use
    4xx/5xx with the same envelope shape.
``POST /v2/solve/batch`` (``/v1/solve/batch`` is a compatible alias)
    ``{"requests": [...]}``; items are parsed and solved with per-item
    failure isolation and answered in order as ``{"responses": [...]}``.
``POST /v2/feedback``
    Execution outcomes for the drift-driven calibration loop:
    ``{"bins": <menu>, "observations": [[cardinality, correct], ...]}``.
    Observations feed the menu's quality monitor; when drift exceeds the
    tolerance the background revalidation worker recalibrates the menu at a
    new epoch and retires the stale cached plans with targeted deletes.
``GET /healthz``
    Liveness: a small JSON document answered from the event loop even while
    solves are running in the worker executor.
``GET /metrics``
    The shared telemetry snapshot — cache hits/misses/evictions, planner and
    service batch sizes, queue waits, admission counters, HTTP statuses —
    as Prometheus text by default or JSON with ``?format=json``.

Admission control runs before any solve work — and before any *parse* work:
``/v2/solve`` charges the connection-level identity (``X-Tenant`` header,
else ``anonymous``) ahead of reading the body, then refunds and re-admits
under the body's ``tenant`` field when it names someone else (the field
wins).  An exhausted tenant therefore cannot spend server CPU on
multi-megabyte bodies.  Rejections return structured 429/503 envelopes with
``Retry-After`` when the bucket can estimate one.

When a shared secret is configured (``serve --auth-token``), the solve
endpoints additionally require ``Authorization: Bearer <token>`` (or
``X-Auth-Token: <token>``) *before* admission is charged, and reply with a
structured 401 envelope on mismatch — closing the previously-trusted
``X-Tenant`` rider, where any caller could bill an arbitrary tenant's
quota.  ``/healthz`` and ``/metrics`` stay open for probes and scrapers.

Deadline propagation: ``deadline_ms`` on a request is converted to an
absolute instant when the body is parsed, so time spent queueing (admission,
micro-batch coalescing) counts against the budget.  A budget already blown
at parse is rejected with a structured 503 envelope before the request is
ever submitted — an expired-in-queue request never reaches the planner.

Shutdown is clean: :meth:`HttpSladeServer.close` stops accepting
connections, lets every in-flight request finish and flush its response,
then closes idle keep-alive connections and drains the async service.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.errors import SladeError
from repro.engine.telemetry import render_prometheus
from repro.service.api import (
    AuthenticationError,
    DeadlineExceededError,
    RateLimitedError,
    ServiceClosedError,
    ServiceConfig,
    ServiceError,
    SolveRequest,
    failure_response,
    http_status_for,
)
from repro.service.async_service import AsyncSladeService
from repro.service.normalize import check_not_expired, parse_request_payload
from repro.service.transport.admission import DEFAULT_TENANT, AdmissionController
from repro.service.transport.http11 import (
    MAX_BODY_BYTES,
    HttpRequest,
    ProtocolError,
    read_request,
    render_response,
)

#: Errors a request body can legitimately trigger while being parsed.
_PARSE_ERRORS = (SladeError, KeyError, ValueError, TypeError)


class HttpSladeServer:
    """Serve the SLADE service over HTTP/1.1 on one asyncio event loop.

    Parameters
    ----------
    service:
        An existing :class:`~repro.service.async_service.AsyncSladeService`
        to expose; a fresh one is built from ``config`` when omitted
        (mutually exclusive, mirroring the async frontend's constructor).
    config:
        Service tunables used when building the frontend.
    admission:
        The gatekeeper charged per request; an unlimited controller is built
        when omitted.  Its telemetry defaults to the service's registry so
        ``/metrics`` shows admission counters without extra wiring.
    include_plans:
        Server default for plan bodies in responses; per-request
        ``?plan=0`` / ``?plan=1`` query parameters override it.
    max_body:
        Largest accepted request body in bytes.
    auth_token:
        Optional shared secret required on the solve endpoints (via
        ``Authorization: Bearer <token>`` or ``X-Auth-Token``); ``None``
        leaves them open.  ``/healthz`` and ``/metrics`` are never gated.
    """

    def __init__(
        self,
        service: Optional[AsyncSladeService] = None,
        config: Optional[ServiceConfig] = None,
        admission: Optional[AdmissionController] = None,
        include_plans: bool = True,
        max_body: int = MAX_BODY_BYTES,
        auth_token: Optional[str] = None,
    ) -> None:
        if service is None:
            service = AsyncSladeService(config=config)
        elif config is not None:
            raise ValueError("pass either service or config, not both")
        self.service = service
        self.telemetry = service.telemetry
        if admission is None:
            admission = AdmissionController(telemetry=self.telemetry)
        elif admission.telemetry is None:
            admission.telemetry = self.telemetry
        self.admission = admission
        self.include_plans = include_plans
        self.max_body = max_body
        self.auth_token = auth_token
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._inflight_solves = 0
        self._active_requests = 0
        #: Set whenever _active_requests hits zero; close() waits on it
        #: instead of polling the counter in a sleep loop.
        self._drained = asyncio.Event()
        self._drained.set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._handlers: Set["asyncio.Task[None]"] = set()
        self._request_ids = itertools.count(1)
        #: The background drift-revalidation worker (held so close() can
        #: cancel it; never fire-and-forget).
        self._drift_task: Optional["asyncio.Task[None]"] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting; returns the bound ``(host, port)``.

        Port 0 asks the OS for a free port (tests and benchmarks).
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        # Bind before starting the service: a failed bind must not leave the
        # micro-batching dispatch task (and the cache backend) running.
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        try:
            await self.service.start()
        except BaseException:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            raise
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        interval = self.service.service.config.drift_check_seconds
        if interval > 0:
            self._drift_task = asyncio.get_running_loop().create_task(
                self._drift_loop(interval)
            )
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Block until the server is closed (the CLI's main coroutine)."""
        assert self._server is not None, "call start() first"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - cancelled on close
            pass

    async def close(self) -> None:
        """Stop accepting, drain in-flight requests, close the service."""
        if self._closing:
            return
        self._closing = True
        if self._drift_task is not None:
            self._drift_task.cancel()
            try:
                await self._drift_task
            except asyncio.CancelledError:
                pass
            self._drift_task = None
        if self._server is not None:
            self._server.close()
        # Let requests already being handled finish and flush their
        # responses; new requests on existing connections get 503 envelopes.
        await self._drained.wait()
        # Idle keep-alive connections are blocked reading the next request;
        # closing their transports resolves the read with EOF.
        for writer in list(self._writers):
            writer.close()
        handlers = [task for task in self._handlers if not task.done()]
        if handlers:
            await asyncio.gather(*handlers, return_exceptions=True)
        if self._server is not None:
            await self._server.wait_closed()
        await self.service.close()

    @property
    def base_url(self) -> str:
        """The ``http://host:port`` prefix of the bound server."""
        assert self.host is not None and self.port is not None
        return f"http://{self.host}:{self.port}"

    # -- the drift-revalidation worker -----------------------------------------

    async def _drift_loop(self, interval: float) -> None:
        """Periodically recalibrate drifted menus off the event loop.

        The sweep runs in the worker executor (it performs Algorithm 2
        builds and cache-backend round trips) and is itself fail-open, so
        the worst this loop can do to the serving path is nothing.
        """
        loop = asyncio.get_running_loop()
        drift = self.service.service.drift
        while not self._closing:
            await asyncio.sleep(interval)
            if self._closing:  # pragma: no cover - raced with close()
                return
            await loop.run_in_executor(None, drift.revalidate_drifted)

    # -- connection handling ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        self._writers.add(writer)
        try:
            await self._connection_loop(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _connection_loop(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await read_request(reader, self.max_body)
            except ProtocolError as exc:
                self.telemetry.increment("http.protocol_errors")
                writer.write(self._error_bytes(exc.status, exc, keep_alive=False))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            if request is None:
                return
            # Counted until the response is flushed, so close() never cuts a
            # connection that still owes its client bytes.
            self._active_requests += 1
            self._drained.clear()
            try:
                keep_alive = request.keep_alive and not self._closing
                try:
                    payload = await self._dispatch(request, keep_alive)
                except Exception as exc:  # noqa: BLE001 - last-resort 500
                    payload = self._error_bytes(500, exc, keep_alive=False)
                    keep_alive = False
                writer.write(payload)
                await writer.drain()
            finally:
                self._active_requests -= 1
                if self._active_requests == 0:
                    self._drained.set()
            if not keep_alive:
                return

    # -- routing ---------------------------------------------------------------

    async def _dispatch(self, request: HttpRequest, keep_alive: bool) -> bytes:
        self.telemetry.increment("http.requests")
        if request.path == "/healthz":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET", keep_alive)
            return self._respond_healthz(keep_alive)
        if request.path == "/metrics":
            if request.method != "GET":
                return self._method_not_allowed(request, "GET", keep_alive)
            # Backend gauges make real cache-server round trips (remote
            # __len__ / server_stats); a slow scrape must not stall the loop.
            return await asyncio.get_running_loop().run_in_executor(
                None, self._respond_metrics, request, keep_alive
            )
        if request.path in ("/v2/solve", "/v1/solve"):
            if request.method != "POST":
                return self._method_not_allowed(request, "POST", keep_alive)
            denied = self._check_auth(request, keep_alive)
            if denied is not None:
                return denied
            return await self._respond_solve(request, keep_alive)
        if request.path in ("/v2/solve/batch", "/v1/solve/batch"):
            if request.method != "POST":
                return self._method_not_allowed(request, "POST", keep_alive)
            denied = self._check_auth(request, keep_alive)
            if denied is not None:
                return denied
            return await self._respond_solve_batch(request, keep_alive)
        if request.path == "/v2/feedback":
            if request.method != "POST":
                return self._method_not_allowed(request, "POST", keep_alive)
            denied = self._check_auth(request, keep_alive)
            if denied is not None:
                return denied
            return await self._respond_feedback(request, keep_alive)
        return self._error_bytes(
            404, SladeError(f"no route for {request.method} {request.path}"),
            keep_alive=keep_alive,
        )

    def _check_auth(self, request: HttpRequest, keep_alive: bool) -> Optional[bytes]:
        """401 bytes when the shared-secret check fails; ``None`` when it passes.

        Runs before admission so an unauthenticated caller can neither bill an
        arbitrary ``X-Tenant`` bucket nor occupy an in-flight slot.
        """
        if self.auth_token is None:
            return None
        bearer = request.header("authorization")
        if bearer is not None and bearer.strip() == f"Bearer {self.auth_token}":
            return None
        if request.header("x-auth-token") == self.auth_token:
            return None
        self.telemetry.increment("admission.unauthorized")
        return self._error_bytes(
            401,
            AuthenticationError(
                "missing or invalid auth token; pass 'Authorization: "
                "Bearer <token>' or 'X-Auth-Token'"
            ),
            keep_alive=keep_alive,
        )

    # -- solve endpoints -------------------------------------------------------

    async def _respond_solve(self, request: HttpRequest, keep_alive: bool) -> bytes:
        request_id = f"http-{next(self._request_ids)}"
        if self._closing:
            return self._error_bytes(
                503, ServiceClosedError("server is shutting down"),
                keep_alive=False, request_id=request_id,
            )
        # Admit the connection-level identity (header, else the default
        # tenant) *before* spending any parse work, so a quota-exhausted
        # tenant cannot burn CPU on multi-megabyte bodies.  If the parsed
        # body names a different tenant (the field wins), the provisional
        # charge is refunded and the real tenant admitted instead.
        provisional = request.header("x-tenant") or DEFAULT_TENANT
        # The budget clock starts when the request is in hand, before any
        # queueing (admission, executor scheduling, micro-batch coalescing)
        # can eat into it.
        received_at = time.monotonic()
        try:
            ticket = self.admission.admit(provisional)
        except ServiceError as exc:
            return self._error_bytes(
                http_status_for(exc), exc, keep_alive=keep_alive,
                request_id=request_id,
            )
        # Parse in the worker executor: a multi-megabyte body must not stall
        # the event loop (and with it /healthz and every other connection).
        loop = asyncio.get_running_loop()
        try:
            solve_request = await loop.run_in_executor(
                None, _parse_solve_body, request.body, request_id, received_at
            )
        except _PARSE_ERRORS as exc:
            # No refund: the tenant did consume a parse attempt.
            ticket.release()
            return self._error_bytes(
                http_status_for(exc), exc, keep_alive=keep_alive,
                request_id=request_id,
            )
        tenant = self._tenant_for(solve_request, request)
        if tenant != ticket.tenant:
            ticket.refund()
            try:
                ticket = self.admission.admit(tenant)
            except ServiceError as exc:
                return self._error_bytes(
                    http_status_for(exc), exc, keep_alive=keep_alive,
                    request_id=solve_request.request_id or request_id,
                )
        # A budget already blown (e.g. burned by admission wait) is rejected
        # here, before the request is ever enqueued toward the planner.
        try:
            check_not_expired(solve_request, where="submit")
        except DeadlineExceededError as exc:
            ticket.release()
            self.telemetry.increment("deadline.requests")
            self.telemetry.increment("deadline.expired")
            return self._error_bytes(
                503, exc, keep_alive=keep_alive,
                request_id=solve_request.request_id or request_id,
            )
        self._inflight_solves += 1
        try:
            with ticket:
                response = await self.service.submit(solve_request)
        finally:
            self._inflight_solves -= 1
        # Imported here, matching the engine: repro.io sits above the service
        # layer, so the transport resolves it lazily.
        from repro.io.serialization import solve_response_to_dict

        body = solve_response_to_dict(
            response, include_plan=self._include_plan(request)
        )
        return self._json_bytes(200, body, keep_alive)

    async def _respond_solve_batch(
        self, request: HttpRequest, keep_alive: bool
    ) -> bytes:
        batch_id = f"http-{next(self._request_ids)}"
        if self._closing:
            return self._error_bytes(
                503, ServiceClosedError("server is shutting down"),
                keep_alive=False, request_id=batch_id,
            )
        received_at = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            batch_tenant, entry_count, parsed, failures = await loop.run_in_executor(
                None, _parse_batch_body, request.body, batch_id, received_at
            )
        except _PARSE_ERRORS as exc:
            return self._error_bytes(
                http_status_for(exc), exc, keep_alive=keep_alive,
                request_id=batch_id,
            )
        # A batch is admitted as one unit under one tenant; allowing mixed
        # tenants would charge the whole cost to a single bucket and break
        # the tenant-isolation contract.
        fallback = batch_tenant or request.header("x-tenant") or DEFAULT_TENANT
        tenants = {item.tenant or fallback for _index, item in parsed}
        if len(tenants) > 1:
            return self._error_bytes(
                400,
                SladeError(
                    "a batch must belong to one tenant; got "
                    + ", ".join(sorted(tenants))
                ),
                keep_alive=keep_alive, request_id=batch_id,
            )
        try:
            ticket = (
                self.admission.admit(tenants.pop(), cost=len(parsed))
                if parsed
                else None
            )
        except ServiceError as exc:
            return self._error_bytes(
                http_status_for(exc), exc, keep_alive=keep_alive,
                request_id=batch_id,
            )
        responses: Dict[int, Any] = dict(failures)
        if parsed:
            self._inflight_solves += len(parsed)
            try:
                assert ticket is not None
                with ticket:
                    solved = await self.service.submit_many(
                        [item for _index, item in parsed]
                    )
            finally:
                self._inflight_solves -= len(parsed)
            for (index, _item), response in zip(parsed, solved):
                responses[index] = response
        from repro.io.serialization import solve_response_to_dict

        include_plan = self._include_plan(request)
        body = {
            "kind": "solve_batch_response",
            "version": 1,
            "request_id": batch_id,
            "responses": [
                solve_response_to_dict(responses[index], include_plan=include_plan)
                for index in range(entry_count)
            ],
        }
        return self._json_bytes(200, body, keep_alive)

    async def _respond_feedback(self, request: HttpRequest, keep_alive: bool) -> bytes:
        """Ingest calibration observations for the drift loop.

        Recording is cheap (deque appends behind a lock) but parsing a
        multi-megabyte body is not, so both run in the worker executor.
        Malformed documents get the standard 400 envelope; a valid document
        always succeeds — observation intake never touches the cache or the
        planner.
        """
        request_id = f"http-{next(self._request_ids)}"
        if self._closing:
            return self._error_bytes(
                503, ServiceClosedError("server is shutting down"),
                keep_alive=False, request_id=request_id,
            )
        drift = self.service.service.drift
        loop = asyncio.get_running_loop()
        try:
            recorded = await loop.run_in_executor(
                None, lambda: drift.ingest_feedback(json.loads(request.body))
            )
        except _PARSE_ERRORS as exc:
            return self._error_bytes(
                http_status_for(exc), exc, keep_alive=keep_alive,
                request_id=request_id,
            )
        body = {
            "kind": "feedback_response",
            "version": 1,
            "request_id": request_id,
            "recorded": recorded,
        }
        return self._json_bytes(200, body, keep_alive)

    def _tenant_for(
        self, solve_request: SolveRequest, request: HttpRequest
    ) -> str:
        return (
            solve_request.tenant
            or request.header("x-tenant")
            or DEFAULT_TENANT
        )

    def _include_plan(self, request: HttpRequest) -> bool:
        flag = request.query.get("plan")
        if flag is None:
            return self.include_plans
        return flag not in ("0", "false", "no")

    # -- observability endpoints -----------------------------------------------

    def _respond_healthz(self, keep_alive: bool) -> bytes:
        body = {
            "status": "draining" if self._closing else "ok",
            "inflight_solves": self._inflight_solves,
            "admitted_inflight": self.admission.total_inflight,
            "requests": self.telemetry.counter("http.requests"),
        }
        return self._json_bytes(200, body, keep_alive)

    def _respond_metrics(self, request: HttpRequest, keep_alive: bool) -> bytes:
        facade = self.service.service
        stats = facade.cache_stats
        extra = {
            "cache.entries": float(stats.entries),
            "http.inflight_solves": float(self._inflight_solves),
            "admission.inflight": float(self.admission.total_inflight),
        }
        # Tier and server-side gauges from remote/tiered backends (fail-open:
        # an unreachable cache server contributes nothing to the scrape).
        extra.update(facade.cache.backend_metrics())
        # Drift-loop gauges: monitored/drifted menu counts and the worst
        # current shortfall across every monitored cardinality.
        extra.update(facade.drift.gauges())
        snapshot = self.telemetry.snapshot()
        if request.query.get("format") == "json":
            merged = dict(snapshot)
            merged.update(extra)
            return self._json_bytes(200, merged, keep_alive)
        text = render_prometheus(
            snapshot, extra=extra, histograms=self.telemetry.histograms()
        )
        self.telemetry.increment("http.responses.200")
        return render_response(
            200, text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
            keep_alive=keep_alive,
        )

    # -- response rendering ----------------------------------------------------

    def _json_bytes(self, status: int, body: Dict[str, Any], keep_alive: bool) -> bytes:
        self.telemetry.increment(f"http.responses.{status}")
        return render_response(
            status, json.dumps(body).encode("utf-8"), keep_alive=keep_alive
        )

    def _error_bytes(
        self,
        status: int,
        exc: BaseException,
        keep_alive: bool,
        request_id: Optional[str] = None,
    ) -> bytes:
        """A structured error envelope with transport status headers."""
        from repro.io.serialization import solve_response_to_dict

        self.telemetry.increment(f"http.responses.{status}")
        response = failure_response(request_id or "http", exc)
        headers: Dict[str, str] = {}
        if isinstance(exc, RateLimitedError) and exc.retry_after is not None:
            headers["Retry-After"] = str(max(1, int(exc.retry_after + 0.999)))
        return render_response(
            status,
            json.dumps(solve_response_to_dict(response, include_plan=False)).encode(
                "utf-8"
            ),
            extra_headers=headers or None,
            keep_alive=keep_alive,
        )

    def _method_not_allowed(
        self, request: HttpRequest, allowed: str, keep_alive: bool
    ) -> bytes:
        return self._error_bytes(
            405,
            SladeError(f"{request.path} only accepts {allowed}"),
            keep_alive=keep_alive,
        )


def _parse_solve_body(
    body: bytes, request_id: str, received_at: float
) -> SolveRequest:
    """Decode and validate one solve body (runs in the worker executor).

    Normalisation — including anchoring ``deadline_ms`` at ``received_at`` —
    goes through the shared :func:`repro.service.normalize.parse_request_payload`
    door, so the HTTP path accepts and rejects exactly what the JSON-lines
    loop does.
    """
    return parse_request_payload(
        json.loads(body), default_request_id=request_id, received_at=received_at
    )


def _parse_batch_body(
    body: bytes, batch_id: str, received_at: float
) -> Tuple[Optional[str], int, List[Tuple[int, SolveRequest]], Dict[int, Any]]:
    """Decode a batch body into (payload tenant, entry count, parsed, failures).

    Runs in the worker executor.  Per-item failure isolation mirrors
    :meth:`SladeService.solve_batch`: a malformed item becomes its own
    ``ok=False`` envelope without sinking its batch-mates.  Every item's
    deadline is anchored at the same ``received_at``; an item already expired
    when the batch is dispatched becomes a per-item 200 envelope (the facade
    rejects it without planner work).
    """
    payload = json.loads(body)
    entries = payload.get("requests") if isinstance(payload, dict) else None
    if not isinstance(entries, list) or not entries:
        raise SladeError("batch payload needs a non-empty 'requests' list")

    parsed: List[Tuple[int, SolveRequest]] = []
    failures: Dict[int, Any] = {}
    for index, entry in enumerate(entries):
        item_id = f"{batch_id}-{index}"
        try:
            parsed.append(
                (
                    index,
                    parse_request_payload(
                        entry,
                        default_request_id=item_id,
                        received_at=received_at,
                    ),
                )
            )
        except _PARSE_ERRORS as exc:
            failures[index] = failure_response(item_id, exc)
    return payload.get("tenant"), len(entries), parsed, failures


async def run_http_server(
    host: str,
    port: int,
    config: Optional[ServiceConfig] = None,
    admission: Optional[AdmissionController] = None,
    include_plans: bool = True,
    stop: Optional["asyncio.Event"] = None,
    on_ready: Optional[Callable[["HttpSladeServer"], None]] = None,
    auth_token: Optional[str] = None,
) -> HttpSladeServer:
    """Start a server, run until ``stop`` is set, close cleanly.

    The CLI's ``repro serve --http`` entry point; ``on_ready(server)`` fires
    once the socket is bound (used to print the listening address).  Returns
    the closed server so callers can read final telemetry.
    """
    # Construction opens the cache backend (possibly SQLite or a remote
    # connection pool) — blocking work that belongs off the event loop.
    server = await asyncio.get_running_loop().run_in_executor(
        None,
        lambda: HttpSladeServer(
            config=config, admission=admission, include_plans=include_plans,
            auth_token=auth_token,
        ),
    )
    try:
        await server.start(host, port)
    except BaseException:
        # The facade (and its cache backend) exists even when the bind
        # failed; release it rather than leaking the backend connection.
        await server.service.close()
        raise
    if on_ready is not None:
        on_ready(server)
    try:
        if stop is not None:
            await stop.wait()
        else:  # pragma: no cover - interactive use only
            await server.serve_forever()
    finally:
        await server.close()
    return server
