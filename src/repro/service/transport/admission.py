"""Admission control: per-tenant token buckets and in-flight quotas.

A shared planner serves every tenant from one process, so a single greedy
caller can starve everyone else without a gatekeeper.  The
:class:`AdmissionController` sits in front of the service facade and answers
one question per request: *may this tenant submit now?*  Three independent
limits apply, each optional:

* a **global in-flight cap** protecting the process as a whole — exceeding
  it raises :class:`~repro.service.api.OverloadedError` (HTTP 503);
* a **per-tenant in-flight cap** bounding one tenant's concurrency —
  exceeding it raises :class:`~repro.service.api.RateLimitedError` (429);
* a **per-tenant token bucket** bounding sustained request rate: each tenant
  holds up to ``burst`` tokens, refilled at ``rate`` tokens/second, and a
  request costs one token (a batch of *k* costs *k*).  An empty bucket
  raises :class:`~repro.service.api.RateLimitedError` carrying the
  ``retry_after`` estimate transports surface as a ``Retry-After`` header.

Buckets are isolated by construction: tenant A draining its bucket never
touches tenant B's tokens or in-flight count (pinned by
``tests/service/test_admission.py`` and the transport-level tests).

Admission is a context manager so the in-flight count cannot leak::

    with controller.admit("tenant-a", cost=3):
        responses = await service.submit_many(requests)

The controller is thread-safe and takes an injectable ``clock`` so tests can
drive refill deterministically.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.engine.telemetry import Telemetry
from repro.service.api import (
    OverloadedError,
    RateLimitedError,
    RequestValidationError,
    ServiceError,
)

#: Accounting identity for requests that do not name a tenant.
DEFAULT_TENANT = "anonymous"


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate`` tokens/second.

    Not thread-safe on its own; :class:`AdmissionController` serialises
    access under its lock.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ServiceError(f"token bucket rate must be positive; got {rate}")
        if burst < 1:
            raise ServiceError(f"token bucket burst must be >= 1; got {burst}")
        self.rate = rate
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._updated = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    @property
    def tokens(self) -> float:
        """Tokens available right now (after refill)."""
        self._refill()
        return self._tokens

    def try_acquire(self, cost: float = 1.0) -> Optional[float]:
        """Spend ``cost`` tokens; return ``None`` on success.

        On failure returns the estimated seconds until ``cost`` tokens will
        have accumulated (the transport's ``Retry-After``).
        """
        self._refill()
        if self._tokens >= cost:
            self._tokens -= cost
            return None
        return (cost - self._tokens) / self.rate

    def credit(self, cost: float) -> None:
        """Return ``cost`` tokens (capped at burst).

        Used when an admitted request is re-assigned to another tenant
        before doing any work, so the provisional tenant is not charged.
        """
        self._refill()
        self._tokens = min(self.burst, self._tokens + cost)


class _TenantState:
    """Per-tenant admission bookkeeping (bucket + in-flight count)."""

    __slots__ = ("bucket", "inflight")

    def __init__(self, bucket: Optional[TokenBucket]) -> None:
        self.bucket = bucket
        self.inflight = 0


class AdmissionTicket:
    """Proof of admission; releases the in-flight slots on exit."""

    def __init__(self, controller: "AdmissionController", tenant: str, cost: int) -> None:
        self._controller = controller
        self.tenant = tenant
        self.cost = cost
        self._released = False

    def release(self) -> None:
        """Return the in-flight slots (idempotent)."""
        if not self._released:
            self._released = True
            self._controller._release(self.tenant, self.cost)

    def refund(self) -> None:
        """Return the in-flight slots *and* the bucket tokens (idempotent).

        For admissions that never did any work — e.g. the transport charged
        a provisional tenant before parsing, then the request named a
        different one.
        """
        if not self._released:
            self._released = True
            self._controller._release(self.tenant, self.cost, refund=True)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.release()


class AdmissionController:
    """Gatekeeper in front of the service facade.

    Parameters
    ----------
    rate:
        Per-tenant sustained request rate in requests/second; ``None``
        disables rate limiting.
    burst:
        Per-tenant bucket capacity (peak back-to-back requests); defaults to
        ``max(1, rate)`` when rate limiting is on.
    max_inflight:
        Per-tenant cap on concurrently admitted requests; ``None`` disables.
    max_total_inflight:
        Global cap on concurrently admitted requests across every tenant;
        ``None`` disables.
    tenant_limits:
        Per-tenant ``{tenant: (rate, burst)}`` token-bucket overrides for
        tiered quotas (a free tier throttled hard while a paid tier runs
        wide open).  A listed tenant gets its own bucket parameters; every
        other tenant falls back to the global ``rate``/``burst`` (or no
        bucket at all when ``rate`` is ``None``).  Isolation still holds:
        an over-quota tenant's rejections never touch another tenant's
        bucket (pinned by the fairness tests in
        ``tests/service/test_admission.py``).
    clock:
        Monotonic time source for bucket refill (injectable for tests).
    telemetry:
        Optional shared registry; admission reports ``admission.admitted`` /
        ``admission.rate_limited`` / ``admission.overloaded`` counters.
    """

    def __init__(
        self,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_inflight: Optional[int] = None,
        max_total_inflight: Optional[int] = None,
        tenant_limits: Optional[Mapping[str, Tuple[float, float]]] = None,
        clock: Callable[[], float] = time.monotonic,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if rate is None and burst is not None:
            raise ServiceError("burst requires rate to be set")
        for tenant, (tenant_rate, tenant_burst) in (tenant_limits or {}).items():
            if tenant_rate <= 0:
                raise ServiceError(
                    f"tenant {tenant!r} rate must be positive; got {tenant_rate}"
                )
            if tenant_burst < 1:
                raise ServiceError(
                    f"tenant {tenant!r} burst must be >= 1; got {tenant_burst}"
                )
        if max_inflight is not None and max_inflight < 1:
            raise ServiceError(f"max_inflight must be >= 1; got {max_inflight}")
        if max_total_inflight is not None and max_total_inflight < 1:
            raise ServiceError(
                f"max_total_inflight must be >= 1; got {max_total_inflight}"
            )
        self.rate = rate
        self.burst = burst if burst is not None else (
            max(1.0, rate) if rate is not None else None
        )
        self.max_inflight = max_inflight
        self.max_total_inflight = max_total_inflight
        self.tenant_limits: Dict[str, Tuple[float, float]] = dict(tenant_limits or {})
        self.telemetry = telemetry
        self._clock = clock
        self._lock = threading.Lock()
        self._tenants: Dict[str, _TenantState] = {}
        self._total_inflight = 0

    @property
    def limits_anything(self) -> bool:
        """Whether any limit is configured (an unlimited controller admits all)."""
        return (
            self.rate is not None
            or self.max_inflight is not None
            or self.max_total_inflight is not None
            or bool(self.tenant_limits)
        )

    @property
    def total_inflight(self) -> int:
        """Requests currently admitted and not yet released."""
        with self._lock:
            return self._total_inflight

    def tenant_inflight(self, tenant: str) -> int:
        """Requests currently admitted for one tenant."""
        with self._lock:
            state = self._tenants.get(tenant)
            return state.inflight if state is not None else 0

    def _limits_for(self, tenant: str) -> Tuple[Optional[float], Optional[float]]:
        """The effective ``(rate, burst)`` governing one tenant's bucket."""
        override = self.tenant_limits.get(tenant)
        if override is not None:
            return override
        return self.rate, self.burst

    def _state_for(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            rate, burst = self._limits_for(tenant)
            bucket = (
                TokenBucket(rate, burst, clock=self._clock)
                if rate is not None
                else None
            )
            state = self._tenants[tenant] = _TenantState(bucket)
        return state

    def admit(self, tenant: Optional[str], cost: int = 1) -> AdmissionTicket:
        """Admit ``cost`` requests for ``tenant`` or raise an admission error.

        The returned ticket must be released (it is a context manager) once
        the requests complete, returning their in-flight slots.

        A ``cost`` larger than any configured capacity can *never* be
        admitted, so it raises
        :class:`~repro.service.api.RequestValidationError` (a non-retryable
        400) instead of a 429/503 whose ``Retry-After`` would send the
        caller into an endless retry loop.
        """
        if cost < 1:
            raise ServiceError(f"admission cost must be >= 1; got {cost}")
        name = tenant if tenant else DEFAULT_TENANT
        _tenant_rate, tenant_burst = self._limits_for(name)
        for label, capacity in (
            ("per-tenant burst capacity", tenant_burst),
            ("per-tenant max_inflight", self.max_inflight),
            ("global max_total_inflight", self.max_total_inflight),
        ):
            if capacity is not None and cost > capacity:
                raise RequestValidationError(
                    f"a batch of {cost} request(s) can never be admitted: "
                    f"{label} is {capacity:g}; split the batch"
                )
        with self._lock:
            if (
                self.max_total_inflight is not None
                and self._total_inflight + cost > self.max_total_inflight
            ):
                self._note("admission.overloaded")
                raise OverloadedError(
                    f"service at capacity: {self._total_inflight} request(s) in "
                    f"flight (limit {self.max_total_inflight})"
                )
            state = self._state_for(name)
            if (
                self.max_inflight is not None
                and state.inflight + cost > self.max_inflight
            ):
                self._note("admission.rate_limited")
                raise RateLimitedError(
                    f"tenant {name!r} has {state.inflight} request(s) in flight "
                    f"(limit {self.max_inflight})"
                )
            if state.bucket is not None:
                retry_after = state.bucket.try_acquire(float(cost))
                if retry_after is not None:
                    self._note("admission.rate_limited")
                    raise RateLimitedError(
                        f"tenant {name!r} exceeded its request rate "
                        f"({state.bucket.rate:g}/s, burst "
                        f"{state.bucket.burst:g}); "
                        f"retry in {retry_after:.2f}s",
                        retry_after=retry_after,
                    )
            state.inflight += cost
            self._total_inflight += cost
            self._note("admission.admitted", cost)
        return AdmissionTicket(self, name, cost)

    def _release(self, tenant: str, cost: int, refund: bool = False) -> None:
        with self._lock:
            state = self._tenants.get(tenant)
            if state is not None:
                state.inflight = max(0, state.inflight - cost)
                if refund and state.bucket is not None:
                    state.bucket.credit(float(cost))
            self._total_inflight = max(0, self._total_inflight - cost)

    def _note(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name, amount)
