"""A minimal HTTP/1.1 reader/writer over ``asyncio`` streams.

The transport deliberately avoids third-party HTTP stacks so the service can
be deployed (and CI-tested) anywhere a Python interpreter runs.  The subset
implemented here is exactly what the SLADE service needs:

* request line + headers + ``Content-Length`` bodies (no chunked uploads,
  no multipart, no TLS — put a real proxy in front for those);
* persistent connections (HTTP/1.1 keep-alive, honouring
  ``Connection: close``);
* response rendering with correct ``Content-Length`` framing.

Malformed traffic raises :class:`ProtocolError` with a suggested status
code; the server converts it into a structured error envelope rather than
dropping the connection silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

if TYPE_CHECKING:  # only stream annotations need asyncio here
    import asyncio

#: Upper bound on accepted request bodies (16 MiB covers very large batch
#: payloads while bounding memory per connection).
MAX_BODY_BYTES = 16 * 1024 * 1024

#: Upper bound on one header line / the request line.
MAX_LINE_BYTES = 16 * 1024

#: Upper bound on the number of request headers.
MAX_HEADERS = 100

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    505: "HTTP Version Not Supported",
}


class ProtocolError(Exception):
    """The peer sent something that is not valid HTTP/1.x.

    ``status`` is the response code the server should answer with before
    closing the connection.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    version: str = "HTTP/1.1"

    @property
    def keep_alive(self) -> bool:
        """Whether the connection should persist after the response."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive header lookup."""
        return self.headers.get(name.lower(), default)


async def _read_line(reader: "asyncio.StreamReader", limit: int) -> bytes:
    try:
        line = await reader.readline()
    except ValueError:
        # StreamReader raises ValueError when a line overruns its internal
        # buffer limit before our own check can run.
        raise ProtocolError("header line too long", status=431) from None
    if len(line) > limit:
        raise ProtocolError("header line too long", status=431)
    return line


async def read_request(
    reader: "asyncio.StreamReader", max_body: int = MAX_BODY_BYTES
) -> Optional[HttpRequest]:
    """Read one request from the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` on malformed framing (bad request line,
    unsupported version, oversized body, non-integer ``Content-Length``).
    """
    request_line = await _read_line(reader, MAX_LINE_BYTES)
    if not request_line:
        return None
    try:
        text = request_line.decode("ascii").rstrip("\r\n")
    except UnicodeDecodeError:
        raise ProtocolError("request line is not ASCII") from None
    if not text:
        return None
    parts = text.split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line: {text!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise ProtocolError(f"unsupported protocol version {version!r}", status=505)

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_LINE_BYTES)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError("too many request headers", status=431)
        decoded = line.decode("latin-1").rstrip("\r\n")
        name, sep, value = decoded.partition(":")
        if not sep or not name.strip():
            raise ProtocolError(f"malformed header line: {decoded!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    raw_length = headers.get("content-length")
    if headers.get("transfer-encoding"):
        raise ProtocolError("chunked request bodies are not supported")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError:
            raise ProtocolError(f"invalid Content-Length {raw_length!r}") from None
        if length < 0:
            raise ProtocolError(f"invalid Content-Length {raw_length!r}")
        if length > max_body:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the {max_body}-byte limit",
                status=413,
            )
        body = await reader.readexactly(length)

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return HttpRequest(
        method=method.upper(),
        path=split.path or "/",
        query=query,
        headers=headers,
        body=body,
        version=version,
    )


def render_response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Serialise one response with correct ``Content-Length`` framing."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("ascii") + body


def reason_for(status: int) -> str:
    """The canonical reason phrase for a status code."""
    return _REASONS.get(status, "Unknown")


def split_host_port(spec: str, default_port: int = 8080) -> Tuple[str, int]:
    """Parse a ``HOST:PORT`` CLI spec (``:PORT`` binds every interface)."""
    host, sep, port_text = spec.rpartition(":")
    if not sep:
        return spec or "127.0.0.1", default_port
    if not port_text.isdigit():
        raise ValueError(f"invalid port in {spec!r}")
    port = int(port_text)
    if port > 65535:
        raise ValueError(f"port {port} out of range in {spec!r}")
    return host or "0.0.0.0", port
