"""Network transport for the SLADE service: HTTP/1.1 + admission control.

This package puts a real wire protocol in front of
:class:`~repro.service.async_service.AsyncSladeService`:

* :mod:`repro.service.transport.http11` — a dependency-free HTTP/1.1
  reader/writer over ``asyncio`` streams (request parsing, keep-alive,
  response rendering).  Stdlib only, so CI and deployments need no extra
  packages.
* :mod:`repro.service.transport.admission` — per-tenant token-bucket rate
  limits and max-inflight quotas; rejections raise the structured
  :class:`~repro.service.api.RateLimitedError` /
  :class:`~repro.service.api.OverloadedError` the transports turn into
  429/503 envelopes.
* :mod:`repro.service.transport.server` — :class:`HttpSladeServer`, the
  asyncio server exposing ``POST /v1/solve``, ``POST /v1/solve/batch``,
  ``GET /healthz`` and ``GET /metrics``, with concurrent requests
  micro-batching onto the shared planner and plan cache.
"""

from repro.service.transport.admission import (
    AdmissionController,
    AdmissionTicket,
    TokenBucket,
)
from repro.service.transport.http11 import HttpRequest, ProtocolError
from repro.service.transport.server import HttpSladeServer, run_http_server

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "HttpRequest",
    "HttpSladeServer",
    "ProtocolError",
    "TokenBucket",
    "run_http_server",
]
