"""Stdlib HTTP clients for the SLADE service transport.

:class:`SladeHttpClient` wraps ``urllib`` so tests, examples, benchmarks and
the CI smoke job can drive a running ``repro serve --http`` server without
any third-party dependency.  Every call returns an :class:`HttpReply` — the
status code, headers, and parsed JSON payload — and *never* raises on 4xx/5xx
responses: admission rejections and validation failures are data (structured
error envelopes), not exceptions, matching the service layer's philosophy.

:class:`AsyncSladeHttpClient` is the concurrent counterpart: an asyncio
HTTP/1.1 client holding one persistent keep-alive connection, so the load
harness (:mod:`repro.loadgen`) can keep hundreds of requests in flight from
one event loop without a thread per connection.  It returns the same
:class:`HttpReply` shape with the same never-raise-on-4xx/5xx contract.

Both clients share one request-encoding / path-building / header-building
pipeline (:func:`_payload_dict`, :func:`_solve_path`, :func:`_build_headers`,
:func:`_build_reply`), so a feature added to the wire surface — per-request
deadlines, auth tokens, the ``/v2`` routes — lands in both at once instead
of drifting apart.  Requests default to the ``/v2`` routes; pass
``api_version="v1"`` to pin the legacy alias.

Typical use::

    from repro.service.client import SladeHttpClient

    client = SladeHttpClient("http://127.0.0.1:8080", tenant="team-a")
    reply = client.solve({"kind": "solve_request", "version": 1,
                          "n": 1000, "threshold": 0.9,
                          "bins": [[1, 0.9, 0.10], [2, 0.85, 0.18]]},
                         deadline_ms=50)
    reply.raise_for_status()
    print(reply.payload["total_cost"], reply.payload["provenance"])
"""

from __future__ import annotations

import asyncio
import json
import socket
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.errors import SladeError
from repro.service.api import SolveRequest, SolveResponse

#: Payloads accepted wherever a solve request is expected.
RequestLike = Union[SolveRequest, Dict[str, Any]]


class TransportError(SladeError):
    """The server could not be reached or did not speak HTTP."""


@dataclass
class HttpReply:
    """One HTTP exchange: status, headers, and the parsed JSON payload."""

    status: int
    payload: Any
    headers: Dict[str, str] = field(default_factory=dict)
    text: str = ""

    @property
    def ok(self) -> bool:
        """Whether the transport accepted the request (2xx)."""
        return 200 <= self.status < 300

    def raise_for_status(self) -> "HttpReply":
        """Raise :class:`TransportError` on a non-2xx status; else return self."""
        if not self.ok:
            detail = ""
            if isinstance(self.payload, dict) and self.payload.get("error"):
                detail = f": {self.payload['error']}"
            raise TransportError(f"HTTP {self.status}{detail}")
        return self

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Case-insensitive response header lookup."""
        for key, value in self.headers.items():
            if key.lower() == name.lower():
                return value
        return default

    def solve_response(self) -> SolveResponse:
        """Decode the payload as one structured :class:`SolveResponse`."""
        from repro.io.serialization import solve_response_from_dict

        return solve_response_from_dict(self.payload)

    def solve_responses(self) -> List[SolveResponse]:
        """Decode a batch payload into its per-item responses, in order."""
        from repro.io.serialization import solve_response_from_dict

        return [
            solve_response_from_dict(entry)
            for entry in self.payload.get("responses", [])
        ]


class SladeHttpClient:
    """Drive a SLADE HTTP server over ``urllib`` (no external packages).

    Parameters
    ----------
    base_url:
        The server prefix, e.g. ``"http://127.0.0.1:8080"``.
    tenant:
        Default admission identity, sent as the ``X-Tenant`` header on every
        request; per-call ``tenant=`` arguments override it.
    timeout:
        Socket timeout in seconds for each call.
    auth_token:
        Shared secret for servers started with ``repro serve --auth-token``;
        sent as ``Authorization: Bearer <token>`` on every request.
    api_version:
        Route prefix for solve endpoints — ``"v2"`` (default) or ``"v1"``.
    """

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 60.0,
        auth_token: Optional[str] = None,
        api_version: str = "v2",
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout
        self.auth_token = auth_token
        self.api_version = _check_api_version(api_version)
        # A proxy-free opener: localhost servers must not be routed through
        # an environment's HTTP(S)_PROXY.
        self._opener = urllib.request.build_opener(
            urllib.request.ProxyHandler({})
        )

    # -- endpoints -------------------------------------------------------------

    def solve(
        self,
        request: RequestLike,
        tenant: Optional[str] = None,
        include_plan: Optional[bool] = None,
        deadline_ms: Optional[float] = None,
    ) -> HttpReply:
        """POST one solve request to ``/{v}/solve``.

        ``deadline_ms`` stamps (or overrides) the request's latency budget;
        the server answers best-so-far within it, or a structured 503 when
        it expires before any feasible plan exists.
        """
        path = _solve_path(self.api_version, False, include_plan)
        body = _payload_dict(request, deadline_ms=deadline_ms)
        return self._request("POST", path, body, tenant)

    def solve_batch(
        self,
        requests: List[RequestLike],
        tenant: Optional[str] = None,
        include_plan: Optional[bool] = None,
        deadline_ms: Optional[float] = None,
    ) -> HttpReply:
        """POST a request list to ``/{v}/solve/batch``.

        ``deadline_ms`` applies per item (each entry gets the same budget,
        measured from server receipt) unless an entry carries its own.
        """
        path = _solve_path(self.api_version, True, include_plan)
        body = {
            "requests": [
                _payload_dict(entry, deadline_ms=deadline_ms)
                for entry in requests
            ]
        }
        return self._request("POST", path, body, tenant)

    def feedback(
        self,
        payload: Dict[str, Any],
        tenant: Optional[str] = None,
    ) -> HttpReply:
        """POST execution outcomes to ``/v2/feedback``.

        ``payload`` carries the menu the outcomes were measured against and
        the per-cardinality probe results::

            {"bins": <bin-set dict or [[l, r, c], ...]>,
             "observations": [[cardinality, correct], ...]}
        """
        return self._request("POST", "/v2/feedback", payload, tenant)

    def healthz(self) -> HttpReply:
        """GET the liveness document."""
        return self._request("GET", "/healthz", None, None)

    def metrics(self, fmt: str = "json") -> HttpReply:
        """GET the telemetry snapshot (``fmt="text"`` for Prometheus lines)."""
        path = "/metrics" if fmt == "text" else "/metrics?format=json"
        return self._request("GET", path, None, None)

    # -- plumbing --------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        tenant: Optional[str],
    ) -> HttpReply:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        effective_tenant = tenant if tenant is not None else self.tenant
        headers = _build_headers(effective_tenant, self.auth_token)
        req = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with self._opener.open(req, timeout=self.timeout) as raw:
                return self._reply(raw.status, dict(raw.headers), raw.read())
        except urllib.error.HTTPError as exc:
            # 4xx/5xx still carry a structured envelope body.
            return self._reply(exc.code, dict(exc.headers or {}), exc.read())
        except (urllib.error.URLError, socket.timeout, ConnectionError) as exc:
            raise TransportError(f"cannot reach {self.base_url}: {exc}") from exc

    def _reply(self, status: int, headers: Dict[str, str], raw: bytes) -> HttpReply:
        return _build_reply(status, headers, raw)


def _build_reply(status: int, headers: Dict[str, str], raw: bytes) -> HttpReply:
    """Decode one raw exchange into the shared :class:`HttpReply` shape."""
    text = raw.decode("utf-8", errors="replace")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    return HttpReply(status=status, payload=payload, headers=headers, text=text)


def _payload_dict(
    request: RequestLike, deadline_ms: Optional[float] = None
) -> Dict[str, Any]:
    """Normalise a request-like value into a JSON-ready dictionary.

    ``deadline_ms`` is injected when the payload does not already carry its
    own budget, so a per-call default never silently overrides an explicit
    per-request one.
    """
    if isinstance(request, SolveRequest):
        from repro.io.serialization import solve_request_to_dict

        payload = solve_request_to_dict(request)
    else:
        payload = dict(request)
    if deadline_ms is not None and payload.get("deadline_ms") is None:
        payload["deadline_ms"] = deadline_ms
    return payload


def _solve_path(
    api_version: str, batch: bool, include_plan: Optional[bool]
) -> str:
    """Build the solve route for one call — shared by both clients."""
    path = f"/{api_version}/solve/batch" if batch else f"/{api_version}/solve"
    if include_plan is not None:
        path += f"?plan={'1' if include_plan else '0'}"
    return path


def _build_headers(
    tenant: Optional[str], auth_token: Optional[str]
) -> Dict[str, str]:
    """Request headers for one call — shared by both clients."""
    headers = {"Content-Type": "application/json"}
    if tenant:
        headers["X-Tenant"] = tenant
    if auth_token:
        headers["Authorization"] = f"Bearer {auth_token}"
    return headers


def _check_api_version(api_version: str) -> str:
    if api_version not in ("v1", "v2"):
        raise ValueError(
            f"api_version must be 'v1' or 'v2', got {api_version!r}"
        )
    return api_version


class AsyncSladeHttpClient:
    """An asyncio HTTP/1.1 client holding one keep-alive connection.

    The synchronous :class:`SladeHttpClient` opens a fresh ``urllib``
    connection per call and blocks a thread while it waits; an open-loop load
    generator needs hundreds of requests in flight at once, which only an
    event loop can hold cheaply.  This client speaks the same minimal
    HTTP/1.1 the transport serves (``Content-Length`` framing, keep-alive),
    reuses its single connection across calls, and transparently reconnects
    — retrying once — when a reused connection turns out to be dead.

    All coroutine methods must be awaited from one event loop at a time; for
    N-way concurrency open N clients (see
    :func:`repro.loadgen.runner.run_load_test`).

    Typical use::

        client = AsyncSladeHttpClient("http://127.0.0.1:8080", tenant="a")
        try:
            reply = await client.solve({"kind": "solve_request", ...})
        finally:
            await client.close()
    """

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 60.0,
        auth_token: Optional[str] = None,
        api_version: str = "v2",
    ) -> None:
        parts = urllib.parse.urlsplit(base_url if "//" in base_url
                                      else f"http://{base_url}")
        if parts.scheme not in ("", "http") or not parts.hostname:
            raise TransportError(f"unsupported base URL: {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.tenant = tenant
        self.timeout = timeout
        self.auth_token = auth_token
        self.api_version = _check_api_version(api_version)
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    # -- endpoints -------------------------------------------------------------

    async def solve(
        self,
        request: RequestLike,
        tenant: Optional[str] = None,
        include_plan: Optional[bool] = None,
        deadline_ms: Optional[float] = None,
    ) -> HttpReply:
        """POST one solve request to ``/{v}/solve``.

        Same semantics as :meth:`SladeHttpClient.solve`: ``deadline_ms``
        stamps the request's latency budget unless the payload already
        carries one.
        """
        path = _solve_path(self.api_version, False, include_plan)
        body = _payload_dict(request, deadline_ms=deadline_ms)
        return await self._request("POST", path, body, tenant)

    async def healthz(self) -> HttpReply:
        """GET the liveness document."""
        return await self._request("GET", "/healthz", None, None)

    async def metrics(self, fmt: str = "json") -> HttpReply:
        """GET the telemetry snapshot (``fmt="text"`` for Prometheus lines)."""
        path = "/metrics" if fmt == "text" else "/metrics?format=json"
        return await self._request("GET", path, None, None)

    async def close(self) -> None:
        """Close the persistent connection (safe to call repeatedly)."""
        await self._drop_connection()

    # -- plumbing --------------------------------------------------------------

    async def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]],
        tenant: Optional[str],
    ) -> HttpReply:
        data = json.dumps(body).encode("utf-8") if body is not None else b""
        effective_tenant = tenant if tenant is not None else self.tenant
        for attempt in (0, 1):
            reused = self._writer is not None
            try:
                return await asyncio.wait_for(
                    self._exchange(method, path, data, effective_tenant),
                    timeout=self.timeout,
                )
            except asyncio.TimeoutError as exc:
                await self._drop_connection()
                raise TransportError(
                    f"timed out after {self.timeout:g}s waiting for "
                    f"{self.host}:{self.port}"
                ) from exc
            except (ConnectionError, asyncio.IncompleteReadError, OSError) as exc:
                await self._drop_connection()
                # A server is allowed to close an idle keep-alive connection
                # between our calls; only a fresh connection failing is an
                # actual transport error.
                if reused and attempt == 0:
                    continue
                raise TransportError(
                    f"cannot reach {self.host}:{self.port}: {exc}"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    async def _exchange(
        self, method: str, path: str, data: bytes, tenant: Optional[str]
    ) -> HttpReply:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        assert self._reader is not None and self._writer is not None
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(data)}",
            "Connection: keep-alive",
        ]
        lines.extend(
            f"{name}: {value}"
            for name, value in _build_headers(tenant, self.auth_token).items()
        )
        self._writer.write("\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + data)
        await self._writer.drain()
        status, headers, raw = await self._read_response(self._reader)
        reply = _build_reply(status, headers, raw)
        if reply.header("connection", "keep-alive").lower() == "close":
            await self._drop_connection()
        return reply

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Dict[str, str], bytes]:
        status_line = (await reader.readline()).decode("ascii", errors="replace")
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ConnectionError(f"malformed status line: {status_line!r}")
        status = int(parts[1])
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("ascii", errors="replace")
            if line in ("\r\n", "\n", ""):
                break
            name, _sep, value = line.partition(":")
            headers[name.strip()] = value.strip()
        length_text = next(
            (v for k, v in headers.items() if k.lower() == "content-length"), None
        )
        if length_text is None:
            raise ConnectionError("response carries no Content-Length")
        raw = await reader.readexactly(int(length_text))
        return status, headers, raw

    async def _drop_connection(self) -> None:
        writer, self._reader, self._writer = self._writer, None, None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - teardown
                pass
