"""The one wire-to-request normalisation path shared by every entry point.

Before this module, each transport hand-rolled its own parse: the HTTP
server, the batch endpoint, and the JSON-lines ``repro serve`` loop all
called :func:`repro.io.serialization.solve_request_from_dict` with slightly
different request-id defaulting, and none of them had anywhere to hang
deadline bookkeeping.  Every entry point now funnels through
:func:`parse_request_payload`, so a request is validated the same way — and
its latency budget is stamped at the same instant — no matter which door it
came in through.

Deadline bookkeeping is deliberately *absolute*: ``deadline_ms`` (the wire
field) is converted once, at receipt, into ``deadline_at`` — a
``time.monotonic()`` instant.  Everything downstream (the async frontend's
micro-batch queue, admission, the facade) just compares against the clock,
so queue wait subtracts from the budget without any explicit accounting.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Any, Optional

from repro.service.api import DeadlineExceededError, SolveRequest

__all__ = [
    "parse_request_payload",
    "stamp_deadline",
    "remaining_budget_seconds",
    "check_not_expired",
]


def stamp_deadline(
    request: SolveRequest, received_at: Optional[float] = None
) -> SolveRequest:
    """Convert a relative ``deadline_ms`` into an absolute ``deadline_at``.

    Idempotent: a request already stamped (or without a budget) is returned
    unchanged, so transports stamp at receipt and the facade's defensive
    re-stamp for direct library callers is a no-op on the wire path.
    ``received_at`` is the ``time.monotonic()`` instant the request entered
    the system (defaults to now).
    """
    if request.deadline_ms is None or request.deadline_at is not None:
        return request
    if received_at is None:
        received_at = time.monotonic()
    return replace(
        request, deadline_at=received_at + float(request.deadline_ms) / 1000.0
    )


def remaining_budget_seconds(
    request: SolveRequest, now: Optional[float] = None
) -> Optional[float]:
    """Seconds of budget left (possibly negative); ``None`` when unbudgeted."""
    if request.deadline_at is None:
        return None
    if now is None:
        now = time.monotonic()
    return request.deadline_at - now


def check_not_expired(
    request: SolveRequest, now: Optional[float] = None, where: str = "dispatch"
) -> None:
    """Raise :class:`DeadlineExceededError` when the budget is already blown.

    Transports call this before submitting (so an expired-in-queue request
    never reaches the planner) and the facade calls it again at dispatch
    (covering wait inside the micro-batching frontend).
    """
    remaining = remaining_budget_seconds(request, now)
    if remaining is not None and remaining <= 0.0:
        raise DeadlineExceededError(
            f"deadline of {request.deadline_ms}ms expired "
            f"{-remaining * 1000.0:.1f}ms before {where}"
        )


def parse_request_payload(
    payload: Any,
    default_request_id: Optional[str] = None,
    received_at: Optional[float] = None,
) -> SolveRequest:
    """Parse one wire payload into a deadline-stamped :class:`SolveRequest`.

    The single normalisation door for the HTTP solve endpoint, the batch
    endpoint's items, and the JSON-lines loop.  Non-dict payloads, unknown
    top-level fields, and unsupported schema versions all raise the same
    :class:`~repro.service.api.RequestValidationError` family regardless of
    transport.  ``received_at`` anchors the deadline at the moment the bytes
    were read, not the (later) moment parsing got scheduled.
    """
    from repro.io.serialization import solve_request_from_dict

    from repro.service.api import RequestValidationError

    if not isinstance(payload, dict):
        raise RequestValidationError(
            f"expected a solve_request object, got {type(payload).__name__}"
        )
    request = solve_request_from_dict(
        payload, default_request_id=default_request_id
    )
    return stamp_deadline(request, received_at)
