"""Drift-driven menu recalibration: the service side of the Section 3.1 loop.

The paper treats bin menus as living objects — marketplaces "use a set of
different task bins as real-time probes to monitor the quality of the current
work flow" and re-estimate the ``(l, r_l, c_l)`` triples "regularly".  The
serving stack, however, keys every cached plan on a menu fingerprint that
never expires: once worker accuracy drifts, each tier (memory, SQLite,
remote, sharded) keeps serving plans whose reliability guarantee is silently
void.

:class:`DriftController` closes the loop inside the service layer:

* every request's menu is **registered** (with the thresholds it was solved
  at), creating a per-menu :class:`~repro.crowd.monitoring.QualityMonitor`;
* execution outcomes — probe answers from the crowd simulator, or
  ``(cardinality, correct)`` observations posted to the ``/v2/feedback``
  route — are **observed** into the menu's monitor;
* when a menu's observed accuracy escapes the monitor's tolerance band, a
  background sweep **revalidates**: the corrected menu (one calibration
  epoch later, so its fingerprint can never alias a stale entry) is
  re-planned at every recorded threshold — warm-started from the stale
  plan's own frontier — published to the cache, atomically swapped in as
  the lineage's *active* menu, and only then are the stale epoch's entries
  removed with targeted per-key deletes.  Never a fleet-wide clear, and
  never an error on a request path: every failure inside the sweep is
  swallowed, counted, and retried on the next sweep (the fail-open
  contract the cache backends already follow).

Requests keep sending the menu they know.  :meth:`DriftController.resolve`
maps any registered ancestor fingerprint to the lineage's active menu, so
traffic transparently receives plans computed from the *calibrated*
confidences without clients learning about epochs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.algorithms.opq import Combination
from repro.algorithms.opq_vec import build_queue
from repro.core.bins import TaskBinSet
from repro.core.errors import SladeError
from repro.crowd.monitoring import QualityMonitor
from repro.engine.cache import PlanCache
from repro.engine.telemetry import Telemetry
from repro.io.serialization import bin_set_from_dict
from repro.service.api import RequestValidationError


@dataclass
class _MenuState:
    """One menu lineage: the active epoch, its monitor, and usage history."""

    active: TaskBinSet
    monitor: QualityMonitor
    #: Thresholds this lineage has been solved at (the re-plan worklist).
    thresholds: Set[float] = field(default_factory=set)
    recalibrations: int = 0


@dataclass(frozen=True)
class RevalidationReport:
    """Outcome of one drift sweep (:meth:`DriftController.revalidate_drifted`)."""

    recalibrated_menus: int
    revalidated_entries: int
    invalidated_keys: int
    failures: int

    @property
    def acted(self) -> bool:
        return self.recalibrated_menus > 0 or self.failures > 0


class DriftController:
    """Owns per-menu quality monitors and the drift-driven revalidation sweep.

    Parameters
    ----------
    cache:
        The service's shared :class:`~repro.engine.cache.PlanCache`; drift
        sweeps publish recalibrated plans into it and issue the targeted
        deletes against its backend.
    telemetry:
        Registry for the ``drift.*`` counters/series (shared with the rest
        of the service so ``/metrics`` is one snapshot).
    window / min_observations / tolerance / tolerance_above:
        Forwarded to each menu's :class:`QualityMonitor`.
    opq_core:
        Algorithm 2 core for revalidation builds (matches the cache's).
    """

    def __init__(
        self,
        cache: PlanCache,
        telemetry: Optional[Telemetry] = None,
        window: int = 200,
        min_observations: int = 30,
        tolerance: float = 0.05,
        tolerance_above: Optional[float] = None,
        opq_core: Optional[str] = None,
    ) -> None:
        self.cache = cache
        self.telemetry = telemetry
        self.window = window
        self.min_observations = min_observations
        self.tolerance = tolerance
        self.tolerance_above = tolerance_above
        self._opq_core = opq_core
        #: Guards the lineage tables; never held across a build or a
        #: backend round trip.
        self._lock = threading.Lock()
        #: Lineage root key -> state.  The root is the fingerprint the
        #: lineage was first registered under.
        self._states: Dict[str, _MenuState] = {}
        #: Any known fingerprint (root, or a later epoch) -> root key.
        self._alias: Dict[str, str] = {}
        #: Serialises sweeps so two tick loops cannot recalibrate one
        #: lineage twice from the same observations.
        self._sweep_lock = threading.Lock()

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.telemetry is not None:
            self.telemetry.increment(name, amount)

    # -- registration and request-path resolution ------------------------------

    def register(
        self, bins: TaskBinSet, thresholds: Sequence[float] = ()
    ) -> TaskBinSet:
        """Track ``bins``' lineage and return the lineage's active menu.

        Called on the request path, so it only takes the table lock briefly
        and never raises: an unregisterable menu is served as-is.
        """
        fingerprint = bins.fingerprint
        with self._lock:
            root = self._alias.get(fingerprint)
            if root is None:
                root = fingerprint
                self._alias[fingerprint] = root
                self._states[root] = _MenuState(
                    active=bins,
                    monitor=self._monitor_for(bins),
                )
            state = self._states[root]
            for threshold in thresholds:
                state.thresholds.add(float(threshold))
            return state.active

    def resolve(self, bins: TaskBinSet) -> TaskBinSet:
        """The active menu for ``bins``' lineage (``bins`` when unknown)."""
        with self._lock:
            root = self._alias.get(bins.fingerprint)
            if root is None:
                return bins
            return self._states[root].active

    def _monitor_for(self, bins: TaskBinSet) -> QualityMonitor:
        return QualityMonitor(
            bins,
            window=self.window,
            min_observations=self.min_observations,
            tolerance=self.tolerance,
            tolerance_above=self.tolerance_above,
        )

    # -- observation intake -----------------------------------------------------

    def observe(self, bins: TaskBinSet, cardinality: int, correct: bool) -> bool:
        """Record one probe outcome against ``bins``' lineage.

        Unknown menus are registered on the fly (feedback may arrive before
        the first solve).  Returns whether the observation was recorded; a
        cardinality the active menu does not offer is dropped, not an error.
        """
        self.register(bins)
        with self._lock:
            state = self._states[self._alias[bins.fingerprint]]
            monitor = state.monitor
        if cardinality not in monitor.bins:
            return False
        monitor.record(cardinality, correct)
        self._count("drift.observations")
        return True

    def ingest_feedback(self, payload: Mapping[str, Any]) -> int:
        """Apply one ``/v2/feedback`` document; returns observations recorded.

        Expected shape::

            {"bins": <bin-set dict or [[l, r, c], ...]>,
             "observations": [[cardinality, correct], ...]}

        Raises :class:`RequestValidationError` on malformed payloads (the
        transport maps it to a 400); recording itself never fails a request.
        """
        if not isinstance(payload, Mapping):
            raise RequestValidationError("feedback payload must be an object")
        bins = _bins_from_payload(payload.get("bins"))
        observations = payload.get("observations")
        if not isinstance(observations, (list, tuple)):
            raise RequestValidationError(
                "feedback 'observations' must be a list of "
                "[cardinality, correct] pairs"
            )
        recorded = 0
        for entry in observations:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or isinstance(entry[0], bool)
                or not isinstance(entry[0], int)
            ):
                raise RequestValidationError(
                    f"feedback observation must be a [cardinality, correct] "
                    f"pair; got {entry!r}"
                )
            if self.observe(bins, entry[0], bool(entry[1])):
                recorded += 1
        self._count("drift.feedback_requests")
        return recorded

    # -- the drift sweep --------------------------------------------------------

    def drifted_roots(self) -> List[str]:
        """Lineage roots whose monitors currently flag drift."""
        with self._lock:
            states = list(self._states.items())
        return [root for root, state in states if state.monitor.needs_recalibration]

    def revalidate_drifted(self) -> RevalidationReport:
        """One sweep: recalibrate every drifted lineage (fail-open).

        Per lineage, in the order the tentpole requires:

        1. build the corrected menu (next calibration epoch) from the
           monitor's observed accuracies;
        2. re-plan every recorded threshold at the new epoch, warm-started
           from the stale plan's own frontier, and publish into the cache;
        3. atomically swap the lineage's active menu (requests pick up the
           new epoch immediately);
        4. issue targeted per-key deletes for the stale epoch's entries —
           never a fleet-wide clear.

        Every exception is contained within the sweep: the lineage keeps
        its old menu, the failure is counted, and the next sweep retries.
        """
        menus = 0
        entries = 0
        invalidated = 0
        failures = 0
        with self._sweep_lock:
            for root in self.drifted_roots():
                try:
                    replanned, removed = self._revalidate_one(root)
                except Exception:
                    # Fail open: a broken sweep must never surface anywhere
                    # near a request path.  The monitor still flags drift,
                    # so the next sweep retries.
                    failures += 1
                    self._count("drift.failed_revalidations")
                    continue
                menus += 1
                entries += replanned
                invalidated += removed
        return RevalidationReport(
            recalibrated_menus=menus,
            revalidated_entries=entries,
            invalidated_keys=invalidated,
            failures=failures,
        )

    def _revalidate_one(self, root: str) -> Tuple[int, int]:
        with self._lock:
            state = self._states.get(root)
            if state is None:
                return 0, 0
            stale = state.active
            monitor = state.monitor
            thresholds = sorted(state.thresholds)
        if not monitor.needs_recalibration:
            return 0, 0
        corrected = monitor.corrected_bin_set()

        started = time.perf_counter()
        replanned = 0
        for threshold in thresholds:
            seed = self._seed_from_stale(stale, corrected, threshold)
            queue = build_queue(
                corrected, threshold, seed=seed, core=self._opq_core
            )
            if self.cache.publish(corrected, threshold, queue):
                replanned += 1

        # Swap the active epoch before deleting the stale keys: from this
        # instant requests resolve to the corrected menu, whose entries are
        # already published, so no request can miss into a deleted key.
        with self._lock:
            state = self._states.get(root)
            if state is None or state.active.fingerprint != stale.fingerprint:
                # Another path already moved the lineage on; leave it alone.
                return replanned, 0
            state.active = corrected
            state.monitor = self._monitor_for(corrected)
            state.recalibrations += 1
            self._alias[corrected.fingerprint] = root

        removed = self.cache.invalidate(stale, thresholds=thresholds)
        elapsed = time.perf_counter() - started
        self._count("drift.recalibrations")
        self._count("drift.revalidated_entries", replanned)
        self._count("drift.invalidated_keys", removed)
        if self.telemetry is not None:
            self.telemetry.observe("drift.revalidation_seconds", elapsed)
        return replanned, removed

    def _seed_from_stale(
        self,
        stale: TaskBinSet,
        corrected: TaskBinSet,
        threshold: float,
    ) -> Optional[List[Combination]]:
        """Warm-start elements for the corrected build, from the stale curve.

        Frontier elements cache their residual/cost quantities against the
        menu they were built for, so the stale epoch's combinations are
        **rebuilt** against the corrected menu (recomputing reliabilities
        from the calibrated confidences) before they may seed the new
        build; the builder then re-validates each candidate, so a seed that
        is no longer feasible at the new confidences is simply dropped.
        """
        donors = self.cache.seed_for(stale, threshold)
        if donors is None:
            return None
        rebuilt: List[Combination] = []
        for donor in donors:
            counts = dict(donor.counts)
            if any(cardinality not in corrected for cardinality in counts):
                continue
            rebuilt.append(Combination.from_counts(counts, corrected))
        return rebuilt or None

    # -- observability ----------------------------------------------------------

    def gauges(self) -> Dict[str, float]:
        """Point-in-time ``drift.*`` gauges for ``/metrics`` scrapes."""
        with self._lock:
            states = list(self._states.values())
        drifted = 0
        max_shortfall = 0.0
        for state in states:
            reports = state.monitor.reports()
            if any(report.drifted for report in reports):
                drifted += 1
            for report in reports:
                max_shortfall = max(max_shortfall, report.shortfall)
        return {
            "drift.monitored_menus": float(len(states)),
            "drift.drifted_menus": float(drifted),
            "drift.max_shortfall": max_shortfall,
        }

    def lineage(self, bins: TaskBinSet) -> Optional[Tuple[TaskBinSet, int]]:
        """(active menu, recalibration count) for ``bins``, if registered."""
        with self._lock:
            root = self._alias.get(bins.fingerprint)
            if root is None:
                return None
            state = self._states[root]
            return state.active, state.recalibrations


def _bins_from_payload(raw: Any) -> TaskBinSet:
    """Parse the ``bins`` field of a feedback document (dict or triples)."""
    if isinstance(raw, Mapping):
        try:
            return bin_set_from_dict(dict(raw))
        except (SladeError, KeyError, TypeError, ValueError) as exc:
            raise RequestValidationError(
                f"feedback 'bins' is not a valid bin-set document: {exc}"
            ) from None
    if isinstance(raw, (list, tuple)):
        try:
            return TaskBinSet.from_triples([tuple(entry) for entry in raw])
        except (SladeError, TypeError, ValueError) as exc:
            raise RequestValidationError(
                f"feedback 'bins' is not a valid triple list: {exc}"
            ) from None
    raise RequestValidationError(
        "feedback payload needs a 'bins' field (bin-set dict or "
        "[[cardinality, confidence, cost], ...] triples)"
    )


__all__ = [
    "DriftController",
    "RevalidationReport",
]
