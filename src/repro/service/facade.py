"""The synchronous service facade over the solver stack.

:class:`SladeService` is the single entry point a deployment talks to: it
validates and normalises :class:`~repro.service.api.SolveRequest` objects
(named solver, per-solver options, threshold clamping), dispatches them
through a shared :class:`~repro.engine.planner.BatchPlanner` so OPQ
construction is cached across requests, and returns structured
:class:`~repro.service.api.SolveResponse` objects with per-request timing,
cache provenance (hit/miss), and error envelopes instead of raised
exceptions.

Equivalence guarantee: for any request, the plan a :class:`SladeService`
returns is byte-identical to ``create_solver(name, **options).solve(problem)``
— normalisation only resolves defaults, and the cache only removes repeated
work.  ``tests/service/test_service_equivalence.py`` pins this across the
sync, async, and persistent-backend paths.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.algorithms.anytime import QUALITY_OPTIMAL
from repro.algorithms.registry import (
    available_solvers,
    solver_accepts_budget,
    solver_accepts_queue_factory,
)
from repro.core.errors import SladeError
from repro.core.problem import SladeProblem
from repro.core.task import AtomicTask, CrowdsourcingTask
from repro.engine.backends import CacheBackend, open_backend
from repro.engine.cache import CacheStats, PlanCache
from repro.engine.fingerprint import opq_key
from repro.engine.planner import BatchPlanner
from repro.engine.telemetry import Telemetry
from repro.service.api import (
    CACHE_BYPASS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_NONE,
    DeadlineExceededError,
    Provenance,
    RequestValidationError,
    ServiceConfig,
    SolveRequest,
    SolveResponse,
    TIER_BUILD,
    TIER_CACHE,
    TIER_SOLVER,
    envelope_from_error,
    solver_options_dict,
)
from repro.service.drift import DriftController
from repro.service.normalize import (
    check_not_expired,
    remaining_budget_seconds,
    stamp_deadline,
)
from repro.utils.timing import Stopwatch

#: Exceptions converted into response error envelopes.  Anything outside this
#: tuple is a programming error and propagates to the caller.
_ENVELOPED_ERRORS = (SladeError, KeyError, ValueError, TypeError)


class _ProvenanceRecorder:
    """A queue factory wrapper that classifies one request's cache traffic.

    Injected per request, so the hit/miss attribution is immune to other
    threads (or other planners sharing the cache) mutating the global
    counters concurrently.  Membership is checked immediately before
    delegating; a concurrent eviction or insert of the *same key* between
    the two steps can mislabel that one request, which is benign — the
    returned queue is always correct either way.
    """

    def __init__(self, cache: PlanCache) -> None:
        self._cache = cache
        self.hits = 0
        self.misses = 0

    def __call__(self, bins, threshold):
        if opq_key(bins, threshold) in self._cache:
            self.hits += 1
        else:
            self.misses += 1
        return self._cache.queue_for(bins, threshold)

    # The anytime ladder duck-types these off its injected factory: peek
    # reuses cached frontiers without paying for cold builds, publish lands
    # budgeted builds back so refined queues overwrite coarse cached ones.

    def peek(self, bins, threshold):
        queue = self._cache.peek(bins, threshold)
        if queue is not None:
            self.hits += 1
        return queue

    def publish(self, bins, threshold, queue, build_seconds=0.0):
        stored = self._cache.publish(bins, threshold, queue, build_seconds)
        self.misses += 1
        return stored

    def seed_for(self, bins, threshold):
        # Plan-curve warm starts don't change hit/miss provenance: the build
        # they accelerate is still accounted as the miss it is.
        return self._cache.seed_for(bins, threshold)

    @property
    def label(self) -> str:
        if self.misses > 0:
            return CACHE_MISS
        if self.hits > 0:
            return CACHE_HIT
        return CACHE_BYPASS


class SladeService:
    """Validate, normalise, and dispatch solve requests through a shared planner.

    Parameters
    ----------
    config:
        Service tunables; defaults to :class:`~repro.service.api.ServiceConfig`.
    planner:
        An existing :class:`~repro.engine.planner.BatchPlanner` to dispatch
        through (e.g. to share a cache with batch jobs).  Mutually exclusive
        with ``backend``.
    backend:
        A pre-built cache backend instance; overrides
        ``config.cache_backend``.  When both are omitted the backend is
        resolved from the config spec (an in-memory store by default).
    telemetry:
        The :class:`~repro.engine.telemetry.Telemetry` registry shared with
        the planner and cache (request counters, cache hits/misses/evictions,
        batch sizes); a fresh registry is created when omitted.  When an
        existing ``planner`` is supplied its registry wins, so cache-level
        counters stay attached to the planner that owns the cache.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        planner: Optional[BatchPlanner] = None,
        backend: Optional[CacheBackend] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        if planner is not None:
            if backend is not None:
                raise ValueError("pass either planner or backend, not both")
            self.planner = planner
            self.telemetry = (
                planner.telemetry if planner.telemetry is not None
                else (telemetry if telemetry is not None else Telemetry())
            )
        else:
            self.telemetry = telemetry if telemetry is not None else Telemetry()
            if backend is None:
                backend = open_backend(
                    self.config.cache_backend,
                    max_entries=self.config.max_cache_entries,
                    telemetry=self.telemetry,
                )
            self.planner = BatchPlanner(
                cache=PlanCache(
                    backend=backend,
                    telemetry=self.telemetry,
                    opq_core=self.config.opq_core,
                ),
                solver_options=solver_options_dict(self.config.solver_options),
                verify=self.config.verify,
                telemetry=self.telemetry,
            )
        self._request_ids = itertools.count(1)
        #: The drift-driven calibration loop: per-menu quality monitors plus
        #: the background revalidation sweep the HTTP server drives.
        self.drift = DriftController(
            cache=self.cache,
            telemetry=self.telemetry,
            window=self.config.drift_window,
            min_observations=self.config.drift_min_observations,
            tolerance=self.config.drift_tolerance,
            tolerance_above=self.config.drift_tolerance_above,
            opq_core=self.config.opq_core,
        )

    # -- public surface --------------------------------------------------------

    @property
    def cache(self) -> PlanCache:
        """The plan cache shared by every request this service handles."""
        return self.planner.cache

    @property
    def cache_stats(self) -> CacheStats:
        """Point-in-time counters of the shared plan cache."""
        return self.cache.stats

    def solve(self, request: SolveRequest) -> SolveResponse:
        """Handle one request, returning a structured response.

        Never raises for solver- or validation-level failures; those come
        back as ``ok=False`` responses carrying an error envelope.
        """
        return self._solve_one(request, batch_size=1)

    def solve_batch(self, requests: Iterable[SolveRequest]) -> List[SolveResponse]:
        """Handle a coalesced batch, one response per request in order.

        Failures are isolated: a request that cannot be solved yields its own
        ``ok=False`` response without affecting its batch-mates.  Every
        response records the batch size it rode in.
        """
        batch = list(requests)
        return [self._solve_one(request, batch_size=len(batch)) for request in batch]

    def close(self) -> None:
        """Release the plan cache's backend resources."""
        self.cache.close()

    def __enter__(self) -> "SladeService":
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.close()

    # -- request handling ------------------------------------------------------

    def _solve_one(self, request: SolveRequest, batch_size: int) -> SolveResponse:
        watch = Stopwatch()
        watch.start()
        self.telemetry.increment("service.requests")
        request_id = request.request_id or f"req-{next(self._request_ids)}"

        # Library callers may hand over a bare deadline_ms; the wire paths
        # arrive pre-stamped (at receipt) and this is a no-op for them.
        request = stamp_deadline(request)
        budgeted = request.deadline_at is not None
        if budgeted:
            self.telemetry.increment("deadline.requests")
            try:
                # The moment the budget counts: queue wait inside the async
                # frontend has already elapsed, and an expired request must
                # never reach the planner.
                check_not_expired(request)
            except DeadlineExceededError as exc:
                self.telemetry.increment("deadline.expired")
                return self._failure(
                    request_id, None, None, exc, watch, batch_size
                )

        try:
            solver_name, options, verify, problem = self._normalize(request)
        except _ENVELOPED_ERRORS as exc:
            return self._failure(
                request_id, None, None, exc, watch, batch_size
            )

        # Per-request provenance: inject a recording queue factory instead of
        # diffing the cache's global counters, which other threads (or other
        # planners sharing the cache) may advance concurrently.
        recorder = None
        if solver_accepts_queue_factory(solver_name):
            recorder = _ProvenanceRecorder(self.cache)
            options["queue_factory"] = recorder
        remaining = remaining_budget_seconds(request)
        if (budgeted and solver_accepts_budget(solver_name)
                and "budget_seconds" not in options):
            options["budget_seconds"] = remaining
        try:
            result = self.planner.solve(
                problem, solver=solver_name, options=options, verify=verify
            )
        except _ENVELOPED_ERRORS as exc:
            if budgeted:
                self.telemetry.increment("deadline.misses")
            return self._failure(
                request_id, solver_name, problem, exc, watch, batch_size
            )

        provenance = self._provenance(request, result, recorder, remaining)
        if budgeted:
            met = remaining_budget_seconds(request)
            self.telemetry.increment(
                "deadline.hits" if met is not None and met > 0.0
                else "deadline.misses"
            )
            if provenance.quality != QUALITY_OPTIMAL:
                self.telemetry.increment("deadline.best_so_far")

        watch.stop()
        return SolveResponse(
            request_id=request_id,
            ok=True,
            solver=solver_name,
            plan=result.plan,
            total_cost=result.total_cost,
            feasible=result.feasible,
            cache=recorder.label if recorder is not None else CACHE_BYPASS,
            elapsed_seconds=watch.elapsed,
            solve_seconds=result.elapsed_seconds,
            batch_size=batch_size,
            problem_fingerprint=problem.fingerprint,
            provenance=provenance,
        )

    def _provenance(
        self,
        request: SolveRequest,
        result: Any,
        recorder: Optional[_ProvenanceRecorder],
        remaining_seconds: Optional[float],
    ) -> Provenance:
        """Assemble the response provenance block for a successful solve.

        The anytime solver records its own ``quality``/``tier`` metadata;
        for every other solver the computation ran to completion (quality
        ``"optimal"`` in the degradation sense) and the tier is derived from
        the request's cache traffic.
        """
        quality = result.metadata.get("quality") or QUALITY_OPTIMAL
        tier = result.metadata.get("tier")
        if tier is None:
            label = recorder.label if recorder is not None else CACHE_BYPASS
            tier = {
                CACHE_HIT: TIER_CACHE,
                CACHE_MISS: TIER_BUILD,
            }.get(label, TIER_SOLVER)
        return Provenance(
            quality=quality,
            tier=tier,
            deadline_ms=request.deadline_ms,
            remaining_budget_ms=(
                None if remaining_seconds is None
                else remaining_seconds * 1000.0
            ),
        )

    def _failure(
        self,
        request_id: str,
        solver_name: Optional[str],
        problem: Optional[SladeProblem],
        exc: BaseException,
        watch: Stopwatch,
        batch_size: int,
    ) -> SolveResponse:
        watch.stop()
        self.telemetry.increment("service.failures")
        return SolveResponse(
            request_id=request_id,
            ok=False,
            solver=solver_name,
            plan=None,
            total_cost=None,
            feasible=None,
            cache=CACHE_NONE,
            elapsed_seconds=watch.elapsed,
            solve_seconds=0.0,
            batch_size=batch_size,
            problem_fingerprint=problem.fingerprint if problem is not None else None,
            error=envelope_from_error(exc),
        )

    # -- normalisation ---------------------------------------------------------

    def _normalize(
        self, request: SolveRequest
    ) -> Tuple[str, Dict[str, Any], bool, SladeProblem]:
        """Resolve defaults and clamps into concrete dispatch arguments."""
        solver_name = request.solver
        if solver_name is None and request.deadline_ms is not None:
            # A budgeted request that does not pin a solver goes through the
            # anytime ladder: feasible answer now, refinement while budget
            # lasts.  Pinning a solver opts out (the facade still enforces
            # the pre-dispatch expiry check, but not mid-solve preemption).
            solver_name = "anytime"
        if solver_name is None:
            solver_name = self.config.solver
        if solver_name not in available_solvers():
            known = ", ".join(available_solvers())
            raise RequestValidationError(
                f"unknown solver {solver_name!r}; known solvers: {known}"
            )
        options = dict(request.options or {})
        for key in options:
            if not isinstance(key, str):
                raise RequestValidationError(
                    f"solver option names must be strings, got {key!r}"
                )
        if "queue_factory" in options or "prebuilt_queue" in options:
            raise RequestValidationError(
                "queue injection is managed by the service; remove "
                "'queue_factory'/'prebuilt_queue' from request options"
            )
        verify = self.config.verify if request.verify is None else request.verify
        problem = self._calibrated_problem(self._clamp_problem(request.problem))
        return solver_name, options, verify, problem

    def _clamp_problem(self, problem: SladeProblem) -> SladeProblem:
        """Apply the configured threshold floor/cap, rebuilding if needed."""
        if not self.config.clamps_thresholds:
            return problem
        clamped = [
            self.config.clamp_threshold(atomic.threshold) for atomic in problem.task
        ]
        if clamped == [atomic.threshold for atomic in problem.task]:
            return problem
        tasks = [
            AtomicTask(atomic.task_id, threshold, atomic.payload)
            for atomic, threshold in zip(problem.task, clamped)
        ]
        return SladeProblem(
            CrowdsourcingTask(tasks, name=problem.task.name),
            problem.bins,
            name=problem.name,
        )

    def _calibrated_problem(self, problem: SladeProblem) -> SladeProblem:
        """Serve the request against its menu lineage's *active* epoch.

        Registers the request's menu (and its thresholds, the drift sweep's
        re-plan worklist) with the drift controller; when the lineage has
        been recalibrated, the problem is rebuilt against the corrected
        menu so the plan honours the *calibrated* confidences while the
        client keeps sending the menu it knows.  Strictly fail-open: any
        problem here serves the request against the menu it sent.
        """
        try:
            thresholds = sorted({atomic.threshold for atomic in problem.task})
            active = self.drift.register(problem.bins, thresholds)
            if active is problem.bins or active.fingerprint == problem.bins.fingerprint:
                return problem
            return SladeProblem(problem.task, active, name=problem.name)
        except Exception:
            return problem
