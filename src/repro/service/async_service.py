"""The asyncio frontend: coalesce streaming requests into micro-batches.

Production traffic arrives one request at a time, but the solver stack is at
its best when requests sharing a ``(bin set, threshold)`` pair are solved
back-to-back against one plan cache.  :class:`AsyncSladeService` bridges the
two shapes: concurrent ``submit()`` calls enqueue requests, a single dispatch
loop coalesces them — up to ``max_batch_size`` per flush, holding an
incomplete batch open at most ``max_wait_seconds`` — and each coalesced batch
executes through the synchronous :class:`~repro.service.facade.SladeService`
on a worker thread, off the event loop.  Per-request futures resolve with the
same structured :class:`~repro.service.api.SolveResponse` the sync facade
returns (including the size of the batch the request rode in).

Because a batch executes while the loop is already accepting the next one,
arrival bursts naturally pile into the following flush: streaming
single-request traffic turns into exactly the shared-menu batches the plan
cache was built to exploit.

Shutdown is clean: :meth:`close` rejects new submissions, then drains — every
request accepted before the close is solved and its future resolved.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.engine.telemetry import QUEUE_WAIT_BUCKETS
from repro.service.api import (
    ServiceClosedError,
    ServiceConfig,
    SolveRequest,
    SolveResponse,
)
from repro.service.facade import SladeService

#: Queue sentinel marking the position after which no submissions exist.
_SHUTDOWN = object()

#: (request, its future, loop-clock enqueue time for queue-wait telemetry).
_QueueItem = Tuple[SolveRequest, "asyncio.Future[SolveResponse]", float]


class AsyncSladeService:
    """Micro-batching asyncio frontend over a :class:`SladeService`.

    Parameters
    ----------
    service:
        The synchronous facade to execute batches through; a fresh one is
        built from ``config`` when omitted.
    config:
        Service tunables used when building the facade.  Mutually exclusive
        with ``service`` (passing both raises :class:`ValueError`); batching
        limits come from the facade's config unless overridden below.
    max_batch_size / max_wait_seconds:
        Optional overrides of the facade config's micro-batching limits.

    Usage::

        async with AsyncSladeService(config=ServiceConfig()) as svc:
            responses = await asyncio.gather(*(svc.submit(r) for r in stream))
    """

    def __init__(
        self,
        service: Optional[SladeService] = None,
        config: Optional[ServiceConfig] = None,
        max_batch_size: Optional[int] = None,
        max_wait_seconds: Optional[float] = None,
    ) -> None:
        if service is None:
            service = SladeService(config=config)
        elif config is not None:
            raise ValueError("pass either service or config, not both")
        self.service = service
        self.max_batch_size = (
            max_batch_size
            if max_batch_size is not None
            else service.config.max_batch_size
        )
        self.max_wait_seconds = (
            max_wait_seconds
            if max_wait_seconds is not None
            else service.config.max_wait_seconds
        )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1; got {self.max_batch_size}")
        if self.max_wait_seconds < 0:
            raise ValueError(
                f"max_wait_seconds must be >= 0; got {self.max_wait_seconds}"
            )
        self._queue: Optional["asyncio.Queue[object]"] = None
        self._loop_task: Optional["asyncio.Task[None]"] = None
        self._closed = False

    @property
    def telemetry(self):
        """The facade's shared telemetry registry (flush/queue-wait series)."""
        return self.service.telemetry

    # -- lifecycle -------------------------------------------------------------

    async def start(self) -> None:
        """Start the dispatch loop (idempotent; ``submit`` starts it lazily)."""
        if self._closed:
            raise ServiceClosedError("service has been closed")
        if self._loop_task is None:
            self._queue = asyncio.Queue()
            self._loop_task = asyncio.get_running_loop().create_task(
                self._dispatch_loop()
            )

    async def close(self) -> None:
        """Stop accepting submissions, drain pending requests, stop the loop.

        Every request accepted before the call is still solved and its
        future resolved; only *new* submissions fail with
        :class:`~repro.service.api.ServiceClosedError`.  The underlying
        facade (and its cache backend) is closed as well.
        """
        if self._closed:
            if self._loop_task is not None:
                await self._loop_task
            return
        self._closed = True
        if self._loop_task is not None:
            assert self._queue is not None
            self._queue.put_nowait(_SHUTDOWN)
            await self._loop_task
        self.service.close()

    async def __aenter__(self) -> "AsyncSladeService":
        await self.start()
        return self

    async def __aexit__(self, *_exc_info: object) -> None:
        await self.close()

    # -- submission ------------------------------------------------------------

    async def submit(self, request: SolveRequest) -> SolveResponse:
        """Enqueue one request and await its structured response.

        Concurrent submitters are coalesced into shared micro-batches; each
        caller gets back only its own response.  Solver- and validation-level
        failures resolve the future normally with an ``ok=False`` response —
        they never raise here.
        """
        if self._closed:
            raise ServiceClosedError("service has been closed")
        await self.start()
        assert self._queue is not None
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[SolveResponse]" = loop.create_future()
        self._queue.put_nowait((request, future, loop.time()))
        return await future

    async def submit_many(self, requests: List[SolveRequest]) -> List[SolveResponse]:
        """Submit concurrently and gather responses in submission order."""
        return list(await asyncio.gather(*(self.submit(r) for r in requests)))

    # -- the micro-batching loop -----------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        shutting_down = False
        while not shutting_down:
            head = await queue.get()
            if head is _SHUTDOWN:
                break
            batch: List[_QueueItem] = [head]  # type: ignore[list-item]
            deadline = loop.time() + self.max_wait_seconds
            while len(batch) < self.max_batch_size:
                remaining = deadline - loop.time()
                try:
                    if remaining <= 0:
                        item = queue.get_nowait()
                    else:
                        item = await asyncio.wait_for(queue.get(), remaining)
                except (asyncio.QueueEmpty, asyncio.TimeoutError):
                    break
                if item is _SHUTDOWN:
                    shutting_down = True
                    break
                batch.append(item)  # type: ignore[arg-type]
            await self._execute(batch)
        # A submit racing close() can enqueue behind the sentinel; drain so
        # every accepted request is answered before the loop exits.
        await self._drain_after_shutdown(queue)

    async def _drain_after_shutdown(self, queue: "asyncio.Queue[object]") -> None:
        pending: List[_QueueItem] = []
        while True:
            try:
                item = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if item is _SHUTDOWN:
                continue
            pending.append(item)  # type: ignore[arg-type]
        for start in range(0, len(pending), self.max_batch_size):
            await self._execute(pending[start:start + self.max_batch_size])

    async def _execute(self, batch: List[_QueueItem]) -> None:
        """Run one coalesced batch off the event loop and resolve its futures."""
        requests = [request for request, _future, _enqueued in batch]
        loop = asyncio.get_running_loop()
        telemetry = self.service.telemetry
        flush_time = loop.time()
        telemetry.increment("service.flushes")
        telemetry.observe("service.batch_size", len(batch))
        for _request, _future, enqueued in batch:
            telemetry.observe(
                "service.queue_wait_seconds",
                max(0.0, flush_time - enqueued),
                buckets=QUEUE_WAIT_BUCKETS,
            )
        try:
            responses = await loop.run_in_executor(
                None, self.service.solve_batch, requests
            )
        except Exception as exc:  # pragma: no cover - facade never raises per-request
            for _request, future, _enqueued in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_request, future, _enqueued), response in zip(batch, responses):
            if not future.done():
                future.set_result(response)
