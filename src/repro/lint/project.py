"""File contexts and the whole-project view rules run against."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.lint.suppressions import Suppressions, collect_suppressions
from repro.lint.symbols import ClassInfo, FunctionInfo, ModuleSymbols, collect_module


@dataclass
class FileContext:
    """One parsed source file plus its symbol table and suppressions."""

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    symbols: ModuleSymbols
    suppressions: Suppressions

    @property
    def basename(self) -> str:
        return self.path.name


def module_name_for(path: Path) -> Tuple[str, str]:
    """Infer ``(module_name, package)`` from ``__init__.py`` ancestry.

    Works for installed-layout trees (``src/repro/engine/cache.py`` →
    ``repro.engine.cache``) and for flat fixture directories, where the
    module name is simply the file stem.
    """
    parts: List[str] = [] if path.stem == "__init__" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").exists():
        parts.append(directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    module_name = ".".join(reversed(parts)) or path.stem
    if path.stem == "__init__":
        package = module_name
    else:
        package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    return module_name, package


def load_file(path: Path, root: Path) -> FileContext:
    """Read and parse one file (raises ``SyntaxError`` on broken sources)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    module_name, package = module_name_for(path)
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return FileContext(
        path=path,
        rel_path=rel,
        source=source,
        tree=tree,
        symbols=collect_module(tree, module_name, package),
        suppressions=collect_suppressions(source),
    )


#: A function-table entry: its module, enclosing class (if any), and info.
FunctionEntry = Tuple[ModuleSymbols, Optional[ClassInfo], FunctionInfo]


class Project:
    """Every analysed file plus the lazily computed cross-module analyses."""

    def __init__(self, files: List[FileContext]) -> None:
        self.files = list(files)
        self.modules: Dict[str, ModuleSymbols] = {
            ctx.symbols.module_name: ctx.symbols for ctx in self.files
        }
        self._function_table: Optional[Dict[str, FunctionEntry]] = None
        self._blocking: Optional[Dict[str, str]] = None
        self._leaks: Optional[Dict[str, frozenset]] = None

    # -- symbol lookup ---------------------------------------------------------

    @property
    def function_table(self) -> Dict[str, FunctionEntry]:
        """Map ``"module::qualname"`` to every known function and method."""
        if self._function_table is None:
            table: Dict[str, FunctionEntry] = {}
            for mod in self.modules.values():
                for info in mod.functions.values():
                    table[f"{mod.module_name}::{info.qualname}"] = (
                        mod, None, info,
                    )
                for cls in mod.classes.values():
                    for info in cls.methods.values():
                        table[f"{mod.module_name}::{info.qualname}"] = (
                            mod, cls, info,
                        )
            self._function_table = table
        return self._function_table

    def lookup_class(
        self, dotted: str
    ) -> Optional[Tuple[ModuleSymbols, ClassInfo]]:
        """Resolve an absolute dotted name to a project class."""
        module_name, _, last = dotted.rpartition(".")
        mod = self.modules.get(module_name)
        if mod is not None and last in mod.classes:
            return mod, mod.classes[last]
        return None

    def lookup_function(self, dotted: str) -> Optional[str]:
        """Resolve an absolute dotted name to a function-table key.

        Accepts ``pkg.mod.func``, ``pkg.mod.Cls.method``, and class names
        (resolved to their ``__init__`` when defined).
        """
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = self.modules.get(".".join(parts[:split]))
            if mod is None:
                continue
            rest = parts[split:]
            if len(rest) == 1:
                if rest[0] in mod.functions:
                    return f"{mod.module_name}::{rest[0]}"
                cls = mod.classes.get(rest[0])
                if cls is not None and "__init__" in cls.methods:
                    return f"{mod.module_name}::{cls.name}.__init__"
                return None
            if len(rest) == 2:
                cls = mod.classes.get(rest[0])
                if cls is not None and rest[1] in cls.methods:
                    return f"{mod.module_name}::{rest[0]}.{rest[1]}"
            return None
        return None

    def lookup_constant(self, dotted: str) -> Optional[ast.expr]:
        """Resolve an absolute dotted name to a module-level constant."""
        module_name, _, last = dotted.rpartition(".")
        mod = self.modules.get(module_name)
        if mod is not None:
            return mod.constants.get(last)
        return None

    # -- cross-module analyses -------------------------------------------------

    @property
    def blocking(self) -> Dict[str, str]:
        """Function-table keys of blocking sync functions -> root cause."""
        if self._blocking is None:
            from repro.lint.callgraph import compute_blocking

            self._blocking = compute_blocking(self)
        return self._blocking

    @property
    def leaks(self) -> Dict[str, frozenset]:
        """Function-table keys -> watched exception tokens that may escape."""
        if self._leaks is None:
            from repro.lint.callgraph import compute_leaks

            self._leaks = compute_leaks(self)
        return self._leaks
