"""Cross-module flow analyses over the package-local call graph.

Two fixed-point computations drive the concurrency rules:

* :func:`compute_blocking` — which *sync* functions transitively perform a
  blocking operation (``time.sleep``, socket/sqlite/subprocess/file I/O).
  SLD001 flags any un-awaited call from an ``async def`` into that set or
  directly into a blocking primitive.
* :func:`compute_leaks` — which watched exceptions (``OSError``,
  ``EOFError``, wire-protocol errors) can escape each function, combining
  risky primitives, ``raise`` statements, callee leak sets, and the
  ``try``/``except`` blocks lexically enclosing each site.  SLD002 requires
  the leak set of every networked-backend protocol method to be empty.

Call targets resolve through the import tables and class symbol tables in
:mod:`repro.lint.symbols`: ``self.m()``, ``self.attr.m()`` (via attribute
annotations or constructor assignments), annotated parameters
(``sock: socket.socket``), module functions, and imported project
callables.  Anything unresolvable is treated as safe — the analyses prefer
false negatives over false positives.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.project import Project
from repro.lint.symbols import (
    ClassInfo,
    FunctionInfo,
    ModuleSymbols,
    dotted_name,
    extract_type_names,
)

# -- blocking primitives -------------------------------------------------------

#: Exact dotted names that block the calling thread.
BLOCKING_EXACT = frozenset({
    "time.sleep", "open", "input", "select.select", "selectors.select",
    "os.system", "os.popen", "os.wait", "os.waitpid",
})

#: Dotted-name prefixes whose entire API is considered blocking.
BLOCKING_PREFIXES = (
    "socket.", "sqlite3.", "subprocess.", "shutil.",
    "urllib.request.", "http.client.", "ssl.", "ftplib.", "smtplib.",
)


def is_blocking_external(dotted: str) -> bool:
    return dotted in BLOCKING_EXACT or dotted.startswith(BLOCKING_PREFIXES)


# -- watched exceptions (fail-open contract) -----------------------------------

#: Exception names canonicalised to the token SLD002 tracks.  Subclasses of
#: ``OSError`` collapse onto it because ``except OSError`` catches them all.
_CANONICAL = {
    "OSError": "OSError", "IOError": "OSError",
    "ConnectionError": "OSError", "ConnectionResetError": "OSError",
    "ConnectionRefusedError": "OSError", "ConnectionAbortedError": "OSError",
    "BrokenPipeError": "OSError", "TimeoutError": "OSError",
    "InterruptedError": "OSError",
    "EOFError": "EOFError",
    "WireProtocolError": "WireProtocolError",
    "WirePayloadError": "WirePayloadError",
}

#: Full dotted names needing canonicalisation before the last-segment rule.
_CANONICAL_DOTTED = {
    "socket.timeout": "OSError",
    "socket.gaierror": "OSError",
    "socket.herror": "OSError",
    "asyncio.TimeoutError": "OSError",
}

_WIRE_TOKENS = frozenset({"WireProtocolError", "WirePayloadError"})


def canonical_token(resolved: str) -> Optional[str]:
    """Map a resolved exception name onto its watched token, if any."""
    if resolved in _CANONICAL_DOTTED:
        return _CANONICAL_DOTTED[resolved]
    return _CANONICAL.get(resolved.rsplit(".", 1)[-1])


def external_risk(dotted: str) -> FrozenSet[str]:
    """Watched exceptions a call into external code may raise."""
    if dotted.startswith(("socket.", "ssl.")):
        return frozenset({"OSError"})
    return frozenset()


# -- AST iteration helpers -----------------------------------------------------

def iter_calls(func_node: ast.AST) -> Iterator[Tuple[ast.Call, bool]]:
    """Yield ``(call, directly_awaited)`` pairs, skipping nested defs.

    Nested functions and lambdas are *definitions*, not executions, so
    their bodies do not run when the enclosing function does.
    """
    results: List[Tuple[ast.Call, bool]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                results.append((child, isinstance(node, ast.Await)))
            visit(child)

    visit(func_node)
    return iter(results)


def iter_attr_loads(func_node: ast.AST) -> Iterator[ast.Attribute]:
    """Yield attribute *loads* that are not the callee of a call.

    Used to catch blocking ``@property`` accesses like ``facade.cache_stats``,
    which never appear as :class:`ast.Call` nodes.
    """
    results: List[ast.Attribute] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if (
                isinstance(child, ast.Attribute)
                and isinstance(child.ctx, ast.Load)
                and not (isinstance(node, ast.Call) and child is node.func)
            ):
                results.append(child)
            visit(child)

    visit(func_node)
    return iter(results)


def iter_raises(func_node: ast.AST) -> Iterator[ast.Raise]:
    results: List[ast.Raise] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Raise):
                results.append(child)
            visit(child)

    visit(func_node)
    return iter(results)


def parent_map(func_node: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(func_node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


# -- call resolution -----------------------------------------------------------

def _attr_class(
    project: Project,
    mod: ModuleSymbols,
    cls: ClassInfo,
    attr: str,
) -> Optional[Tuple[ModuleSymbols, ClassInfo]]:
    """The project class an instance attribute holds, if determinable."""
    for source in (cls.attr_annotations.get(attr), cls.attr_params.get(attr)):
        if source is None:
            continue
        for name in extract_type_names(source):
            resolved = mod.resolve(name)
            if resolved in mod.classes:
                return mod, mod.classes[resolved]
            hit = project.lookup_class(resolved)
            if hit is not None:
                return hit
    ctor = cls.attr_constructors.get(attr)
    if ctor is not None:
        resolved = mod.resolve(ctor)
        if resolved in mod.classes:
            return mod, mod.classes[resolved]
        return project.lookup_class(resolved)
    return None


def _attr_external(
    mod: ModuleSymbols, cls: ClassInfo, attr: str
) -> Optional[str]:
    """The external dotted origin of an attribute (e.g. ``sqlite3.connect``)."""
    for source in (cls.attr_annotations.get(attr), cls.attr_params.get(attr)):
        if source is None:
            continue
        for name in extract_type_names(source):
            resolved = mod.resolve(name)
            if "." in resolved and not resolved.startswith("repro."):
                return resolved
    ctor = cls.attr_constructors.get(attr)
    if ctor is not None and ctor not in mod.classes:
        resolved = mod.resolve(ctor)
        if resolved not in mod.classes and "." in resolved:
            return resolved
    return None


def _class_init_key(mod: ModuleSymbols, cls: ClassInfo) -> Optional[str]:
    if "__init__" in cls.methods:
        return f"{mod.module_name}::{cls.name}.__init__"
    return None


def _resolve_through_classes(
    project: Project,
    mod: ModuleSymbols,
    cls: ClassInfo,
    chain: List[str],
) -> Tuple[Optional[str], Optional[str]]:
    """Resolve ``attr.attr...name`` against a class; -> ``(kind, value)``."""
    cur_mod, cur_cls = mod, cls
    for index, attr in enumerate(chain[:-1]):
        hit = _attr_class(project, cur_mod, cur_cls, attr)
        if hit is None:
            origin = _attr_external(cur_mod, cur_cls, attr)
            if origin is not None:
                remainder = ".".join(chain[index + 1:])
                return "external", f"{origin}.{remainder}"
            return None, None
        cur_mod, cur_cls = hit
    last = chain[-1]
    if last in cur_cls.methods:
        return "key", f"{cur_mod.module_name}::{cur_cls.name}.{last}"
    origin = _attr_external(cur_mod, cur_cls, last)
    if origin is not None:
        return "external", origin
    return None, None


def resolve_callable(
    project: Project,
    mod: ModuleSymbols,
    cls: Optional[ClassInfo],
    fi: Optional[FunctionInfo],
    expr: ast.AST,
) -> Tuple[Optional[str], Optional[str]]:
    """Resolve a callee/attribute expression.

    Returns ``("key", "module::qualname")`` for project functions,
    ``("external", "dotted.name")`` for everything resolvable outside the
    project, and ``(None, None)`` when the target is unknown.
    """
    if isinstance(expr, ast.Name):
        name = expr.id
        if name in mod.functions:
            return "key", f"{mod.module_name}::{name}"
        if name in mod.classes:
            key = _class_init_key(mod, mod.classes[name])
            return ("key", key) if key else (None, None)
        resolved = mod.resolve(name)
        key = project.lookup_function(resolved)
        if key is not None:
            return "key", key
        return "external", resolved
    dotted = dotted_name(expr)
    if dotted is None:
        return None, None
    head, _, rest = dotted.partition(".")
    if head == "self" and cls is not None and rest:
        return _resolve_through_classes(project, mod, cls, rest.split("."))
    if fi is not None and head in fi.params and rest:
        for name in extract_type_names(fi.params[head]):
            resolved = mod.resolve(name)
            if resolved in mod.classes:
                kind, value = _resolve_through_classes(
                    project, mod, mod.classes[resolved], rest.split(".")
                )
            else:
                hit = project.lookup_class(resolved)
                if hit is not None:
                    kind, value = _resolve_through_classes(
                        project, hit[0], hit[1], rest.split(".")
                    )
                elif "." in resolved:
                    kind, value = "external", f"{resolved}.{rest}"
                else:
                    kind, value = None, None
            if kind is not None:
                return kind, value
        return None, None
    resolved = mod.resolve(dotted)
    key = project.lookup_function(resolved)
    if key is not None:
        return "key", key
    if resolved != dotted or "." in dotted:
        return "external", resolved
    return None, None


# -- blocking fixed point ------------------------------------------------------

def compute_blocking(project: Project) -> Dict[str, str]:
    """Sync functions that transitively block -> root-cause description."""
    table = project.function_table
    blocking: Dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for key, (mod, cls, fi) in table.items():
            if key in blocking or fi.is_async:
                continue
            cause = _blocking_cause(project, mod, cls, fi, blocking)
            if cause is not None:
                blocking[key] = cause
                changed = True
    return blocking


def _blocking_cause(
    project: Project,
    mod: ModuleSymbols,
    cls: Optional[ClassInfo],
    fi: FunctionInfo,
    blocking: Dict[str, str],
) -> Optional[str]:
    for call, _awaited in iter_calls(fi.node):
        kind, value = resolve_callable(project, mod, cls, fi, call.func)
        if kind == "external" and value and is_blocking_external(value):
            return value
        if kind == "key" and value in blocking:
            return blocking[value]
    for attr in iter_attr_loads(fi.node):
        cause = property_blocking_cause(project, mod, cls, fi, attr, blocking)
        if cause is not None:
            return cause
    return None


def property_blocking_cause(
    project: Project,
    mod: ModuleSymbols,
    cls: Optional[ClassInfo],
    fi: Optional[FunctionInfo],
    attr: ast.Attribute,
    blocking: Dict[str, str],
) -> Optional[str]:
    """Root cause if an attribute load hits a blocking ``@property``."""
    kind, value = resolve_callable(project, mod, cls, fi, attr)
    if kind != "key" or value not in blocking:
        return None
    _pmod, _pcls, pinfo = project.function_table[value]
    if pinfo.is_property:
        return blocking[value]
    return None


# -- exception-leak fixed point ------------------------------------------------

def _handler_tokens(
    project: Project, mod: ModuleSymbols, handler_type: Optional[ast.expr]
) -> Tuple[Set[str], bool]:
    """Tokens one ``except`` clause catches; second value = catch-all."""
    if handler_type is None:
        return set(), True
    if isinstance(handler_type, ast.Tuple):
        tokens: Set[str] = set()
        for elt in handler_type.elts:
            sub, catch_all = _handler_tokens(project, mod, elt)
            if catch_all:
                return set(), True
            tokens |= sub
        return tokens, False
    dotted = dotted_name(handler_type)
    if dotted is None:
        return set(), False
    resolved = mod.resolve(dotted)
    last = resolved.rsplit(".", 1)[-1]
    if last in ("Exception", "BaseException"):
        return set(), True
    if last == "SladeError":
        # The project's error root: wire exceptions subclass it.
        return set(_WIRE_TOKENS), False
    token = canonical_token(resolved)
    if token is not None:
        return {token}, False
    # An alias for a module-level tuple, e.g. ``except _FAIL_OPEN_ERRORS:``.
    constant = mod.constants.get(dotted) or project.lookup_constant(resolved)
    if isinstance(constant, ast.Tuple):
        return _handler_tokens(project, mod, constant)
    return set(), False


def _caught_at(
    project: Project,
    mod: ModuleSymbols,
    parents: Dict[ast.AST, ast.AST],
    node: ast.AST,
    func_node: ast.AST,
) -> Tuple[Set[str], bool]:
    """Tokens caught by ``try`` blocks lexically enclosing ``node``."""
    tokens: Set[str] = set()
    current: ast.AST = node
    while current is not func_node:
        parent = parents.get(current)
        if parent is None:
            break
        if isinstance(parent, ast.Try) and current in parent.body:
            for handler in parent.handlers:
                sub, catch_all = _handler_tokens(project, mod, handler.type)
                if catch_all:
                    return tokens, True
                tokens |= sub
        current = parent
    return tokens, False


def _nearest_handler(
    parents: Dict[ast.AST, ast.AST], node: ast.AST, func_node: ast.AST
) -> Optional[ast.ExceptHandler]:
    current: ast.AST = node
    while current is not func_node:
        parent = parents.get(current)
        if parent is None:
            return None
        if isinstance(parent, ast.ExceptHandler):
            return parent
        current = parent
    return None


def compute_leaks(project: Project) -> Dict[str, FrozenSet[str]]:
    """Watched exception tokens that may escape each project function."""
    table = project.function_table
    leaks: Dict[str, FrozenSet[str]] = {key: frozenset() for key in table}
    parent_maps: Dict[str, Dict[ast.AST, ast.AST]] = {}
    changed = True
    while changed:
        changed = False
        for key, (mod, cls, fi) in table.items():
            if key not in parent_maps:
                parent_maps[key] = parent_map(fi.node)
            parents = parent_maps[key]
            escaped: Set[str] = set(leaks[key])
            for call, _awaited in iter_calls(fi.node):
                kind, value = resolve_callable(project, mod, cls, fi, call.func)
                if kind == "external" and value:
                    risk = set(external_risk(value))
                elif kind == "key" and value in leaks:
                    risk = set(leaks[value])
                else:
                    risk = set()
                if not risk:
                    continue
                caught, catch_all = _caught_at(
                    project, mod, parents, call, fi.node
                )
                if not catch_all:
                    escaped |= risk - caught
            for raise_node in iter_raises(fi.node):
                tokens: Set[str] = set()
                if raise_node.exc is not None:
                    target = raise_node.exc
                    if isinstance(target, ast.Call):
                        target = target.func
                    dotted = dotted_name(target)
                    if dotted is not None:
                        token = canonical_token(mod.resolve(dotted))
                        if token is not None:
                            tokens.add(token)
                else:
                    handler = _nearest_handler(parents, raise_node, fi.node)
                    if handler is not None:
                        sub, catch_all = _handler_tokens(
                            project, mod, handler.type
                        )
                        # A bare re-raise inside a catch-all can rethrow
                        # anything the try body produced; approximate with
                        # the tokens the handler names (none for catch-all).
                        tokens |= sub
                if not tokens:
                    continue
                caught, catch_all = _caught_at(
                    project, mod, parents, raise_node, fi.node
                )
                if not catch_all:
                    escaped |= tokens - caught
            if escaped != set(leaks[key]):
                leaks[key] = frozenset(escaped)
                changed = True
    return leaks
