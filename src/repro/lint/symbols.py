"""Per-module symbol tables: imports, functions, classes, attribute types.

The rules need three things the raw AST does not give them directly:

* an **import table** mapping local aliases to absolute dotted names, so
  ``sleep`` after ``from time import sleep`` resolves to ``time.sleep``;
* **class symbol tables** recording each method plus the best-known type of
  every ``self.<attr>`` (from annotations like
  ``self._persist: Optional[SQLiteBackend]``, from constructor assignments
  like ``self._pool = _SocketPool(...)``, or from an annotated parameter
  stored verbatim), so method calls through attributes resolve to project
  code;
* **module constants**, so an ``except _FAIL_OPEN_ERRORS:`` handler can be
  expanded to the exception tuple it names.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Names that appear inside type annotations without naming a project class.
_TYPING_NAMES = frozenset({
    "Optional", "Union", "Any", "Dict", "List", "Tuple", "Set", "FrozenSet",
    "Sequence", "Iterable", "Iterator", "Mapping", "MutableMapping",
    "Callable", "Awaitable", "Coroutine", "Generator", "Type", "ClassVar",
    "Final", "Literal", "dict", "list", "tuple", "set", "frozenset", "type",
    "str", "int", "float", "bool", "bytes", "bytearray", "object", "None",
})

#: Generic wrappers whose subscript argument *is* the value's type.
_UNWRAP_SUBSCRIPTS = frozenset({
    "Optional", "Union", "ClassVar", "Final", "Annotated",
})


def dotted_name(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` as a string, or ``None`` for anything not a plain chain."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        base = dotted_name(expr.value)
        if base is not None:
            return f"{base}.{expr.attr}"
    return None


def extract_type_names(annotation: ast.AST) -> List[str]:
    """Candidate class names inside an annotation (typing noise stripped).

    ``Optional[SQLiteBackend]`` yields ``["SQLiteBackend"]``;
    ``"tuple[socket.socket, bool]"`` (a string annotation) yields
    ``["socket.socket"]``.
    """
    out: List[str] = []
    _collect_type_names(annotation, out)
    return out


def _collect_type_names(expr: ast.AST, out: List[str]) -> None:
    if isinstance(expr, ast.Name):
        if expr.id not in _TYPING_NAMES:
            out.append(expr.id)
    elif isinstance(expr, ast.Attribute):
        dotted = dotted_name(expr)
        if dotted is not None:
            out.append(dotted)
        else:
            _collect_type_names(expr.value, out)
    elif isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        try:
            _collect_type_names(ast.parse(expr.value, mode="eval").body, out)
        except SyntaxError:
            pass
    elif isinstance(expr, ast.Subscript):
        # Only wrapper generics pass their argument through as the value's
        # own type; for containers (List[socket.socket]) the *element* type
        # must not become the receiver type of the attribute.
        head = expr.value
        head_name = (
            head.id if isinstance(head, ast.Name)
            else head.attr if isinstance(head, ast.Attribute) else ""
        )
        if head_name in _UNWRAP_SUBSCRIPTS:
            _collect_type_names(expr.slice, out)
        else:
            _collect_type_names(expr.value, out)
    elif isinstance(expr, (ast.Tuple, ast.List)):
        for elt in expr.elts:
            _collect_type_names(elt, out)
    elif isinstance(expr, ast.BinOp):  # PEP 604 unions: X | None
        _collect_type_names(expr.left, out)
        _collect_type_names(expr.right, out)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    name: str
    qualname: str  #: ``"f"`` for module functions, ``"Cls.m"`` for methods
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    is_async: bool
    class_name: Optional[str] = None
    decorators: List[str] = field(default_factory=list)
    #: annotated parameters, name -> annotation node
    params: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def is_property(self) -> bool:
        return any(
            dec == "property" or dec.endswith(".setter")
            or dec.endswith("cached_property")
            for dec in self.decorators
        )


@dataclass
class ClassInfo:
    """One class: its methods and what we know about ``self.<attr>`` types."""

    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: attr -> annotation node (``self.x: T`` or a class-level ``x: T``)
    attr_annotations: Dict[str, ast.expr] = field(default_factory=dict)
    #: attr -> dotted callable assigned (``self.x = SomeClass(...)``)
    attr_constructors: Dict[str, str] = field(default_factory=dict)
    #: attr -> annotation of the parameter stored (``self.x = param``)
    attr_params: Dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class ModuleSymbols:
    """Everything the analyses need to know about one module."""

    module_name: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    constants: Dict[str, ast.expr] = field(default_factory=dict)

    def resolve(self, dotted: str) -> str:
        """Expand the leading alias of ``dotted`` through the import table."""
        head, sep, rest = dotted.partition(".")
        target = self.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if sep else target


def _function_info(
    node: ast.AST, class_name: Optional[str] = None
) -> FunctionInfo:
    assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    decorators = []
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = dotted_name(target)
        if dotted is not None:
            decorators.append(dotted)
    params: Dict[str, ast.expr] = {}
    args = node.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if arg.annotation is not None:
            params[arg.arg] = arg.annotation
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        name=node.name,
        qualname=qualname,
        node=node,
        is_async=isinstance(node, ast.AsyncFunctionDef),
        class_name=class_name,
        decorators=decorators,
        params=params,
    )


def _collect_class(node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(name=node.name, node=node)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _function_info(stmt, node.name)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            # Class-level annotations, e.g. dataclass fields.
            info.attr_annotations[stmt.target.id] = stmt.annotation
    for method in info.methods.values():
        _collect_attr_types(method, info)
    return info


def _is_self_attr(expr: ast.AST) -> Optional[str]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return None


def _collect_attr_types(method: FunctionInfo, info: ClassInfo) -> None:
    for node in ast.walk(method.node):
        if isinstance(node, ast.AnnAssign):
            attr = _is_self_attr(node.target)
            if attr is not None:
                info.attr_annotations.setdefault(attr, node.annotation)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            attr = _is_self_attr(node.targets[0])
            if attr is None:
                continue
            value = node.value
            if isinstance(value, ast.Call):
                dotted = dotted_name(value.func)
                if dotted is not None:
                    info.attr_constructors.setdefault(attr, dotted)
            elif isinstance(value, ast.Name) and value.id in method.params:
                info.attr_params.setdefault(attr, method.params[value.id])


def collect_module(
    tree: ast.Module, module_name: str, package: str
) -> ModuleSymbols:
    """Build the symbol table for one parsed module.

    ``package`` anchors relative imports (for ``repro.engine.cache`` it is
    ``repro.engine``; for a package ``__init__`` it is the package itself).
    """
    symbols = ModuleSymbols(module_name=module_name)
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else local
                symbols.imports[local] = target
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.level == 0:
                base = stmt.module or ""
            else:
                parts = package.split(".") if package else []
                parts = parts[: len(parts) - (stmt.level - 1)] if stmt.level > 1 else parts
                base = ".".join(parts)
                if stmt.module:
                    base = f"{base}.{stmt.module}" if base else stmt.module
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                symbols.imports[local] = (
                    f"{base}.{alias.name}" if base else alias.name
                )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[stmt.name] = _function_info(stmt)
        elif isinstance(stmt, ast.ClassDef):
            symbols.classes[stmt.name] = _collect_class(stmt)
        elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name):
                symbols.constants[target.id] = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            if isinstance(stmt.target, ast.Name):
                symbols.constants[stmt.target.id] = stmt.value
    return symbols
