"""The ``repro lint`` subcommand implementation.

Kept out of :mod:`repro.cli` so the top-level CLI module stays a thin
argparse shell and the lint machinery is importable on its own (the CI
driver ``scripts/ci_static_analysis.py`` calls :func:`run_lint_command`'s
building blocks directly).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.lint.baseline import save_baseline
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import run_lint

#: Default analysis scope when no paths are given.
DEFAULT_PATHS = ("src/repro",)

#: Default committed baseline location (repo root).
DEFAULT_BASELINE = "lint-baseline.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` flags to an argparse parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to analyse (default: {DEFAULT_PATHS[0]})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline file grandfathering old findings "
        f"(default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule codes to run (default: all)",
    )


def run_lint_command(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    paths = [Path(p) for p in (args.paths or DEFAULT_PATHS)]
    baseline_path = None if args.no_baseline else Path(args.baseline)
    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    result = run_lint(paths, baseline_path=baseline_path, select=select)
    if args.write_baseline:
        target = Path(args.baseline)
        save_baseline(target, result.all_findings)
        print(
            f"wrote {len(result.all_findings)} finding(s) to {target}"
        )
        return 0
    if args.format == "json":
        print(json.dumps(render_json(result), indent=2))
    else:
        print(render_text(result))
    return 1 if result.failed else 0
