"""SLD001 — blocking calls reachable inside ``async def``.

One blocked event loop stalls every in-flight request on it, which is why
the transport offloads solves to an executor.  This rule flags un-awaited
calls inside any ``async def`` (including nested ones) that resolve to a
blocking primitive (``time.sleep``, socket/sqlite/subprocess/file ops) or
to a project sync function that transitively blocks, plus loads of
blocking ``@property`` attributes.

Safe patterns stay silent: directly awaited calls, calls *creating*
coroutines, callables passed (not called) to ``run_in_executor`` /
``asyncio.to_thread``, and nested function definitions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.lint.callgraph import (
    is_blocking_external,
    iter_attr_loads,
    iter_calls,
    property_blocking_cause,
    resolve_callable,
)
from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project
from repro.lint.registry import rule
from repro.lint.symbols import ClassInfo, dotted_name, _function_info


def _async_defs(
    ctx: FileContext,
) -> Iterator[tuple]:
    """Yield ``(async_node, enclosing_class_info)`` for every async def."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(ctx.tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.AsyncFunctionDef):
            continue
        cls: Optional[ClassInfo] = None
        current: ast.AST = node
        while current in parents:
            current = parents[current]
            if isinstance(current, ast.ClassDef):
                cls = ctx.symbols.classes.get(current.name)
                break
        yield node, cls


@rule(
    "SLD001",
    "blocking-call-in-async",
    "blocking work must never run on the event loop",
)
def check(ctx: FileContext, project: Project) -> Iterator[Finding]:
    blocking = project.blocking
    for node, cls in _async_defs(ctx):
        fi = _function_info(node, cls.name if cls else None)
        for call, awaited in iter_calls(node):
            if awaited:
                # ``await f()`` hands control to the loop; if ``f`` itself
                # blocks internally, it is flagged at its own call sites.
                continue
            kind, value = resolve_callable(
                project, ctx.symbols, cls, fi, call.func
            )
            display = dotted_name(call.func) or (value or "<call>")
            if kind == "external" and value and is_blocking_external(value):
                yield Finding(
                    path=ctx.rel_path,
                    line=call.lineno,
                    code="SLD001",
                    message=(
                        f"async function '{node.name}' makes blocking "
                        f"call '{display}'"
                    ),
                )
            elif kind == "key" and value in blocking:
                _mod, _cls, target = project.function_table[value]
                if target.is_async:
                    continue  # creating a coroutine does not block
                yield Finding(
                    path=ctx.rel_path,
                    line=call.lineno,
                    code="SLD001",
                    message=(
                        f"async function '{node.name}' calls '{display}', "
                        f"which blocks (ultimately via '{blocking[value]}')"
                    ),
                )
        for attr in iter_attr_loads(node):
            cause = property_blocking_cause(
                project, ctx.symbols, cls, fi, attr, blocking
            )
            if cause is not None:
                display = dotted_name(attr) or attr.attr
                yield Finding(
                    path=ctx.rel_path,
                    line=attr.lineno,
                    code="SLD001",
                    message=(
                        f"async function '{node.name}' reads property "
                        f"'{display}', which blocks (ultimately via "
                        f"'{cause}')"
                    ),
                )
