"""SLD002 — networked cache backends must fail open.

The deployment story leans on one promise: an unreachable, slow, or
corrupt cache server degrades a fleet to local rebuilds, never to request
errors.  That promise lives in ``remote.py`` / ``sharded.py`` /
``tiered.py``: no :class:`CacheBackend` protocol method there may let
``OSError`` (or any subclass: connection resets, timeouts), ``EOFError``,
or a wire-protocol exception escape to the caller.

The rule computes, for every project function, the set of watched
exceptions that can escape it (raise statements, socket primitives, callee
leaks, minus enclosing ``except`` clauses — including module-level tuples
like ``_FAIL_OPEN_ERRORS``), then requires the set to be empty for each
protocol method of every backend class in the checked modules.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project
from repro.lint.registry import rule

#: Modules carrying the fail-open contract (networked / tiered backends).
CHECKED_BASENAMES = frozenset({"remote.py", "sharded.py", "tiered.py"})

#: CacheBackend protocol surface plus the observability probes callers use.
PROTOCOL_METHODS = frozenset({
    "get", "try_get", "put", "merge", "delete", "clear", "snapshot",
    "close", "ping", "server_stats", "extra_metrics",
    "__len__", "__contains__",
})


@rule(
    "SLD002",
    "fail-open-contract",
    "networked backends must not leak transport exceptions",
)
def check(ctx: FileContext, project: Project) -> Iterator[Finding]:
    if ctx.basename not in CHECKED_BASENAMES:
        return
    leaks = project.leaks
    for cls in ctx.symbols.classes.values():
        # Duck-typed backend: anything exposing the get/put storage pair.
        if "get" not in cls.methods or "put" not in cls.methods:
            continue
        for name in sorted(PROTOCOL_METHODS & set(cls.methods)):
            method = cls.methods[name]
            key = f"{ctx.symbols.module_name}::{cls.name}.{name}"
            escaped = leaks.get(key) or frozenset()
            if escaped:
                yield Finding(
                    path=ctx.rel_path,
                    line=method.node.lineno,
                    code="SLD002",
                    message=(
                        f"fail-open contract: '{cls.name}.{name}' may let "
                        f"{', '.join(sorted(escaped))} escape to callers"
                    ),
                )
