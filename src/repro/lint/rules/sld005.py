"""SLD005 — lost asyncio tasks.

The event loop keeps only a *weak* reference to tasks, so the result of
``asyncio.create_task`` that is neither stored nor awaited can be
garbage-collected mid-flight — the canonical silently-dropped-work bug.
The rule flags ``create_task`` / ``ensure_future`` calls used as bare
expression statements (their handle is discarded on the spot).  Storing
the task (``self._loop_task = ...``, ``tasks.append(...)``), awaiting it,
or passing it onward all keep a strong reference and stay silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project
from repro.lint.registry import rule

_SPAWNERS = frozenset({"create_task", "ensure_future"})


@rule(
    "SLD005",
    "lost-asyncio-task",
    "asyncio task handles must be stored or awaited",
)
def check(ctx: FileContext, project: Project) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Expr):
            continue
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        func = call.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else None
        )
        if name in _SPAWNERS:
            yield Finding(
                path=ctx.rel_path,
                line=call.lineno,
                code="SLD005",
                message=(
                    f"result of '{name}(...)' is discarded; the task can "
                    f"be garbage-collected mid-flight — store the handle "
                    f"or await it"
                ),
            )
