"""The project-invariant rules (importing registers them)."""

from repro.lint.rules import sld001, sld002, sld003, sld004, sld005

__all__ = ["sld001", "sld002", "sld003", "sld004", "sld005"]
