"""SLD004 — telemetry names must match the shared inventory.

Dashboards, the ``/metrics`` tests, and the fleet smoke scripts all key on
metric names; a typo'd counter silently records to nowhere.  Every literal
name passed to ``Telemetry.increment`` / ``Telemetry.observe`` (or to the
``self._note`` / ``self._count`` forwarding helpers) must match the dotted
``component.metric`` convention *and* appear in the single inventory
module :mod:`repro.engine.metric_names`.  f-string names must extend one
of the registered dynamic prefixes (``http.responses.``,
``sharded_cache.shard.``).  Plain-name arguments (wrapper forwarding) are
skipped — the literal is checked at the wrapper's call sites instead.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project
from repro.lint.registry import rule
from repro.lint.symbols import dotted_name

#: ``component.metric`` (lowercase, digits, underscores; >= 2 segments).
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")

#: Telemetry entry points whose first argument is a metric name.
_SINKS = frozenset({"increment", "observe"})
#: Project forwarding helpers (AdmissionController._note, backends' _count).
_FORWARDERS = frozenset({"_note", "_count"})


def _metric_call(call: ast.Call) -> Optional[str]:
    """The sink kind ('counter'/'series') if this call records a metric."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    receiver = dotted_name(func.value) or ""
    if func.attr in _SINKS and "telemetry" in receiver:
        return "series" if func.attr == "observe" else "counter"
    if func.attr in _FORWARDERS and receiver == "self":
        return "counter"
    return None


def _name_argument(call: ast.Call) -> Optional[ast.expr]:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


def _fstring_shape(node: ast.JoinedStr) -> Tuple[str, str]:
    """``(literal_prefix, template)`` with ``{}`` for interpolations."""
    prefix_parts = []
    template_parts = []
    still_prefix = True
    for part in node.values:
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            template_parts.append(part.value)
            if still_prefix:
                prefix_parts.append(part.value)
        else:
            template_parts.append("{}")
            still_prefix = False
    return "".join(prefix_parts), "".join(template_parts)


@rule(
    "SLD004",
    "telemetry-name-drift",
    "metric names must match the dotted convention and shared inventory",
)
def check(ctx: FileContext, project: Project) -> Iterator[Finding]:
    from repro.engine import metric_names as inventory

    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = _metric_call(node)
        if kind is None:
            continue
        arg = _name_argument(node)
        if arg is None:
            continue
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
            if not NAME_RE.match(name):
                yield Finding(
                    path=ctx.rel_path,
                    line=arg.lineno,
                    code="SLD004",
                    message=(
                        f"telemetry name '{name}' does not match the "
                        f"dotted 'component.metric' convention"
                    ),
                )
            elif not inventory.is_known(name, kind):
                yield Finding(
                    path=ctx.rel_path,
                    line=arg.lineno,
                    code="SLD004",
                    message=(
                        f"telemetry {kind} name '{name}' is not in the "
                        f"shared inventory (repro.engine.metric_names)"
                    ),
                )
        elif isinstance(arg, ast.JoinedStr):
            prefix, template = _fstring_shape(arg)
            if not inventory.matches_dynamic(prefix):
                yield Finding(
                    path=ctx.rel_path,
                    line=arg.lineno,
                    code="SLD004",
                    message=(
                        f"dynamic telemetry name '{template}' does not "
                        f"extend a registered dynamic prefix "
                        f"(repro.engine.metric_names.DYNAMIC_PREFIXES)"
                    ),
                )
            elif not NAME_RE.match(template.replace("{}", "x")):
                yield Finding(
                    path=ctx.rel_path,
                    line=arg.lineno,
                    code="SLD004",
                    message=(
                        f"dynamic telemetry name '{template}' does not "
                        f"match the dotted 'component.metric' convention"
                    ),
                )
