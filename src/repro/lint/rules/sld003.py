"""SLD003 — lock discipline (a lightweight race detector).

If a class writes an attribute under ``with self._lock`` in one method,
every other access to that attribute must also hold the lock: an unlocked
read sees torn state, an unlocked write races the locked one.  The rule:

1. finds lexical lock regions — ``with`` statements whose context manager
   is a ``self.<attr>`` whose name contains ``lock``;
2. collects the attributes *written* inside those regions (assignments,
   augmented assignments, ``self.x[k] = v``, and mutating method calls
   like ``self.x.pop(...)``) outside ``__init__``;
3. classifies private helpers as lock-held when every in-class call site
   is itself inside a lock region or another lock-held method (fixed
   point), mirroring patterns like ``AdmissionController._state_for``;
4. flags any remaining access to a guarded attribute outside a lock
   region, in any method but the constructor.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project
from repro.lint.registry import rule
from repro.lint.symbols import ClassInfo

#: Methods allowed to touch guarded state unlocked (single-threaded setup).
_CONSTRUCTORS = frozenset({"__init__", "__new__", "__post_init__"})

#: Method names that mutate their receiver in place.
_MUTATORS = frozenset({
    "append", "add", "clear", "discard", "extend", "insert", "pop",
    "popitem", "remove", "setdefault", "sort", "reverse", "update",
})


def _self_attr(expr: ast.AST) -> str:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return expr.attr
    return ""


def _lock_withs(method_node: ast.AST) -> List[ast.With]:
    """``with self.<lock>:`` statements anywhere in one method."""
    regions = []
    for node in ast.walk(method_node):
        if isinstance(node, ast.With):
            for item in node.items:
                attr = _self_attr(item.context_expr)
                if "lock" in attr.lower():
                    regions.append(node)
                    break
    return regions


def _accesses(
    method_node: ast.AST,
) -> Iterator[Tuple[ast.Attribute, str, bool, bool]]:
    """Yield ``(node, attr, is_write, in_lock)`` for every self-attr use."""
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(method_node):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    lock_regions = set(_lock_withs(method_node))

    def inside_lock(node: ast.AST) -> bool:
        current = node
        while current in parents:
            current = parents[current]
            if current in lock_regions:
                return True
        return False

    for node in ast.walk(method_node):
        attr = _self_attr(node)
        if not attr:
            continue
        assert isinstance(node, ast.Attribute)
        parent = parents.get(node)
        write = isinstance(node.ctx, (ast.Store, ast.Del))
        if (
            not write
            and isinstance(parent, ast.Subscript)
            and parent.value is node
            and isinstance(parent.ctx, (ast.Store, ast.Del))
        ):
            write = True  # self.x[k] = v / del self.x[k]
        if not write and isinstance(parent, ast.Attribute):
            grand = parents.get(parent)
            if (
                parent.attr in _MUTATORS
                and isinstance(grand, ast.Call)
                and grand.func is parent
            ):
                write = True  # self.x.pop(...)
        yield node, attr, write, inside_lock(node)


def _locked_helper_methods(cls: ClassInfo) -> Set[str]:
    """Methods only ever called with the lock already held (fixed point)."""
    # method name -> list of (caller method name, call site under lock?)
    call_sites: Dict[str, List[Tuple[str, bool]]] = {}
    for method in cls.methods.values():
        parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(method.node):
            for child in ast.iter_child_nodes(node):
                parents[child] = node
        lock_regions = set(_lock_withs(method.node))
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Call):
                continue
            callee = _self_attr(node.func)
            if callee not in cls.methods:
                continue
            current: ast.AST = node
            in_lock = False
            while current in parents:
                current = parents[current]
                if current in lock_regions:
                    in_lock = True
                    break
            call_sites.setdefault(callee, []).append((method.name, in_lock))

    locked: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, sites in call_sites.items():
            if name in locked or name in _CONSTRUCTORS:
                continue
            if sites and all(
                in_lock or caller in locked for caller, in_lock in sites
            ):
                locked.add(name)
                changed = True
    return locked


@rule(
    "SLD003",
    "lock-discipline",
    "attributes written under self._lock must always be accessed under it",
)
def check(ctx: FileContext, project: Project) -> Iterator[Finding]:
    for cls in ctx.symbols.classes.values():
        guarded: Set[str] = set()
        lock_names: Set[str] = set()
        for method in cls.methods.values():
            for with_node in _lock_withs(method.node):
                for item in with_node.items:
                    attr = _self_attr(item.context_expr)
                    if "lock" in attr.lower():
                        lock_names.add(attr)
            if method.name in _CONSTRUCTORS:
                continue
            for _node, attr, write, in_lock in _accesses(method.node):
                if write and in_lock:
                    guarded.add(attr)
        guarded -= lock_names
        if not guarded:
            continue
        locked_helpers = _locked_helper_methods(cls)
        for method in cls.methods.values():
            if method.name in _CONSTRUCTORS or method.name in locked_helpers:
                continue
            for node, attr, _write, in_lock in _accesses(method.node):
                if attr in guarded and not in_lock:
                    yield Finding(
                        path=ctx.rel_path,
                        line=node.lineno,
                        code="SLD003",
                        message=(
                            f"'{cls.name}.{method.name}' accesses "
                            f"'self.{attr}' outside the lock that guards "
                            f"its writes"
                        ),
                    )
