"""The rule registry: ``@rule(...)`` decorator and lookup."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project

#: A rule callback: findings for one file, given the whole-project view.
CheckFn = Callable[[FileContext, Project], Iterable[Finding]]


@dataclass(frozen=True)
class RegisteredRule:
    code: str
    name: str
    summary: str
    check: CheckFn


_RULES: Dict[str, RegisteredRule] = {}


def rule(code: str, name: str, summary: str) -> Callable[[CheckFn], CheckFn]:
    """Register a rule callback under ``code`` (e.g. ``"SLD001"``)."""

    def register(check: CheckFn) -> CheckFn:
        if code in _RULES:
            raise ValueError(f"duplicate lint rule code {code!r}")
        _RULES[code] = RegisteredRule(
            code=code, name=name, summary=summary, check=check
        )
        return check

    return register


def all_rules() -> List[RegisteredRule]:
    """Every registered rule, sorted by code (imports the rule modules)."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_RULES[code] for code in sorted(_RULES)]
