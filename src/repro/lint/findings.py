"""Finding records and their stable identity for baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str  #: repo-relative POSIX path
    line: int  #: 1-based line of the offending node
    code: str  #: rule code, e.g. ``"SLD001"``
    message: str

    def render(self) -> str:
        """The canonical ``file:line:CODE message`` form."""
        return f"{self.path}:{self.line}:{self.code} {self.message}"

    @property
    def identity(self) -> Tuple[str, str, str]:
        """Baseline identity: line numbers shift under unrelated edits, so
        grandfathering matches on (path, code, message) instead."""
        return (self.path, self.code, self.message)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "code": self.code,
            "message": self.message,
        }
