"""Project-invariant static analysis for the SLADE codebase.

The repo's load-bearing contracts — fail-open cache backends, lock
discipline around shared counters, never blocking the event loop, one
telemetry-name inventory — are enforced by convention and chaos tests, both
of which miss whole classes of regression.  This package makes them
machine-checked: a dependency-free AST analysis (stdlib only) with a
package-local call graph, class symbol tables, and five project rules:

========  ==================================================================
SLD001    blocking call (``time.sleep``, socket/sqlite/file/subprocess ops,
          or a transitively-blocking repro function) reachable inside an
          ``async def``
SLD002    fail-open contract: :class:`CacheBackend` methods in
          ``remote.py`` / ``sharded.py`` / ``tiered.py`` must not let
          ``OSError`` or wire exceptions escape to callers
SLD003    lock discipline: an attribute written under ``with self._lock``
          in one method must not be accessed outside that lock elsewhere
SLD004    telemetry-name drift: counter/series names must match the dotted
          convention and the shared inventory in
          :mod:`repro.engine.metric_names`
SLD005    lost asyncio tasks: ``asyncio.create_task`` results neither
          stored nor awaited
========  ==================================================================

Findings render as ``file:line:CODE message``.  A finding is silenced
either by a ``# slade: noqa[SLD001]`` comment on the offending line or by
the committed baseline file (``lint-baseline.json``), which grandfathers
pre-existing findings while new ones fail the build.  Entry points:
``repro lint`` (CLI) and ``scripts/ci_static_analysis.py`` (CI gate).
"""

from repro.lint.findings import Finding
from repro.lint.registry import all_rules, rule
from repro.lint.runner import LintResult, run_lint

__all__ = ["Finding", "LintResult", "all_rules", "rule", "run_lint"]
