"""The committed baseline: grandfather old findings, fail on new ones.

The baseline stores finding *identities* — ``(path, code, message)`` with a
count — not line numbers, so unrelated edits that shift code do not churn
it.  A finding beyond its baselined count is "new" and fails the run;
fixing a baselined finding leaves a stale entry that the next
``--write-baseline`` prunes.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.core.errors import SladeError
from repro.lint.findings import Finding

BASELINE_VERSION = 1


class BaselineError(SladeError):
    """The baseline file exists but cannot be used."""


def load_baseline(path: Path) -> Counter:
    """Read identity counts from ``path`` (empty counter if absent)."""
    if not path.exists():
        return Counter()
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != BASELINE_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise BaselineError(
            f"baseline {path} is not a version-{BASELINE_VERSION} "
            f"lint baseline document"
        )
    counts: Counter = Counter()
    for entry in document["findings"]:
        try:
            identity = (entry["path"], entry["code"], entry["message"])
            counts[identity] += int(entry.get("count", 1))
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"baseline {path} holds a malformed entry: {entry!r}"
            ) from exc
    return counts


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the identities of ``findings`` as the new baseline."""
    counts: Counter = Counter(f.identity for f in findings)
    document = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": p, "code": c, "message": m, "count": n}
            for (p, c, m), n in sorted(counts.items())
        ],
    }
    path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")


def partition(
    findings: Iterable[Finding], baseline: Counter
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into ``(new, grandfathered)`` against the baseline."""
    remaining = Counter(baseline)
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in sorted(findings):
        if remaining[finding.identity] > 0:
            remaining[finding.identity] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
