"""Collect files, run every rule, apply suppressions and the baseline."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.core.errors import SladeError
from repro.lint.baseline import load_baseline, partition
from repro.lint.findings import Finding
from repro.lint.project import FileContext, Project, load_file
from repro.lint.registry import all_rules


class LintError(SladeError):
    """The lint run itself could not proceed (bad paths, bad selection)."""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    new_findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        return bool(self.new_findings)

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.new_findings + self.grandfathered)


def collect_files(paths: Sequence[object]) -> List[Path]:
    """Expand files and directories into a sorted list of ``*.py`` files."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw) if not isinstance(raw, Path) else raw
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise LintError(f"no such file or directory: {path}")
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                out.append(candidate)
    return out


def run_lint(
    paths: Sequence[Path],
    baseline_path: Optional[Path] = None,
    select: Optional[Sequence[str]] = None,
    root: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` and return the partitioned result.

    Parameters
    ----------
    paths:
        Files or directories to analyse (directories recurse).
    baseline_path:
        Committed baseline to grandfather against; a missing file is an
        empty baseline.
    select:
        Restrict to these rule codes (default: every registered rule).
    root:
        Directory findings are reported relative to (default: cwd).
    """
    root = (root or Path.cwd()).resolve()
    rules = all_rules()
    if select is not None:
        wanted = {code.upper() for code in select}
        known = {r.code for r in rules}
        unknown = wanted - known
        if unknown:
            raise LintError(
                f"unknown rule code(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        rules = [r for r in rules if r.code in wanted]

    contexts: List[FileContext] = []
    parse_findings: List[Finding] = []
    for file_path in collect_files(paths):
        try:
            contexts.append(load_file(file_path, root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            try:
                rel = file_path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            line = getattr(exc, "lineno", None) or 1
            parse_findings.append(
                Finding(
                    path=rel,
                    line=int(line),
                    code="SLD000",
                    message=f"cannot analyse file: {exc}",
                )
            )

    project = Project(contexts)
    result = LintResult(files_checked=len(contexts) + len(parse_findings))
    raw: List[Finding] = list(parse_findings)
    for ctx in contexts:
        for registered in rules:
            for finding in registered.check(ctx, project):
                if ctx.suppressions.is_suppressed(finding.line, finding.code):
                    result.suppressed += 1
                else:
                    raw.append(finding)

    baseline = (
        load_baseline(baseline_path) if baseline_path is not None else Counter()
    )
    result.new_findings, result.grandfathered = partition(raw, baseline)
    return result
