"""Text and JSON rendering of lint results."""

from __future__ import annotations

from typing import Any, Dict

from repro.lint.runner import LintResult


def render_text(result: LintResult) -> str:
    """Human-readable report: one ``file:line:CODE message`` per finding."""
    lines = [finding.render() for finding in result.new_findings]
    summary = (
        f"{len(result.new_findings)} finding(s) "
        f"({len(result.grandfathered)} baselined, "
        f"{result.suppressed} suppressed) "
        f"in {result.files_checked} file(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, Any]:
    """The machine-readable document CI uploads as an artifact."""
    return {
        "kind": "lint_report",
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "new_findings": [f.as_dict() for f in result.new_findings],
        "grandfathered": [f.as_dict() for f in result.grandfathered],
    }
