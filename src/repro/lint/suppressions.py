"""``# slade: noqa[SLDxxx]`` suppression comments.

A bare ``# slade: noqa`` silences every rule on its line; the bracketed
form silences only the listed codes (comma-separated).  Comments are found
with :mod:`tokenize`, so the marker inside a string literal does not count.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Optional

_NOQA_RE = re.compile(
    r"#\s*slade:\s*noqa(?:\s*\[(?P<codes>[A-Za-z0-9_,\s]+)\])?", re.IGNORECASE
)


class Suppressions:
    """Per-line suppression table for one source file."""

    def __init__(self, by_line: Dict[int, Optional[FrozenSet[str]]]) -> None:
        #: line -> codes silenced there; ``None`` means every code.
        self._by_line = by_line

    def is_suppressed(self, line: int, code: str) -> bool:
        if line not in self._by_line:
            return False
        codes = self._by_line[line]
        return codes is None or code.upper() in codes

    def __len__(self) -> int:
        return len(self._by_line)


def collect_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for noqa comments, tolerant of tokenize errors."""
    by_line: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                by_line[tok.start[0]] = None
            else:
                codes = frozenset(
                    part.strip().upper()
                    for part in raw.split(",")
                    if part.strip()
                )
                # "[ ]" with nothing listed is treated as a blanket noqa.
                by_line[tok.start[0]] = codes or None
    except tokenize.TokenError:
        pass
    return Suppressions(by_line)
