"""Pinned workload profiles for `repro loadtest` and the CI trajectory gate.

A profile is a named, fully seeded :class:`~repro.loadgen.workload.WorkloadSpec`
builder.  The ``ci-short`` profile is the one CI replays every run: its seed,
duration, and tenant mix are pinned so every `BENCH_trajectory.json` entry
measures the same offered load and entries stay comparable across PRs.
Changing ``ci-short`` invalidates the trajectory history — bump the profile
name instead (``ci-short-v2``) and re-seed the baseline.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.loadgen.workload import TenantClass, WorkloadSpec

#: The seed every committed trajectory entry was generated with.
CI_SHORT_SEED = 2026


def ci_short_profile() -> WorkloadSpec:
    """The pinned CI mix: three tenant classes, ~65 req/s for four seconds.

    * ``interactive`` — many small, latency-sensitive requests from four
      tenants, strongly Zipf-skewed onto six hot fingerprints (the cache's
      bread and butter);
    * ``batch`` — heavier heterogeneous-threshold requests arriving in
      3x bursts a quarter of the time (the queueing stressor);
    * ``scan`` — a low-rate near-uniform scan over twelve fingerprints
      (the cache-churn floor).
    """
    return WorkloadSpec(
        classes=(
            TenantClass(
                name="interactive",
                tenants=4,
                requests_per_second=40.0,
                n_range=(30, 60),
                thresholds="normal",
                mu=0.90,
                sigma=0.02,
                keys=6,
                zipf_exponent=1.2,
            ),
            TenantClass(
                name="batch",
                tenants=2,
                requests_per_second=15.0,
                burst_factor=3.0,
                burst_fraction=0.25,
                mean_burst_seconds=0.5,
                n_range=(60, 120),
                thresholds="heavy_tailed",
                mu=0.90,
                keys=4,
                zipf_exponent=1.0,
            ),
            TenantClass(
                name="scan",
                tenants=2,
                requests_per_second=10.0,
                n_range=(40, 90),
                thresholds="uniform",
                mu=0.90,
                sigma=0.03,
                keys=12,
                zipf_exponent=0.4,
            ),
        ),
        duration_seconds=4.0,
        seed=CI_SHORT_SEED,
    )


def ci_short_v2_profile() -> WorkloadSpec:
    """``ci-short`` plus a mixed-deadline class — the current CI gate mix.

    The first three classes are byte-for-byte the ``ci-short`` mix (same
    seed, same per-class child generators, so their schedules are
    unchanged); the added ``deadline`` class sends budgeted traffic whose
    ``deadline_ms`` spans tight-but-feasible (15ms) through roomy (250ms),
    exercising the anytime ladder's greedy floor, budgeted refinement, and
    already-expired 503 paths under real queueing.
    """
    base = ci_short_profile()
    deadline_class = TenantClass(
        name="deadline",
        tenants=2,
        requests_per_second=12.0,
        n_range=(30, 70),
        thresholds="normal",
        mu=0.90,
        sigma=0.02,
        keys=6,
        zipf_exponent=1.0,
        deadline_range_ms=(15.0, 250.0),
    )
    return WorkloadSpec(
        classes=base.classes + (deadline_class,),
        duration_seconds=base.duration_seconds,
        seed=base.seed,
        bins=base.bins,
        rate_scale=base.rate_scale,
        arrival_model=base.arrival_model,
    )


def steady_profile() -> WorkloadSpec:
    """A single reward-driven class at the crowd model's derived rate.

    The demonstration profile for the README walkthrough: arrival intensity
    comes from the paper's reward-elastic supply model rather than a pinned
    requests/second figure.
    """
    return WorkloadSpec(
        classes=(
            TenantClass(
                name="steady",
                tenants=2,
                reward_per_bin=0.10,
                n_range=(40, 80),
                thresholds="normal",
                keys=8,
            ),
        ),
        duration_seconds=5.0,
        seed=7,
    )


PROFILES: Dict[str, Callable[[], WorkloadSpec]] = {
    "ci-short": ci_short_profile,
    "ci-short-v2": ci_short_v2_profile,
    "steady": steady_profile,
}


def build_profile(
    name: str,
    duration_seconds: Optional[float] = None,
    seed: Optional[int] = None,
) -> WorkloadSpec:
    """Instantiate a named profile, optionally overriding duration/seed."""
    try:
        factory = PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; available: {', '.join(sorted(PROFILES))}"
        ) from None
    return factory().scaled(duration_seconds=duration_seconds, seed=seed)
