"""The open-loop load runner: fire a schedule at a live HTTP deployment.

**Open-loop** is the load-testing contract that keeps the numbers honest:
every request is launched at its pre-computed arrival time regardless of how
many earlier requests are still in flight.  A closed-loop driver (send,
wait, send) silently slows its offered load to match a struggling server —
the *coordinated omission* problem — and reports flattering latencies while
the real queue would have exploded.  Here the queueing delay lands where it
belongs: latency is measured from the request's **scheduled arrival**, so
time spent waiting behind a saturated connection pool or a slow planner is
part of the recorded number.

The runner drives N persistent :class:`~repro.service.client.AsyncSladeHttpClient`
connections from one event loop, accounts every outcome to its tenant class,
and separates two budgets a multi-tenant SLO cares about:

* the **error budget** — solve failures, transport errors, unexpected HTTP
  statuses: things that should never happen;
* the **rejection budget** — 429/503 admission responses: the contractual
  backpressure of an over-quota tenant, tracked per class precisely so tests
  can assert one tenant's rejections never bleed into another's error budget.

Latency percentiles cover successfully served requests; cache provenance
(``hit``/``miss`` from the response envelope) is additionally bucketed into
per-second windows so a report shows the cache warming up over time.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.loadgen.histogram import LatencyHistogram
from repro.loadgen.workload import ScheduledRequest
from repro.service.client import AsyncSladeHttpClient, TransportError


@dataclass
class ClassStats:
    """Accumulated outcomes of one tenant class (or the overall roll-up)."""

    name: str
    scheduled: int = 0
    ok: int = 0
    solve_failures: int = 0
    rejected: int = 0          #: 429 — per-tenant quota backpressure
    overloaded: int = 0        #: 503 — global overload backpressure
    transport_errors: int = 0
    other_errors: int = 0      #: unexpected statuses (400/404/500/...)
    cache_hits: int = 0
    cache_misses: int = 0
    infeasible: int = 0        #: served plans that failed verification
    deadline_requests: int = 0  #: attempts that carried a deadline_ms budget
    deadline_met: int = 0      #: served within their own budget (client clock)
    deadline_missed: int = 0   #: served, but past their budget
    deadline_expired: int = 0  #: structured 503: budget blown before planning
    deadline_degraded: int = 0  #: served best-so-far (quality != optimal)
    latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    deadline_latency: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_seconds_total: float = 0.0

    @property
    def attempted(self) -> int:
        return (self.ok + self.solve_failures + self.rejected + self.overloaded
                + self.deadline_expired + self.transport_errors
                + self.other_errors)

    @property
    def error_budget(self) -> float:
        """Fraction of attempts that failed in a non-contractual way."""
        if self.attempted == 0:
            return 0.0
        failures = self.solve_failures + self.transport_errors + self.other_errors
        return failures / self.attempted

    @property
    def rejection_budget(self) -> float:
        """Fraction of attempts turned away by admission control."""
        if self.attempted == 0:
            return 0.0
        return (self.rejected + self.overloaded) / self.attempted

    @property
    def warm_rate(self) -> float:
        """Cache hits over cache-visible responses (served requests only)."""
        visible = self.cache_hits + self.cache_misses
        return self.cache_hits / visible if visible else 0.0

    @property
    def deadline_hit_rate(self) -> float:
        """Fraction of budgeted attempts served within their own deadline.

        Expired 503s count against the rate (the budget was blown), while
        admission rejections and transport errors do not — they never
        reached the planner, so they say nothing about deadline behaviour.
        """
        accounted = self.deadline_met + self.deadline_missed + self.deadline_expired
        return self.deadline_met / accounted if accounted else 0.0

    def throughput(self, wall_seconds: float) -> float:
        return self.ok / wall_seconds if wall_seconds > 0 else 0.0

    def as_dict(self, wall_seconds: float) -> Dict[str, Any]:
        return {
            "scheduled": self.scheduled,
            "ok": self.ok,
            "solve_failures": self.solve_failures,
            "rejected": self.rejected,
            "overloaded": self.overloaded,
            "transport_errors": self.transport_errors,
            "other_errors": self.other_errors,
            "error_budget": self.error_budget,
            "rejection_budget": self.rejection_budget,
            "throughput_rps": self.throughput(wall_seconds),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "warm_rate": self.warm_rate,
            "infeasible": self.infeasible,
            "latency_seconds": self.latency.summary(),
            "mean_service_seconds": (
                self.service_seconds_total / self.ok if self.ok else 0.0
            ),
            "deadline": {
                "requests": self.deadline_requests,
                "met": self.deadline_met,
                "missed": self.deadline_missed,
                "expired": self.deadline_expired,
                "degraded": self.deadline_degraded,
                "hit_rate": self.deadline_hit_rate,
                "latency_seconds": self.deadline_latency.summary(),
            },
        }


@dataclass
class LoadReport:
    """The structured outcome of one load-test run."""

    started_at: str
    duration_seconds: float
    wall_seconds: float
    scheduled: int
    overall: ClassStats
    classes: Dict[str, ClassStats]
    warm_windows: List[Dict[str, float]]
    profile: Optional[str] = None
    seed: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        """The JSON document ``repro loadtest --output`` writes."""
        return {
            "kind": "loadtest_report",
            "version": 1,
            "started_at": self.started_at,
            "profile": self.profile,
            "seed": self.seed,
            "duration_seconds": self.duration_seconds,
            "wall_seconds": self.wall_seconds,
            "scheduled": self.scheduled,
            "overall": self.overall.as_dict(self.wall_seconds),
            "classes": {
                name: stats.as_dict(self.wall_seconds)
                for name, stats in sorted(self.classes.items())
            },
            "warm_windows": self.warm_windows,
        }

    def format_table(self) -> str:
        """A terminal summary table (the ``repro loadtest`` default output)."""
        wall = self.wall_seconds
        header = (
            f"{'class':<14} {'req':>6} {'ok':>6} {'rej':>5} {'err':>5} "
            f"{'rps':>8} {'p50':>9} {'p99':>9} {'p999':>9} {'warm':>6}"
        )
        lines = [header, "-" * len(header)]
        rows = [*sorted(self.classes.items()), ("overall", self.overall)]
        for name, stats in rows:
            summary = stats.latency.summary()
            errors = (stats.solve_failures + stats.transport_errors
                      + stats.other_errors)
            lines.append(
                f"{name:<14} {stats.scheduled:>6} {stats.ok:>6} "
                f"{stats.rejected + stats.overloaded:>5} {errors:>5} "
                f"{stats.throughput(wall):>8.1f} "
                f"{summary['p50'] * 1000:>7.1f}ms {summary['p99'] * 1000:>7.1f}ms "
                f"{summary['p999'] * 1000:>7.1f}ms {stats.warm_rate:>6.1%}"
            )
        if self.overall.deadline_requests:
            lines.append("")
            lines.append(
                f"{'class':<14} {'bgt':>6} {'met':>6} {'miss':>5} {'exp':>5} "
                f"{'b-s-f':>5} {'hit%':>7} {'dl-p99':>9}"
            )
            lines.append("-" * len(lines[-1]))
            for name, stats in rows:
                if not stats.deadline_requests:
                    continue
                dl = stats.deadline_latency.summary()
                lines.append(
                    f"{name:<14} {stats.deadline_requests:>6} "
                    f"{stats.deadline_met:>6} {stats.deadline_missed:>5} "
                    f"{stats.deadline_expired:>5} {stats.deadline_degraded:>5} "
                    f"{stats.deadline_hit_rate:>7.1%} {dl['p99'] * 1000:>7.1f}ms"
                )
        return "\n".join(lines)


#: Builds one concurrent client; injectable so tests can fake the wire.
ClientFactory = Callable[[], Any]


async def run_load_test(
    schedule: Sequence[ScheduledRequest],
    base_url: Optional[str] = None,
    *,
    clients: int = 16,
    # Not a local wait (ASYNC109's concern): this is the per-exchange client
    # timeout forwarded into every pooled AsyncSladeHttpClient.
    timeout: float = 30.0,  # noqa: ASYNC109
    time_scale: float = 1.0,
    client_factory: Optional[ClientFactory] = None,
    profile: Optional[str] = None,
    seed: Optional[int] = None,
) -> LoadReport:
    """Replay ``schedule`` open-loop and return the accounted report.

    Parameters
    ----------
    schedule:
        The deterministic arrival list from
        :func:`repro.loadgen.workload.generate_schedule`.
    base_url:
        The live ``repro serve --http`` endpoint (unused when
        ``client_factory`` is given).
    clients:
        Size of the persistent-connection pool.  Requests never wait to
        *arrive* (open-loop); they wait for a free connection, and that wait
        is part of their recorded latency.
    timeout:
        Per-exchange client timeout in seconds.
    time_scale:
        Multiplier on scheduled arrival times (tests compress time with
        values < 1).
    client_factory:
        Builds the N pool clients; anything with ``async solve(payload)``
        returning an object with ``status``/``payload`` attributes and
        ``async close()`` works.  Defaults to
        :class:`~repro.service.client.AsyncSladeHttpClient` against
        ``base_url``.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1; got {clients}")
    if not schedule:
        raise ValueError("schedule is empty; nothing to replay")
    if client_factory is None:
        if base_url is None:
            raise ValueError("pass base_url or client_factory")
        factory_url = base_url

        def client_factory() -> AsyncSladeHttpClient:
            return AsyncSladeHttpClient(factory_url, timeout=timeout)

    started_at = datetime.now(timezone.utc).isoformat(timespec="seconds")
    overall = ClassStats(name="overall")
    per_class: Dict[str, ClassStats] = {}
    for request in schedule:
        stats = per_class.setdefault(
            request.tenant_class, ClassStats(name=request.tenant_class)
        )
        stats.scheduled += 1
        overall.scheduled += 1
    windows: Dict[int, Dict[str, int]] = {}

    pool: "asyncio.Queue[Any]" = asyncio.Queue()
    pool_clients = [client_factory() for _ in range(clients)]
    for client in pool_clients:
        pool.put_nowait(client)

    loop = asyncio.get_running_loop()
    start = loop.time()

    async def fire(request: ScheduledRequest, due: float) -> None:
        stats = per_class[request.tenant_class]
        client = await pool.get()
        begun = loop.time()
        status: Optional[int] = None
        payload: Any = None
        try:
            reply = await client.solve(request.payload, include_plan=False)
            status, payload = reply.status, reply.payload
        except TransportError:
            pass
        finally:
            pool.put_nowait(client)
        now = loop.time()
        body = payload if isinstance(payload, dict) else {}
        budgeted = request.deadline_ms is not None
        error_type = (body.get("error") or {}).get("type")
        if budgeted and status is not None:
            stats.deadline_requests += 1
            overall.deadline_requests += 1
        if status == 200 and body.get("ok") is True:
            for target in (stats, overall):
                target.ok += 1
                target.latency.record(now - due)
                target.service_seconds_total += now - begun
            if body.get("feasible") is False:
                stats.infeasible += 1
                overall.infeasible += 1
            if budgeted:
                # Deadline accounting uses the client's end-to-end clock
                # (dispatch to response), the budget a caller experiences;
                # open-loop queue-wait latency stays in the main histogram.
                elapsed_ms = (now - begun) * 1000.0
                quality = (body.get("provenance") or {}).get("quality")
                for target in (stats, overall):
                    target.deadline_latency.record(now - begun)
                    if elapsed_ms <= float(request.deadline_ms or 0.0):
                        target.deadline_met += 1
                    else:
                        target.deadline_missed += 1
                    if quality not in (None, "optimal"):
                        target.deadline_degraded += 1
            cache = body.get("cache")
            window = windows.setdefault(
                int(request.at), {"hits": 0, "misses": 0}
            )
            if cache == "hit":
                stats.cache_hits += 1
                overall.cache_hits += 1
                window["hits"] += 1
            elif cache == "miss":
                stats.cache_misses += 1
                overall.cache_misses += 1
                window["misses"] += 1
        elif status == 200:
            stats.solve_failures += 1
            overall.solve_failures += 1
        elif status == 429:
            stats.rejected += 1
            overall.rejected += 1
        elif status == 503 and error_type == "DeadlineExceededError":
            # Contractual "your budget was already blown", not overload.
            stats.deadline_expired += 1
            overall.deadline_expired += 1
        elif status == 503:
            stats.overloaded += 1
            overall.overloaded += 1
        elif status is None:
            stats.transport_errors += 1
            overall.transport_errors += 1
        else:
            stats.other_errors += 1
            overall.other_errors += 1

    tasks: List["asyncio.Task[None]"] = []
    try:
        for request in schedule:
            due = start + request.at * time_scale
            delay = due - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(asyncio.create_task(fire(request, due)))
        await asyncio.gather(*tasks)
    finally:
        for task in tasks:
            if not task.done():
                task.cancel()
        for client in pool_clients:
            await client.close()
    wall = loop.time() - start

    warm_windows = [
        {
            "second": second,
            "hits": counts["hits"],
            "misses": counts["misses"],
            "warm_rate": (
                counts["hits"] / (counts["hits"] + counts["misses"])
                if counts["hits"] + counts["misses"] else 0.0
            ),
        }
        for second, counts in sorted(windows.items())
    ]
    duration = max(request.at for request in schedule)
    return LoadReport(
        started_at=started_at,
        duration_seconds=duration,
        wall_seconds=wall,
        scheduled=len(schedule),
        overall=overall,
        classes=per_class,
        warm_windows=warm_windows,
        profile=profile,
        seed=seed,
    )
