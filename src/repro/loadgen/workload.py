"""Seeded open-loop workload generation for the load harness.

A workload is a *tenant mix*: several :class:`TenantClass` populations, each
with its own arrival process, threshold distribution, and hot-key skew,
replayed against the serving stack.  :func:`generate_schedule` turns a
:class:`WorkloadSpec` into a deterministic, time-sorted list of
:class:`ScheduledRequest` — same seed, same schedule, byte for byte — which
the runner (:mod:`repro.loadgen.runner`) then fires **open-loop**: arrival
times are fixed here, before a single response exists, so a slow server
cannot slow down the offered load and thereby hide its own queueing delay
(the coordinated-omission trap).

The pieces deliberately reuse the paper-model machinery the repo already
has:

* arrival rates derive from the reward-elastic Poisson supply model of
  :class:`repro.crowd.arrival.RewardSensitiveArrivalModel` — a class paying
  more per bin attracts proportionally more traffic — unless a class pins an
  explicit ``requests_per_second``;
* per-request reliability thresholds come from the Section 7.2 generators in
  :mod:`repro.datasets.thresholds` (normal / uniform / heavy-tailed);
* hot-key skew is Zipfian over a per-class population of ``keys`` distinct
  problem fingerprints, so cache warm-rate under load reflects realistic
  popularity curves rather than uniform churn.

Burstiness is an on/off modulated Poisson process: each class alternates
between a base phase at its mean rate and burst phases at
``burst_factor`` times that rate, with exponentially distributed phase
lengths sized so bursts cover ``burst_fraction`` of the timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import SladeError
from repro.crowd.arrival import RewardSensitiveArrivalModel
from repro.datasets.thresholds import (
    heavy_tailed_thresholds,
    normal_thresholds,
    uniform_thresholds,
)

#: The paper's Table 1 menu — the default shared bin menu of every class, so
#: a whole workload exercises the shared-menu plan cache the way a real
#: multi-tenant deployment would.
DEFAULT_BINS: Tuple[Tuple[int, float, float], ...] = (
    (1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24),
)

#: Threshold distributions a tenant class may draw from.
THRESHOLD_DISTRIBUTIONS = ("normal", "uniform", "heavy_tailed", "constant")


class WorkloadError(SladeError):
    """An invalid workload specification."""


@dataclass(frozen=True)
class TenantClass:
    """One tenant population sharing an arrival process and request shape.

    Attributes
    ----------
    name:
        Class label; tenants are named ``<name>-<i>`` for ``i`` in
        ``range(tenants)``.
    tenants:
        Number of distinct tenant identities the class's traffic is spread
        over (uniformly at random, deterministically seeded).
    reward_per_bin:
        Per-bin reward (USD) fed to the crowd supply model to derive the
        class's arrival rate when ``requests_per_second`` is not pinned.
    requests_per_second:
        Explicit mean arrival rate; overrides the reward-derived rate.
    burst_factor:
        Rate multiplier during burst phases (1.0 disables bursting).
    burst_fraction:
        Fraction of the timeline spent bursting (0 disables bursting).
    mean_burst_seconds:
        Mean length of one burst phase.
    n_range:
        Inclusive range of atomic-task counts per request.
    thresholds:
        One of :data:`THRESHOLD_DISTRIBUTIONS`.
    mu, sigma:
        Location/spread of the threshold distribution (``uniform`` draws
        from ``[mu - 2*sigma, mu + 2*sigma]``; ``constant`` uses ``mu``).
    keys:
        Size of the class's fingerprint population — the number of distinct
        ``(n, threshold)`` problems its requests are drawn from.
    zipf_exponent:
        Popularity skew across those keys: rank-``k`` popularity is
        proportional to ``1 / k**zipf_exponent`` (0 is uniform).
    deadline_range_ms:
        When set, every request of the class carries a ``deadline_ms``
        budget drawn uniformly from this inclusive range, exercising the
        anytime/deadline path; ``None`` (default) sends unbudgeted traffic.
    """

    name: str
    tenants: int = 1
    reward_per_bin: float = 0.10
    requests_per_second: Optional[float] = None
    burst_factor: float = 1.0
    burst_fraction: float = 0.0
    mean_burst_seconds: float = 1.0
    n_range: Tuple[int, int] = (40, 80)
    thresholds: str = "normal"
    mu: float = 0.9
    sigma: float = 0.02
    keys: int = 8
    zipf_exponent: float = 1.1
    deadline_range_ms: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("tenant class needs a non-empty name")
        if self.tenants < 1:
            raise WorkloadError(f"{self.name}: tenants must be >= 1")
        if self.requests_per_second is not None and self.requests_per_second <= 0:
            raise WorkloadError(f"{self.name}: requests_per_second must be positive")
        if self.burst_factor < 1.0:
            raise WorkloadError(f"{self.name}: burst_factor must be >= 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise WorkloadError(f"{self.name}: burst_fraction must lie in [0, 1)")
        if self.mean_burst_seconds <= 0:
            raise WorkloadError(f"{self.name}: mean_burst_seconds must be positive")
        lo, hi = self.n_range
        if not 1 <= lo <= hi:
            raise WorkloadError(f"{self.name}: invalid n_range {self.n_range}")
        if self.thresholds not in THRESHOLD_DISTRIBUTIONS:
            raise WorkloadError(
                f"{self.name}: unknown threshold distribution "
                f"{self.thresholds!r}; pick one of {THRESHOLD_DISTRIBUTIONS}"
            )
        if self.keys < 1:
            raise WorkloadError(f"{self.name}: keys must be >= 1")
        if self.zipf_exponent < 0:
            raise WorkloadError(f"{self.name}: zipf_exponent must be >= 0")
        if self.deadline_range_ms is not None:
            lo_ms, hi_ms = self.deadline_range_ms
            if not 0 < lo_ms <= hi_ms:
                raise WorkloadError(
                    f"{self.name}: invalid deadline_range_ms "
                    f"{self.deadline_range_ms}; need 0 < lo <= hi"
                )

    def mean_rate(
        self,
        model: RewardSensitiveArrivalModel,
        rate_scale: float,
    ) -> float:
        """Mean requests/second: pinned, or derived from the supply model.

        The crowd model speaks workers/minute at a given reward; the load
        harness reinterprets that supply curve as request demand and scales
        it by ``rate_scale`` into a serving-grade requests/second figure.
        """
        if self.requests_per_second is not None:
            return self.requests_per_second
        return model.arrival_rate(self.reward_per_bin) / 60.0 * rate_scale


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete tenant mix: classes, duration, menu, and the master seed."""

    classes: Tuple[TenantClass, ...]
    duration_seconds: float = 5.0
    seed: int = 0
    bins: Tuple[Tuple[int, float, float], ...] = DEFAULT_BINS
    rate_scale: float = 600.0
    arrival_model: RewardSensitiveArrivalModel = field(
        default_factory=RewardSensitiveArrivalModel
    )

    def __post_init__(self) -> None:
        if not self.classes:
            raise WorkloadError("workload needs at least one tenant class")
        names = [cls.name for cls in self.classes]
        if len(set(names)) != len(names):
            raise WorkloadError(f"tenant class names must be unique; got {names}")
        if self.duration_seconds <= 0:
            raise WorkloadError("duration_seconds must be positive")
        if self.rate_scale <= 0:
            raise WorkloadError("rate_scale must be positive")

    def scaled(
        self,
        duration_seconds: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "WorkloadSpec":
        """A copy with the duration and/or seed replaced (CLI overrides)."""
        return WorkloadSpec(
            classes=self.classes,
            duration_seconds=(
                duration_seconds if duration_seconds is not None
                else self.duration_seconds
            ),
            seed=seed if seed is not None else self.seed,
            bins=self.bins,
            rate_scale=self.rate_scale,
            arrival_model=self.arrival_model,
        )


@dataclass(frozen=True)
class ScheduledRequest:
    """One arrival: when it fires, who it bills, and what it asks for."""

    at: float                 #: seconds from the start of the run
    tenant_class: str
    tenant: str
    key: int                  #: index into the class's fingerprint population
    payload: Dict[str, Any]   #: inline ``solve_request`` body
    deadline_ms: Optional[float] = None  #: latency budget (also in payload)


def _class_keys(
    cls: TenantClass, rng: np.random.Generator
) -> List[Tuple[int, float]]:
    """The class's fingerprint population: ``keys`` distinct (n, threshold)."""
    lo, hi = cls.n_range
    ns = rng.integers(lo, hi + 1, size=cls.keys)
    if cls.thresholds == "normal":
        ts = normal_thresholds(cls.keys, mu=cls.mu, sigma=cls.sigma, seed=rng)
    elif cls.thresholds == "uniform":
        low = max(0.5, cls.mu - 2.0 * cls.sigma)
        high = min(0.995, cls.mu + 2.0 * cls.sigma)
        ts = uniform_thresholds(cls.keys, low=low, high=high, seed=rng)
    elif cls.thresholds == "heavy_tailed":
        ts = heavy_tailed_thresholds(cls.keys, mu=cls.mu, seed=rng)
    else:  # constant
        ts = [cls.mu] * cls.keys
    # Round so fingerprints are stable across platforms' float formatting.
    return [(int(n), round(float(t), 6)) for n, t in zip(ns, ts)]


def _zipf_probabilities(keys: int, exponent: float) -> np.ndarray:
    weights = 1.0 / np.arange(1, keys + 1, dtype=float) ** exponent
    return weights / weights.sum()


def _arrival_times(
    cls: TenantClass, rate: float, duration: float, rng: np.random.Generator
) -> List[float]:
    """Arrival instants of one class's on/off modulated Poisson process."""
    bursting = cls.burst_fraction > 0.0 and cls.burst_factor > 1.0
    mean_off = (
        cls.mean_burst_seconds * (1.0 / cls.burst_fraction - 1.0)
        if bursting else duration
    )
    times: List[float] = []
    t = 0.0
    in_burst = False
    while t < duration:
        if bursting:
            phase_mean = cls.mean_burst_seconds if in_burst else mean_off
            phase_end = min(duration, t + float(rng.exponential(phase_mean)))
            phase_rate = rate * (cls.burst_factor if in_burst else 1.0)
        else:
            phase_end = duration
            phase_rate = rate
        while True:
            t += float(rng.exponential(1.0 / phase_rate))
            if t >= phase_end:
                t = phase_end
                break
            times.append(t)
        in_burst = not in_burst
    return times


def generate_schedule(spec: WorkloadSpec) -> List[ScheduledRequest]:
    """Expand a workload spec into its deterministic request schedule.

    Every stochastic choice — arrival instants, burst phases, key popularity,
    tenant assignment, threshold draws — flows from ``spec.seed`` through
    per-class child generators, so the same spec always yields the same
    schedule (pinned by ``tests/loadgen/test_harness.py``).  The result is
    sorted by arrival time with a stable tiebreak.
    """
    bins = [list(triple) for triple in spec.bins]
    requests: List[ScheduledRequest] = []
    for index, cls in enumerate(spec.classes):
        rng = np.random.default_rng([spec.seed, index])
        keys = _class_keys(cls, rng)
        probabilities = _zipf_probabilities(cls.keys, cls.zipf_exponent)
        rate = cls.mean_rate(spec.arrival_model, spec.rate_scale)
        for sequence, at in enumerate(
            _arrival_times(cls, rate, spec.duration_seconds, rng)
        ):
            key = int(rng.choice(cls.keys, p=probabilities))
            n, threshold = keys[key]
            tenant = f"{cls.name}-{int(rng.integers(cls.tenants))}"
            deadline_ms: Optional[float] = None
            payload = {
                "kind": "solve_request",
                "version": 1,
                "request_id": f"{cls.name}-{sequence}",
                "tenant": tenant,
                "n": n,
                "threshold": threshold,
                "bins": bins,
            }
            if cls.deadline_range_ms is not None:
                lo_ms, hi_ms = cls.deadline_range_ms
                deadline_ms = round(float(rng.uniform(lo_ms, hi_ms)), 3)
                payload["deadline_ms"] = deadline_ms
            requests.append(ScheduledRequest(
                at=at,
                tenant_class=cls.name,
                tenant=tenant,
                key=key,
                payload=payload,
                deadline_ms=deadline_ms,
            ))
    requests.sort(key=lambda r: (r.at, r.tenant_class, r.payload["request_id"]))
    return requests
