"""The committed performance trajectory and its regression gate.

Per-PR ratio benchmarks (≥3x warm-vs-cold, ≥5x shared-menu) catch *relative*
regressions but let absolute performance drift: a PR that doubles both cold
and warm latency sails through every ratio gate.  The trajectory closes that
hole.  ``BENCH_trajectory.json`` is a committed, append-only list of
entries — one per PR — each recording the absolute throughput, p50/p99/p999
latency, and error/rejection budgets of the pinned ``ci-short`` profile
replayed against a live HTTP + 3-shard fleet
(``scripts/ci_perf_trajectory.py``).  CI replays the same profile and fails
when the fresh run regresses beyond a tolerance band against the last
committed entry.

Tolerances are deliberately wide (shared CI runners are noisy): the gate is
a tripwire for order-of-magnitude regressions — an accidentally quadratic
hot path, a lost cache tier — not a microbenchmark.  Every entry carries its
wall-clock timestamp and git SHA (:func:`git_sha`) so a regression can be
attributed to the PR that recorded it.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.errors import SladeError

#: The committed trajectory file, relative to the repository root.
TRAJECTORY_FILENAME = "BENCH_trajectory.json"

#: Default tolerance band for :func:`gate_entry` — wide on purpose.
DEFAULT_MIN_THROUGHPUT_RATIO = 0.4   #: fresh rps >= 40% of baseline rps
DEFAULT_MAX_LATENCY_RATIO = 3.0      #: fresh pXX <= 3x baseline pXX ...
DEFAULT_LATENCY_FLOOR_SECONDS = 0.25  #: ... or under this absolute floor
DEFAULT_MAX_ERROR_BUDGET = 0.01      #: fresh error budget <= 1% absolute


class TrajectoryError(SladeError):
    """A malformed trajectory file or entry."""


def utc_now_iso() -> str:
    """The wall-clock timestamp format every trajectory record uses."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The commit being measured: ``$GITHUB_SHA`` in CI, else ``git rev-parse``.

    Returns ``None`` outside a git checkout so callers can record
    ``"unknown"`` rather than fail — attribution is best effort.
    """
    env_sha = os.environ.get("GITHUB_SHA")
    if env_sha:
        return env_sha
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def _class_metrics(class_report: Dict[str, Any]) -> Dict[str, Any]:
    latency = class_report.get("latency_seconds", {})
    return {
        "throughput_rps": class_report.get("throughput_rps", 0.0),
        "p50": latency.get("p50", 0.0),
        "p99": latency.get("p99", 0.0),
        "p999": latency.get("p999", 0.0),
        "error_budget": class_report.get("error_budget", 0.0),
        "rejection_budget": class_report.get("rejection_budget", 0.0),
    }


def entry_from_report(
    report: Dict[str, Any],
    label: Optional[str] = None,
    recorded_at: Optional[str] = None,
    sha: Optional[str] = None,
    opq_core: Optional[str] = None,
) -> Dict[str, Any]:
    """Distil one ``loadtest_report`` document into a trajectory entry.

    ``label`` names the change being recorded (e.g. ``"PR 6"``);
    ``recorded_at``/``sha`` default to now and the current checkout.
    ``opq_core`` records which Algorithm 2 construction core served the
    run (defaults to what :func:`repro.algorithms.opq_vec.resolve_core`
    would pick here and now) — trajectory numbers from different cores are
    not comparable, and the gate script warns when they are mixed.
    """
    from repro.algorithms.opq_vec import resolve_core
    if report.get("kind") != "loadtest_report":
        raise TrajectoryError(
            f"expected a loadtest_report document; got kind={report.get('kind')!r}"
        )
    overall = report.get("overall", {})
    entry: Dict[str, Any] = {
        "kind": "perf_trajectory_entry",
        "version": 1,
        "recorded_at": recorded_at or utc_now_iso(),
        "git_sha": sha or git_sha() or "unknown",
        "label": label,
        "opq_core": opq_core or resolve_core(),
        "profile": report.get("profile"),
        "seed": report.get("seed"),
        "requests": report.get("scheduled", 0),
        "wall_seconds": report.get("wall_seconds", 0.0),
        "throughput_rps": overall.get("throughput_rps", 0.0),
        "latency_seconds": {
            "p50": overall.get("latency_seconds", {}).get("p50", 0.0),
            "p99": overall.get("latency_seconds", {}).get("p99", 0.0),
            "p999": overall.get("latency_seconds", {}).get("p999", 0.0),
            "max": overall.get("latency_seconds", {}).get("max", 0.0),
        },
        "error_budget": overall.get("error_budget", 0.0),
        "rejection_budget": overall.get("rejection_budget", 0.0),
        "warm_rate": overall.get("warm_rate", 0.0),
        "classes": {
            name: _class_metrics(class_report)
            for name, class_report in sorted(report.get("classes", {}).items())
        },
    }
    return entry


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read the committed trajectory (an empty list when the file is absent)."""
    path = Path(path)
    if not path.exists():
        return []
    try:
        entries = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise TrajectoryError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(entries, list):
        raise TrajectoryError(f"{path} must hold a JSON list of entries")
    return entries


def append_entry(path: Union[str, Path], entry: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Append one entry to the trajectory file; returns the new history."""
    entries = load_trajectory(path)
    entries.append(entry)
    Path(path).write_text(json.dumps(entries, indent=2) + "\n")
    return entries


def gate_entry(
    fresh: Dict[str, Any],
    baseline: Dict[str, Any],
    min_throughput_ratio: float = DEFAULT_MIN_THROUGHPUT_RATIO,
    max_latency_ratio: float = DEFAULT_MAX_LATENCY_RATIO,
    latency_floor_seconds: float = DEFAULT_LATENCY_FLOOR_SECONDS,
    max_error_budget: float = DEFAULT_MAX_ERROR_BUDGET,
) -> List[str]:
    """Compare a fresh entry to the committed baseline; return violations.

    An empty list means the gate passes.  Checks, in SLO order:

    * the error budget is absolute — it must stay under
      ``max_error_budget`` regardless of what the baseline tolerated;
    * overall throughput must reach ``min_throughput_ratio`` of baseline;
    * each overall latency quantile (p50/p99/p999) must stay under
      ``max_latency_ratio`` times its baseline, with an absolute floor of
      ``latency_floor_seconds`` so microsecond baselines cannot flake the
      gate on scheduler jitter.
    """
    violations: List[str] = []
    if fresh.get("profile") != baseline.get("profile"):
        violations.append(
            f"profile mismatch: fresh ran {fresh.get('profile')!r} but the "
            f"baseline recorded {baseline.get('profile')!r}"
        )
        return violations

    error_budget = fresh.get("error_budget", 0.0)
    if error_budget > max_error_budget:
        violations.append(
            f"error budget {error_budget:.2%} exceeds the "
            f"{max_error_budget:.2%} ceiling"
        )

    base_rps = baseline.get("throughput_rps", 0.0)
    fresh_rps = fresh.get("throughput_rps", 0.0)
    if base_rps > 0 and fresh_rps < base_rps * min_throughput_ratio:
        violations.append(
            f"throughput {fresh_rps:.1f} rps fell below "
            f"{min_throughput_ratio:.0%} of the baseline {base_rps:.1f} rps"
        )

    base_latency = baseline.get("latency_seconds", {})
    fresh_latency = fresh.get("latency_seconds", {})
    for quantile in ("p50", "p99", "p999"):
        allowed = max(
            base_latency.get(quantile, 0.0) * max_latency_ratio,
            latency_floor_seconds,
        )
        observed = fresh_latency.get(quantile, 0.0)
        if observed > allowed:
            violations.append(
                f"{quantile} {observed * 1000:.1f}ms exceeds the allowed "
                f"{allowed * 1000:.1f}ms (baseline "
                f"{base_latency.get(quantile, 0.0) * 1000:.1f}ms x "
                f"{max_latency_ratio:g}, floor "
                f"{latency_floor_seconds * 1000:.0f}ms)"
            )
    return violations
