"""The million-user load harness: workloads, open-loop replay, trajectory.

This package sits beside the service layer and drives it from the outside,
the way production traffic would (see ``DESIGN.md``):

* :mod:`repro.loadgen.workload` — seeded tenant mixes: bursty reward-elastic
  arrivals, heterogeneous threshold distributions, Zipfian hot-key skew,
  expanded into a deterministic open-loop request schedule.
* :mod:`repro.loadgen.histogram` — HDR-style log-bucketed latency
  histograms (p50/p99/p999 within one bucket of exact).
* :mod:`repro.loadgen.runner` — the open-loop asyncio runner: N persistent
  connections, latency measured from scheduled arrival so coordinated
  omission cannot hide queueing delay, per-tenant-class error and rejection
  budgets, cache warm-rate over time.
* :mod:`repro.loadgen.profiles` — pinned named workloads (``ci-short`` is
  the CI trajectory profile).
* :mod:`repro.loadgen.trajectory` — the committed ``BENCH_trajectory.json``
  history and the absolute-regression gate CI runs.

Typical use (the ``repro loadtest`` CLI wraps exactly this)::

    import asyncio
    from repro.loadgen import build_profile, generate_schedule, run_load_test

    spec = build_profile("ci-short")
    schedule = generate_schedule(spec)
    report = asyncio.run(run_load_test(
        schedule, "http://127.0.0.1:8080", profile="ci-short", seed=spec.seed,
    ))
    print(report.format_table())
"""

from repro.loadgen.histogram import LATENCY_BUCKETS, LatencyHistogram
from repro.loadgen.profiles import PROFILES, build_profile, ci_short_profile
from repro.loadgen.runner import ClassStats, LoadReport, run_load_test
from repro.loadgen.trajectory import (
    TRAJECTORY_FILENAME,
    append_entry,
    entry_from_report,
    gate_entry,
    git_sha,
    load_trajectory,
)
from repro.loadgen.workload import (
    DEFAULT_BINS,
    ScheduledRequest,
    TenantClass,
    WorkloadError,
    WorkloadSpec,
    generate_schedule,
)

__all__ = [
    "DEFAULT_BINS",
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "ClassStats",
    "LoadReport",
    "PROFILES",
    "ScheduledRequest",
    "TRAJECTORY_FILENAME",
    "TenantClass",
    "WorkloadError",
    "WorkloadSpec",
    "append_entry",
    "build_profile",
    "ci_short_profile",
    "entry_from_report",
    "gate_entry",
    "generate_schedule",
    "git_sha",
    "load_trajectory",
    "run_load_test",
]
