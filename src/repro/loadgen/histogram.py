"""HDR-style log-bucketed latency histograms for the load harness.

Built on the same bucket machinery the telemetry registry uses
(:class:`repro.engine.telemetry.SeriesStats`), with geometrically spaced
boundaries so the histogram keeps constant *relative* resolution from
sub-millisecond cache hits out to multi-second saturation tails.  A mean
hides the tail; :meth:`LatencyHistogram.percentile` reads p50/p99/p999
straight from the bucket counts with a guaranteed error of at most one
bucket (the true quantile lies in ``(previous bound, reported value]`` —
pinned by the hypothesis property tests).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.engine.telemetry import SeriesStats, log_bucket_bounds

#: Default latency boundaries: 200 µs to ~2 minutes at √2 spacing (~41
#: buckets, ≤ 41% relative error per reading), which spans an in-process
#: cache hit through a fully saturated open-loop queue.
LATENCY_BUCKETS: Tuple[float, ...] = log_bucket_bounds(0.0002, 120.0, factor=2 ** 0.5)

#: The percentiles every report records, with their JSON labels.
REPORT_PERCENTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p99", 0.99), ("p999", 0.999),
)


class LatencyHistogram:
    """Log-bucketed latency recorder with percentile reads.

    A thin, single-threaded wrapper over :class:`SeriesStats` — the load
    runner records from one event loop, so no lock is needed.
    """

    def __init__(self, bounds: Tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self._series = SeriesStats(bucket_bounds=tuple(bounds))

    def record(self, seconds: float) -> None:
        """Record one latency observation (seconds)."""
        self._series.observe(seconds)

    @property
    def count(self) -> int:
        return self._series.count

    @property
    def mean(self) -> float:
        return self._series.mean

    @property
    def maximum(self) -> float:
        return self._series.maximum

    def percentile(self, q: float) -> Optional[float]:
        """Upper-bound estimate of the ``q``-quantile (``None`` when empty)."""
        return self._series.percentile(q)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's counts into this one (same bounds only)."""
        theirs = other._series
        if theirs.count == 0:
            return
        mine = self._series
        if mine.bucket_bounds != theirs.bucket_bounds:
            raise ValueError("cannot merge histograms with different bounds")
        assert mine.bucket_counts is not None and theirs.bucket_counts is not None
        if mine.count == 0:
            mine.minimum, mine.maximum = theirs.minimum, theirs.maximum
        else:
            mine.minimum = min(mine.minimum, theirs.minimum)
            mine.maximum = max(mine.maximum, theirs.maximum)
        mine.count += theirs.count
        mine.total += theirs.total
        mine.last = theirs.last
        for index, bucket in enumerate(theirs.bucket_counts):
            mine.bucket_counts[index] += bucket

    def summary(self) -> Dict[str, float]:
        """The report-ready view: count, mean, max, and the headline quantiles."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "max": self.maximum,
        }
        for label, q in REPORT_PERCENTILES:
            value = self.percentile(q)
            out[label] = value if value is not None else 0.0
        return out
