"""Packaging for the SLADE reproduction (conf_icde_Tong0ZJSL19)."""

import re
from pathlib import Path

from setuptools import find_packages, setup


def _read_version() -> str:
    """Read ``__version__`` from the package without importing it."""
    init_path = Path(__file__).parent / "src" / "repro" / "__init__.py"
    match = re.search(
        r'^__version__\s*=\s*"([^"]+)"', init_path.read_text(), re.MULTILINE
    )
    if match is None:
        raise RuntimeError("cannot find __version__ in src/repro/__init__.py")
    return match.group(1)


setup(
    name="slade-repro",
    version=_read_version(),
    description=(
        "Reproduction of SLADE: a smart large-scale task decomposer for "
        "crowdsourcing (Tong et al., ICDE 2019)"
    ),
    author="slade-repro contributors",
    python_requires=">=3.8",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            # Historical name used throughout the docs, plus the package name.
            "slade=repro.cli:main",
            "repro=repro.cli:main",
        ]
    },
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
)
