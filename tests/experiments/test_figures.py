"""Tests for the figure registry (paper artefact -> runnable experiment)."""

import pytest

from repro.experiments.config import ExperimentConfig, SweepResult
from repro.experiments.figures import FIGURES, figure_ids, run_figure
from repro.experiments.motivation import MotivationSeries

TINY = ExperimentConfig(
    n=120,
    solver_options={"baseline": {"chunk_size": 40, "seed": 0}},
)


class TestFigureRegistry:
    def test_every_paper_panel_is_registered(self):
        expected = {
            "fig3a", "fig3b", "fig3c",
            "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
            "fig6g", "fig6h", "fig6i", "fig6j", "fig6k", "fig6l",
            "fig7a", "fig7b", "fig7c", "fig7d",
            "fig8a", "fig8b",
        }
        assert expected == set(FIGURES)

    def test_figure_ids_sorted(self):
        assert figure_ids() == sorted(FIGURES)

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            run_figure("fig99")

    def test_every_spec_has_description_and_metric(self):
        for spec in FIGURES.values():
            assert spec.description
            assert spec.metric in {"total_cost", "elapsed_seconds", "confidence"}


class TestRunFigure:
    def test_sweep_figure_returns_sweep_result(self):
        result = run_figure("fig6a", config=TINY, thresholds=(0.9, 0.95))
        assert isinstance(result, SweepResult)
        assert set(result.x_values) == {0.9, 0.95}

    def test_dataset_is_forced_to_match_figure(self):
        # fig6b is the SMIC panel even though TINY says jelly.
        result = run_figure("fig6b", config=TINY, thresholds=(0.9,))
        assert result.name.startswith("smic")

    def test_case_insensitive_lookup(self):
        result = run_figure("FIG6E", config=TINY, cardinalities=(2, 6))
        assert isinstance(result, SweepResult)

    def test_motivation_figure_returns_series(self):
        result = run_figure(
            "fig3a", cardinalities=(2, 8), probes_per_cardinality=1, seed=2
        )
        assert isinstance(result, MotivationSeries)

    def test_difficulty_figure_returns_mapping(self):
        result = run_figure(
            "fig3c", difficulties=(1, 2), cardinalities=(4,), seed=2
        )
        assert set(result) == {1, 2}

    def test_hetero_figure(self):
        result = run_figure("fig7a", config=TINY, sigmas=(0.02,))
        assert isinstance(result, SweepResult)
        assert set(result.solvers) == {"greedy", "opq-extended", "baseline"}
