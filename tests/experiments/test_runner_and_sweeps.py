"""Tests for the experiment runner and the parameter sweeps (CI-sized)."""

import pytest

from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_solvers
from repro.experiments.sweeps import (
    sweep_hetero_mu,
    sweep_hetero_scale,
    sweep_hetero_sigma,
    sweep_max_cardinality,
    sweep_scale,
    sweep_threshold,
)

#: A deliberately small configuration so the whole module runs in seconds.
SMALL = ExperimentConfig(
    dataset="jelly",
    n=200,
    solver_options={"baseline": {"chunk_size": 64, "seed": 0}},
)


class TestRunSolvers:
    def test_rows_per_solver(self):
        problem = SladeProblem.homogeneous(30, 0.9, jelly_bin_set(8))
        rows = run_solvers(problem, ["greedy", "opq"], x=0.9)
        assert [row.solver for row in rows] == ["greedy", "opq"]
        assert all(row.feasible for row in rows)
        assert all(row.n == 30 for row in rows)

    def test_solver_options_forwarded(self):
        problem = SladeProblem.homogeneous(30, 0.9, jelly_bin_set(8))
        rows = run_solvers(
            problem, ["baseline"], x=1,
            solver_options={"baseline": {"chunk_size": 10, "seed": 1}},
        )
        assert rows[0].feasible

    def test_unknown_solver_raises(self):
        problem = SladeProblem.homogeneous(5, 0.9, jelly_bin_set(4))
        with pytest.raises(KeyError):
            run_solvers(problem, ["nope"], x=0)


class TestHomogeneousSweeps:
    def test_threshold_sweep_structure(self):
        result = sweep_threshold(SMALL, thresholds=(0.87, 0.95))
        assert result.x_values == [0.87, 0.95]
        assert set(result.solvers) == {"greedy", "opq", "baseline"}
        assert all(row.feasible for row in result.rows)

    def test_cost_weakly_increases_with_threshold(self):
        result = sweep_threshold(SMALL, thresholds=(0.87, 0.97))
        for solver in ("greedy", "opq"):
            series = dict(result.series(solver))
            assert series[0.97] >= series[0.87] - 1e-9

    def test_cardinality_sweep_cost_decreases(self):
        result = sweep_max_cardinality(SMALL, cardinalities=(1, 5, 15))
        for solver in ("greedy", "opq"):
            series = dict(result.series(solver))
            assert series[15] <= series[1] + 1e-9

    def test_scale_sweep_cost_grows_linearly(self):
        result = sweep_scale(SMALL, n_values=(100, 400))
        for solver in ("greedy", "opq"):
            series = dict(result.series(solver))
            ratio = series[400] / series[100]
            assert 3.0 <= ratio <= 5.0

    def test_opq_not_worse_than_greedy_or_baseline(self):
        result = sweep_threshold(SMALL, thresholds=(0.9,))
        costs = {row.solver: row.total_cost for row in result.rows}
        assert costs["opq"] <= costs["greedy"] + 1e-9
        assert costs["opq"] <= costs["baseline"] + 1e-9


class TestHeterogeneousSweeps:
    def test_sigma_sweep_runs_all_solvers(self):
        result = sweep_hetero_sigma(SMALL, sigmas=(0.01, 0.05))
        assert set(result.solvers) == {"greedy", "opq-extended", "baseline"}
        assert all(row.feasible for row in result.rows)

    def test_mu_sweep_cost_increases_with_mu(self):
        result = sweep_hetero_mu(SMALL, mus=(0.87, 0.97))
        for solver in ("greedy", "opq-extended"):
            series = dict(result.series(solver))
            assert series[0.97] >= series[0.87] - 1e-9

    def test_hetero_scale_sweep(self):
        result = sweep_hetero_scale(SMALL, n_values=(100, 300))
        for solver in ("greedy", "opq-extended"):
            series = dict(result.series(solver))
            assert series[300] > series[100]

    def test_unknown_dataset_rejected(self):
        config = ExperimentConfig(dataset="imagenet", n=10)
        with pytest.raises(ValueError):
            sweep_threshold(config, thresholds=(0.9,))
