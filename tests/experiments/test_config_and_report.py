"""Tests for experiment configuration containers and text reporting."""

from repro.experiments.config import ExperimentConfig, SweepResult, SweepRow
from repro.experiments.report import format_series, format_sweep_table, summarize_winners


def _sample_sweep() -> SweepResult:
    result = SweepResult(name="unit", x_label="t")
    for x, solver, cost, seconds in [
        (0.9, "greedy", 10.0, 0.5),
        (0.9, "opq", 8.0, 0.1),
        (0.95, "greedy", 12.0, 0.6),
        (0.95, "opq", 9.0, 0.1),
    ]:
        result.add(SweepRow(x=x, solver=solver, total_cost=cost,
                            elapsed_seconds=seconds, feasible=True, n=100))
    return result


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.n == 10_000
        assert config.max_cardinality == 20
        assert config.threshold == 0.9
        assert config.mu == 0.9
        assert config.sigma == 0.03

    def test_scaled_changes_only_n(self):
        config = ExperimentConfig(dataset="smic", threshold=0.95)
        scaled = config.scaled(500)
        assert scaled.n == 500
        assert scaled.dataset == "smic"
        assert scaled.threshold == 0.95


class TestSweepResult:
    def test_solvers_and_x_values_in_order(self):
        result = _sample_sweep()
        assert result.solvers == ["greedy", "opq"]
        assert result.x_values == [0.9, 0.95]

    def test_series_extraction(self):
        result = _sample_sweep()
        assert result.series("opq") == [(0.9, 8.0), (0.95, 9.0)]
        assert result.series("greedy", metric="elapsed_seconds") == [(0.9, 0.5), (0.95, 0.6)]

    def test_as_records_round_trip(self):
        records = _sample_sweep().as_records()
        assert len(records) == 4
        assert records[0]["solver"] == "greedy"
        assert records[0]["t"] == 0.9


class TestReportFormatting:
    def test_sweep_table_contains_all_solvers(self):
        text = format_sweep_table(_sample_sweep())
        assert "greedy" in text and "opq" in text
        assert "0.9000" in text

    def test_sweep_table_time_metric(self):
        text = format_sweep_table(_sample_sweep(), metric="elapsed_seconds")
        assert "elapsed_seconds" in text

    def test_format_series(self):
        text = format_series({0.05: {2: 0.98, 4: 0.95}, 0.1: {2: 0.99}})
        assert "cost=0.05" in text
        assert "0.9800" in text

    def test_summarize_winners(self):
        winners = summarize_winners(_sample_sweep())
        assert winners == {0.9: "opq", 0.95: "opq"}
