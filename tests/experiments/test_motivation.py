"""Tests for the Figure 3 motivation experiment harness."""

import pytest

from repro.experiments.motivation import (
    MotivationSeries,
    difficulty_series,
    motivation_series,
)


@pytest.fixture(scope="module")
def jelly_series() -> MotivationSeries:
    # Small probe budget keeps the module fast while preserving the trends.
    return motivation_series(
        dataset="jelly",
        cardinalities=(2, 6, 10, 18, 26),
        probes_per_cardinality=2,
        seed=5,
    )


class TestMotivationSeries:
    def test_series_cover_every_price(self, jelly_series):
        assert set(jelly_series.confidence) == {0.05, 0.08, 0.10}

    def test_confidence_declines_with_cardinality(self, jelly_series):
        # Compare the smallest and largest probed cardinality at the top price.
        series = jelly_series.confidence[0.10]
        assert series[26] < series[2]

    def test_confidence_values_are_probabilities(self, jelly_series):
        for curve in jelly_series.confidence.values():
            assert all(0.0 <= value <= 1.0 for value in curve.values())

    def test_cheap_bins_time_out_before_expensive_ones(self, jelly_series):
        assert jelly_series.usable_range(0.05) <= jelly_series.usable_range(0.10)

    def test_confidence_drop_is_moderate_compared_to_cost_drop(self, jelly_series):
        # The motivating observation: confidence falls by far less than the
        # per-task cost (which drops by the cardinality factor).
        high, low = jelly_series.confidence_drop(0.10)
        assert high - low < 0.35
        assert high > low

    def test_probe_spend_recorded(self, jelly_series):
        assert jelly_series.probe_spend > 0.0

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            motivation_series(dataset="other")


class TestSmicSeries:
    def test_smic_confidence_lower_than_jelly(self, jelly_series):
        smic = motivation_series(
            dataset="smic",
            cardinalities=(2, 10),
            probes_per_cardinality=2,
            seed=5,
        )
        assert smic.confidence[0.10][2] < jelly_series.confidence[0.10][2]

    def test_smic_uses_its_own_price_grid(self):
        smic = motivation_series(
            dataset="smic", cardinalities=(2,), probes_per_cardinality=1, seed=1
        )
        assert set(smic.confidence) == {0.05, 0.10, 0.20}


class TestDifficultySeries:
    def test_harder_difficulty_has_lower_confidence(self):
        curves = difficulty_series(
            difficulties=(1, 3), cardinalities=(5, 15), cost=0.10, seed=4
        )
        assert curves[3][15] < curves[1][15]
