"""Tests for JSON serialisation of bin sets, problems, plans, and the
service-layer request/response shapes."""

import json

import pytest

from repro.algorithms.opq import OPQSolver
from repro.core.errors import InvalidBinError
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.workloads import make_workload
from repro.engine import BatchPlanner, BatchSpec
from repro.io.serialization import (
    SerializationError,
    bin_set_from_dict,
    bin_set_to_dict,
    load_bin_set,
    load_plan,
    load_problem,
    plan_from_dict,
    plan_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_bin_set,
    save_plan,
    save_problem,
    solve_request_from_dict,
    solve_request_to_dict,
    solve_response_from_dict,
    solve_response_to_dict,
)
from repro.service import SladeService, SolveRequest


class TestBinSetSerialization:
    def test_round_trip_preserves_bins(self, table1_bins):
        restored = bin_set_from_dict(bin_set_to_dict(table1_bins))
        assert restored.cardinalities == table1_bins.cardinalities
        for cardinality in table1_bins.cardinalities:
            assert restored[cardinality].confidence == table1_bins[cardinality].confidence
            assert restored[cardinality].cost == table1_bins[cardinality].cost

    def test_file_round_trip(self, table1_bins, tmp_path):
        path = tmp_path / "bins.json"
        save_bin_set(table1_bins, path)
        assert load_bin_set(path).name == table1_bins.name

    def test_wrong_kind_rejected(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["kind"] = "something-else"
        with pytest.raises(SerializationError):
            bin_set_from_dict(payload)

    def test_wrong_version_rejected(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["version"] = 99
        with pytest.raises(SerializationError):
            bin_set_from_dict(payload)

    def test_invalid_bin_values_rejected_by_model(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["bins"][0]["confidence"] = 1.5
        with pytest.raises((InvalidBinError, ValueError)):
            bin_set_from_dict(payload)

    def test_epoch_round_trips(self, table1_bins):
        bumped = table1_bins.with_epoch(3)
        restored = bin_set_from_dict(bin_set_to_dict(bumped))
        assert restored.calibration_epoch == 3
        assert restored.fingerprint == bumped.fingerprint

    def test_epoch_zero_payload_is_unchanged(self, table1_bins):
        # Pre-epoch readers must keep accepting our files and vice versa,
        # so epoch 0 (the only epoch that existed before) is omitted.
        payload = bin_set_to_dict(table1_bins)
        assert "calibration_epoch" not in payload
        assert bin_set_from_dict(payload).calibration_epoch == 0


class TestProblemSerialization:
    def test_round_trip_preserves_thresholds_and_payloads(self, tmp_path):
        task = make_workload(20, threshold=0.92, positive_rate=0.3, seed=0)
        problem = SladeProblem(task, jelly_bin_set(5), name="io-test")
        path = tmp_path / "problem.json"
        save_problem(problem, path)
        restored = load_problem(path)
        assert restored.name == "io-test"
        assert restored.n == 20
        assert restored.task.thresholds == problem.task.thresholds
        assert [a.payload["truth"] for a in restored.task] == [
            a.payload["truth"] for a in problem.task
        ]

    def test_dict_round_trip_heterogeneous(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.9], table1_bins)
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.task.thresholds == [0.5, 0.9]

    def test_payload_is_json_compatible(self, table1_bins):
        problem = SladeProblem.homogeneous(2, 0.9, table1_bins)
        json.dumps(problem_to_dict(problem))  # must not raise


class TestPlanSerialization:
    def test_round_trip_preserves_cost_and_reliability(self, example4_problem, tmp_path):
        plan = OPQSolver().solve(example4_problem).plan
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.total_cost == pytest.approx(plan.total_cost)
        assert restored.reliabilities() == pytest.approx(plan.reliabilities())
        assert restored.is_feasible(example4_problem.task)
        assert restored.solver == plan.solver

    def test_tampered_total_cost_rejected(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        payload = plan_to_dict(plan)
        payload["total_cost"] = 0.01
        with pytest.raises(SerializationError):
            plan_from_dict(payload)

    def test_plan_file_is_self_contained(self, example4_problem, tmp_path):
        plan = OPQSolver().solve(example4_problem).plan
        payload = plan_to_dict(plan)
        # No reference to the original bin set object: bins are inlined.
        assert all("cardinality" in entry for entry in payload["assignments"])

    def test_non_mapping_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict(["not", "a", "mapping"])


class TestSolveRequestSerialization:
    def test_round_trip_preserves_everything(self, example4_problem):
        request = SolveRequest(
            problem=example4_problem,
            solver="opq",
            options={"verify": True},
            verify=False,
            request_id="abc",
        )
        payload = json.loads(json.dumps(solve_request_to_dict(request)))
        restored = solve_request_from_dict(payload)
        assert restored.request_id == "abc"
        assert restored.solver == "opq"
        assert restored.verify is False
        assert dict(restored.options) == {"verify": True}
        assert restored.problem.fingerprint == example4_problem.fingerprint

    def test_default_request_id_applied_when_missing(self, example4_problem):
        payload = solve_request_to_dict(SolveRequest(problem=example4_problem))
        restored = solve_request_from_dict(payload, default_request_id="line-7")
        assert restored.request_id == "line-7"

    def test_inline_homogeneous_form(self):
        payload = {
            "kind": "solve_request",
            "version": 1,
            "n": 10,
            "threshold": 0.9,
            "bins": [[1, 0.9, 0.10], [2, 0.85, 0.18]],
        }
        request = solve_request_from_dict(payload)
        assert request.problem.n == 10
        assert request.problem.homogeneous_threshold == 0.9

    def test_inline_heterogeneous_form(self, table1_bins):
        payload = {
            "kind": "solve_request",
            "version": 1,
            "thresholds": [0.5, 0.9],
            "bins": bin_set_to_dict(table1_bins),
        }
        request = solve_request_from_dict(payload)
        assert request.problem.task.thresholds == [0.5, 0.9]

    def test_missing_problem_rejected(self):
        with pytest.raises(SerializationError):
            solve_request_from_dict({"kind": "solve_request", "version": 1})

    def test_inline_without_threshold_rejected(self):
        with pytest.raises(SerializationError):
            solve_request_from_dict(
                {
                    "kind": "solve_request",
                    "version": 1,
                    "bins": [[1, 0.9, 0.10]],
                    "n": 5,
                }
            )


class TestSolveResponseSerialization:
    def test_success_round_trip(self, example4_problem):
        response = SladeService().solve(
            SolveRequest(problem=example4_problem, request_id="ok-1")
        )
        payload = json.loads(json.dumps(solve_response_to_dict(response)))
        restored = solve_response_from_dict(payload)
        assert restored.ok
        assert restored.request_id == "ok-1"
        assert restored.solver == response.solver
        assert restored.cache == response.cache
        assert restored.total_cost == pytest.approx(response.total_cost)
        assert restored.plan.total_cost == pytest.approx(response.plan.total_cost)
        assert restored.problem_fingerprint == response.problem_fingerprint

    def test_failure_round_trip_carries_envelope(self, example4_problem):
        response = SladeService().solve(
            SolveRequest(problem=example4_problem, solver="magic", request_id="bad-1")
        )
        restored = solve_response_from_dict(
            json.loads(json.dumps(solve_response_to_dict(response)))
        )
        assert not restored.ok
        assert restored.plan is None
        assert restored.error.type == "RequestValidationError"
        assert "magic" in restored.error.message

    def test_plan_can_be_omitted(self, example4_problem):
        response = SladeService().solve(SolveRequest(problem=example4_problem))
        payload = solve_response_to_dict(response, include_plan=False)
        assert payload["plan"] is None
        restored = solve_response_from_dict(payload)
        assert restored.plan is None
        assert restored.total_cost == pytest.approx(response.total_cost)


class TestBatchResultAsDict:
    def test_summary_is_json_compatible(self, table1_bins):
        spec = BatchSpec(bins=table1_bins, n_values=(4, 8), thresholds=(0.95,))
        batch = BatchPlanner().solve_many(spec, solver="opq")
        payload = batch.as_dict()
        json.dumps(payload)  # must not raise
        assert payload["stats"]["instances"] == 2
        assert [item["n"] for item in payload["items"]] == [4, 8]
        assert all("plan" not in item for item in payload["items"])

    def test_plans_inlined_on_request(self, table1_bins):
        spec = BatchSpec(bins=table1_bins, n_values=(4,), thresholds=(0.95,))
        batch = BatchPlanner().solve_many(spec, solver="opq")
        payload = batch.as_dict(include_plans=True)
        plan = plan_from_dict(payload["items"][0]["plan"])
        assert plan.total_cost == pytest.approx(batch.results[0].total_cost)
