"""Tests for JSON serialisation of bin sets, problems and plans."""

import json

import pytest

from repro.algorithms.opq import OPQSolver
from repro.core.errors import InvalidBinError
from repro.core.problem import SladeProblem
from repro.datasets.jelly import jelly_bin_set
from repro.datasets.workloads import make_workload
from repro.io.serialization import (
    SerializationError,
    bin_set_from_dict,
    bin_set_to_dict,
    load_bin_set,
    load_plan,
    load_problem,
    plan_from_dict,
    plan_to_dict,
    problem_from_dict,
    problem_to_dict,
    save_bin_set,
    save_plan,
    save_problem,
)


class TestBinSetSerialization:
    def test_round_trip_preserves_bins(self, table1_bins):
        restored = bin_set_from_dict(bin_set_to_dict(table1_bins))
        assert restored.cardinalities == table1_bins.cardinalities
        for cardinality in table1_bins.cardinalities:
            assert restored[cardinality].confidence == table1_bins[cardinality].confidence
            assert restored[cardinality].cost == table1_bins[cardinality].cost

    def test_file_round_trip(self, table1_bins, tmp_path):
        path = tmp_path / "bins.json"
        save_bin_set(table1_bins, path)
        assert load_bin_set(path).name == table1_bins.name

    def test_wrong_kind_rejected(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["kind"] = "something-else"
        with pytest.raises(SerializationError):
            bin_set_from_dict(payload)

    def test_wrong_version_rejected(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["version"] = 99
        with pytest.raises(SerializationError):
            bin_set_from_dict(payload)

    def test_invalid_bin_values_rejected_by_model(self, table1_bins):
        payload = bin_set_to_dict(table1_bins)
        payload["bins"][0]["confidence"] = 1.5
        with pytest.raises((InvalidBinError, ValueError)):
            bin_set_from_dict(payload)


class TestProblemSerialization:
    def test_round_trip_preserves_thresholds_and_payloads(self, tmp_path):
        task = make_workload(20, threshold=0.92, positive_rate=0.3, seed=0)
        problem = SladeProblem(task, jelly_bin_set(5), name="io-test")
        path = tmp_path / "problem.json"
        save_problem(problem, path)
        restored = load_problem(path)
        assert restored.name == "io-test"
        assert restored.n == 20
        assert restored.task.thresholds == problem.task.thresholds
        assert [a.payload["truth"] for a in restored.task] == [
            a.payload["truth"] for a in problem.task
        ]

    def test_dict_round_trip_heterogeneous(self, table1_bins):
        problem = SladeProblem.heterogeneous([0.5, 0.9], table1_bins)
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.task.thresholds == [0.5, 0.9]

    def test_payload_is_json_compatible(self, table1_bins):
        problem = SladeProblem.homogeneous(2, 0.9, table1_bins)
        json.dumps(problem_to_dict(problem))  # must not raise


class TestPlanSerialization:
    def test_round_trip_preserves_cost_and_reliability(self, example4_problem, tmp_path):
        plan = OPQSolver().solve(example4_problem).plan
        path = tmp_path / "plan.json"
        save_plan(plan, path)
        restored = load_plan(path)
        assert restored.total_cost == pytest.approx(plan.total_cost)
        assert restored.reliabilities() == pytest.approx(plan.reliabilities())
        assert restored.is_feasible(example4_problem.task)
        assert restored.solver == plan.solver

    def test_tampered_total_cost_rejected(self, example4_problem):
        plan = OPQSolver().solve(example4_problem).plan
        payload = plan_to_dict(plan)
        payload["total_cost"] = 0.01
        with pytest.raises(SerializationError):
            plan_from_dict(payload)

    def test_plan_file_is_self_contained(self, example4_problem, tmp_path):
        plan = OPQSolver().solve(example4_problem).plan
        payload = plan_to_dict(plan)
        # No reference to the original bin set object: bins are inlined.
        assert all("cardinality" in entry for entry in payload["assignments"])

    def test_non_mapping_rejected(self):
        with pytest.raises(SerializationError):
            plan_from_dict(["not", "a", "mapping"])
