"""Tests for the package-level public API surface."""

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_quickstart_from_module_docstring(self):
        # The docstring example must keep working verbatim.
        bins = repro.TaskBinSet.from_triples(
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]
        )
        problem = repro.SladeProblem.homogeneous(n=4, threshold=0.95, bins=bins)
        result = repro.OPQSolver().solve(problem)
        assert round(result.total_cost, 2) == 0.68

    def test_solver_registry_exposed(self):
        assert "opq" in repro.available_solvers()
        solver = repro.create_solver("greedy")
        assert isinstance(solver, repro.GreedySolver)

    def test_exception_hierarchy(self):
        assert issubclass(repro.InvalidBinError, repro.SladeError)
        assert issubclass(repro.InvalidProblemError, repro.SladeError)
        assert issubclass(repro.InfeasiblePlanError, repro.SladeError)


class TestEngineApi:
    """The batch planning engine is part of the public surface."""

    def test_engine_classes_reexported_at_top_level(self):
        import repro.engine as engine

        for name in ("PlanCache", "BatchPlanner", "BatchResult", "BatchSpec",
                     "BatchStats", "CacheStats"):
            assert name in repro.__all__, f"{name} missing from repro.__all__"
            assert getattr(repro, name) is getattr(engine, name)

    def test_engine_all_is_covered(self):
        import repro.engine as engine

        for name in engine.__all__:
            assert hasattr(engine, name)
            # Every class export is reachable from the package root too; the
            # key helpers stay namespaced under repro.engine.
            if isinstance(getattr(engine, name), type):
                assert hasattr(repro, name), (
                    f"engine class {name} not re-exported from repro"
                )

    def test_engine_quickstart(self):
        bins = repro.TaskBinSet.from_triples(
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]
        )
        spec = repro.BatchSpec(bins=bins, n_values=(4, 8), thresholds=(0.95,))
        batch = repro.BatchPlanner().solve_many(spec, solver="opq")
        assert len(batch) == 2
        assert batch.all_feasible
        assert batch.stats.cache_hits == 1
        assert round(batch.results[0].total_cost, 2) == 0.68
