"""Tests for the package-level public API surface."""

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    def test_quickstart_from_module_docstring(self):
        # The docstring example must keep working verbatim.
        bins = repro.TaskBinSet.from_triples(
            [(1, 0.9, 0.10), (2, 0.85, 0.18), (3, 0.8, 0.24)]
        )
        problem = repro.SladeProblem.homogeneous(n=4, threshold=0.95, bins=bins)
        result = repro.OPQSolver().solve(problem)
        assert round(result.total_cost, 2) == 0.68

    def test_solver_registry_exposed(self):
        assert "opq" in repro.available_solvers()
        solver = repro.create_solver("greedy")
        assert isinstance(solver, repro.GreedySolver)

    def test_exception_hierarchy(self):
        assert issubclass(repro.InvalidBinError, repro.SladeError)
        assert issubclass(repro.InvalidProblemError, repro.SladeError)
        assert issubclass(repro.InfeasiblePlanError, repro.SladeError)
