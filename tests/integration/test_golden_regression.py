"""Golden regression tests: pin the paper-trend metrics to committed JSON.

``tests/integration/test_paper_trends.py`` asserts the *shape* of the
evaluation (monotonicity, solver ordering).  These tests pin the *numbers*:
every scenario's per-(x, solver) total cost is compared against a committed
golden file with a small relative tolerance, so a performance refactor (like
the batch planning engine) cannot silently change results.

All scenario inputs are deterministic — seeded threshold generators, seeded
baseline randomisation — so the goldens are exact up to floating-point noise.

Regenerating after an *intentional* behaviour change::

    SLADE_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_golden_regression.py -q

then commit the updated ``tests/golden/paper_trends_golden.json`` together
with an explanation of why the numbers moved.
"""

import json
import math
import os
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import (
    sweep_hetero_mu,
    sweep_max_cardinality,
    sweep_scale,
    sweep_threshold,
)

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "golden" / "paper_trends_golden.json"

#: Maximum relative drift tolerated before a golden comparison fails.
RELATIVE_TOLERANCE = 1e-6

CONFIG = ExperimentConfig(
    dataset="jelly",
    n=400,
    solver_options={"baseline": {"chunk_size": 100, "seed": 0}},
)
SMIC_CONFIG = ExperimentConfig(
    dataset="smic",
    n=400,
    solver_options={"baseline": {"chunk_size": 100, "seed": 0}},
)

#: Scenario name -> zero-argument callable producing a SweepResult.  These
#: mirror the instances test_paper_trends.py asserts trends on.
SCENARIOS = {
    "jelly-threshold": lambda: sweep_threshold(CONFIG, thresholds=(0.87, 0.92, 0.97)),
    "smic-threshold": lambda: sweep_threshold(SMIC_CONFIG, thresholds=(0.87, 0.97)),
    "jelly-max-cardinality": lambda: sweep_max_cardinality(
        CONFIG, cardinalities=(2, 8, 20)
    ),
    "jelly-scale": lambda: sweep_scale(CONFIG, n_values=(200, 800)),
    "jelly-hetero-mu": lambda: sweep_hetero_mu(CONFIG, mus=(0.87, 0.97)),
}


def snapshot(scenario_name: str) -> dict:
    """Compute the golden payload of one scenario from a fresh sweep."""
    result = SCENARIOS[scenario_name]()
    return {
        "x_label": result.x_label,
        "rows": [
            {
                "x": row.x,
                "solver": row.solver,
                "total_cost": row.total_cost,
                "feasible": row.feasible,
                "n": row.n,
                "assignments": row.extra["assignments"],
            }
            for row in result.rows
        ],
    }


def regenerate() -> dict:
    payload = {
        "format": 1,
        "relative_tolerance": RELATIVE_TOLERANCE,
        "scenarios": {name: snapshot(name) for name in SCENARIOS},
    }
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


@pytest.fixture(scope="module")
def goldens() -> dict:
    if os.environ.get("SLADE_REGEN_GOLDENS") == "1":
        return regenerate()
    if not GOLDEN_PATH.exists():
        pytest.fail(
            f"golden file {GOLDEN_PATH} is missing; regenerate it with "
            "SLADE_REGEN_GOLDENS=1"
        )
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("scenario_name", sorted(SCENARIOS))
def test_scenario_matches_golden(scenario_name, goldens):
    golden = goldens["scenarios"][scenario_name]
    tolerance = goldens.get("relative_tolerance", RELATIVE_TOLERANCE)
    current = snapshot(scenario_name)

    assert current["x_label"] == golden["x_label"]
    assert len(current["rows"]) == len(golden["rows"]), (
        f"{scenario_name}: row count changed "
        f"({len(golden['rows'])} -> {len(current['rows'])})"
    )
    for got, expected in zip(current["rows"], golden["rows"]):
        label = f"{scenario_name} x={expected['x']} solver={expected['solver']}"
        assert got["x"] == expected["x"], label
        assert got["solver"] == expected["solver"], label
        assert got["n"] == expected["n"], label
        assert got["feasible"] == expected["feasible"], label
        assert got["assignments"] == expected["assignments"], (
            f"{label}: posting count drifted "
            f"{expected['assignments']} -> {got['assignments']}"
        )
        assert math.isclose(
            got["total_cost"], expected["total_cost"], rel_tol=tolerance
        ), (
            f"{label}: total cost drifted "
            f"{expected['total_cost']} -> {got['total_cost']}"
        )


def test_golden_file_is_committed_and_versioned(goldens):
    assert goldens["format"] == 1
    assert set(goldens["scenarios"]) == set(SCENARIOS)
