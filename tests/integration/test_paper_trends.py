"""Integration tests asserting the paper's qualitative evaluation trends.

These are small-scale versions of the Section 7 conclusions.  Exact numbers
differ from the paper (different substrate, different hardware) but the shape
statements must hold:

* decomposition cost decreases when the reliability threshold decreases,
* decomposition cost decreases (weakly) as the maximum cardinality grows,
* decomposition cost grows with the number of atomic tasks,
* OPQ-Based is the most cost-effective and the Baseline the least,
* OPQ-Based construction work is insensitive to the threshold compared to the
  per-task work of Greedy.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import (
    sweep_hetero_mu,
    sweep_max_cardinality,
    sweep_scale,
    sweep_threshold,
)

CONFIG = ExperimentConfig(
    dataset="jelly",
    n=400,
    solver_options={"baseline": {"chunk_size": 100, "seed": 0}},
)
SMIC_CONFIG = ExperimentConfig(
    dataset="smic",
    n=400,
    solver_options={"baseline": {"chunk_size": 100, "seed": 0}},
)


@pytest.fixture(scope="module")
def threshold_sweep():
    return sweep_threshold(CONFIG, thresholds=(0.87, 0.92, 0.97))


@pytest.fixture(scope="module")
def smic_threshold_sweep():
    return sweep_threshold(SMIC_CONFIG, thresholds=(0.87, 0.97))


class TestFigure6Trends:
    def test_cost_monotone_in_threshold(self, threshold_sweep):
        for solver in ("greedy", "opq"):
            series = dict(threshold_sweep.series(solver))
            assert series[0.87] <= series[0.92] + 1e-9 <= series[0.97] + 2e-9

    def test_opq_most_cost_effective_at_every_threshold(self, threshold_sweep):
        for x in threshold_sweep.x_values:
            rows = {r.solver: r.total_cost for r in threshold_sweep.rows if r.x == x}
            assert rows["opq"] <= rows["greedy"] + 1e-9
            assert rows["opq"] <= rows["baseline"] + 1e-9

    def test_baseline_is_least_effective(self, threshold_sweep):
        for x in threshold_sweep.x_values:
            rows = {r.solver: r.total_cost for r in threshold_sweep.rows if r.x == x}
            assert rows["baseline"] >= rows["opq"]
            assert rows["baseline"] >= rows["greedy"]

    def test_same_trends_on_smic(self, smic_threshold_sweep):
        for x in smic_threshold_sweep.x_values:
            rows = {r.solver: r.total_cost for r in smic_threshold_sweep.rows if r.x == x}
            assert rows["opq"] <= rows["greedy"] * 1.05
            assert rows["opq"] <= rows["baseline"] + 1e-9
        for solver in ("greedy", "opq", "baseline"):
            series = dict(smic_threshold_sweep.series(solver))
            assert series[0.87] <= series[0.97] + 1e-9

    def test_cost_decreases_with_max_cardinality(self):
        sweep = sweep_max_cardinality(CONFIG, cardinalities=(2, 8, 20))
        for solver in ("greedy", "opq"):
            series = dict(sweep.series(solver))
            assert series[20] <= series[8] + 1e-9 <= series[2] + 2e-9

    def test_cost_scales_with_n(self):
        sweep = sweep_scale(CONFIG, n_values=(200, 800))
        for solver in ("greedy", "opq", "baseline"):
            series = dict(sweep.series(solver))
            assert series[800] > series[200]


class TestFigure7Trends:
    def test_cost_increases_with_mu(self):
        sweep = sweep_hetero_mu(CONFIG, mus=(0.87, 0.97))
        for solver in ("greedy", "opq-extended"):
            series = dict(sweep.series(solver))
            assert series[0.97] >= series[0.87] - 1e-9

    def test_heuristics_beat_baseline(self):
        sweep = sweep_hetero_mu(CONFIG, mus=(0.9,))
        rows = {r.solver: r.total_cost for r in sweep.rows}
        assert rows["baseline"] >= rows["opq-extended"] - 1e-9
        assert rows["baseline"] >= rows["greedy"] - 1e-9
