"""Integration tests: calibrate -> decompose -> execute on the simulated crowd.

This is the full SLADE workflow a requester would run:

1. probe the platform to learn the ``(l, r_l, c_l)`` menu,
2. decompose the large-scale task with a solver,
3. post every bin of the plan and aggregate the crowd's answers,
4. check that the achieved reliability is in line with what was planned and
   that batching actually saved money compared to naive single-task posting.
"""

import pytest

from repro.algorithms.greedy import GreedySolver
from repro.algorithms.opq import OPQSolver
from repro.core.problem import SladeProblem
from repro.crowd.calibration import ProbeCalibrator
from repro.crowd.execution import PlanExecutor
from repro.crowd.presets import jelly_platform
from repro.datasets.workloads import make_workload


@pytest.fixture(scope="module")
def calibrated_bins():
    platform = jelly_platform(seed=21)
    calibrator = ProbeCalibrator(
        platform,
        candidate_costs=(0.05, 0.08, 0.10),
        assignments_per_probe=10,
        probes_per_cardinality=3,
        seed=21,
    )
    calibration = calibrator.calibrate(list(range(1, 11)))
    return calibration.bin_set(name="jelly-calibrated")


class TestCalibrateDecomposeExecute:
    @pytest.fixture(scope="class")
    def workflow(self, calibrated_bins):
        task = make_workload(n=150, threshold=0.9, positive_rate=0.5, seed=22)
        problem = SladeProblem(task, calibrated_bins, name="end-to-end")
        plan = OPQSolver().solve(problem).plan
        execution_platform = jelly_platform(seed=23)
        report = PlanExecutor(execution_platform).execute(plan, task)
        return problem, plan, report

    def test_plan_satisfies_planned_reliability(self, workflow):
        problem, plan, _report = workflow
        assert plan.is_feasible(problem.task)

    def test_achieved_detection_rate_near_target(self, workflow):
        # The plan promises 0.9; with ~75 positives the observed detection
        # rate should be at least 0.8 (allowing binomial noise and the gap
        # between calibrated and true worker behaviour).
        _problem, _plan, report = workflow
        assert report.detection_rate >= 0.8

    def test_spend_does_not_exceed_plan(self, workflow):
        _problem, plan, report = workflow
        assert report.realised_spend <= plan.total_cost + 1e-9

    def test_batching_cheaper_than_singleton_posting(self, workflow, calibrated_bins):
        # Posting every atomic task alone (cardinality 1, twice to exceed 0.9)
        # is the naive plan the introduction argues against.
        problem, plan, _report = workflow
        singleton = calibrated_bins[1]
        naive_cost = 2 * singleton.cost * problem.n
        assert plan.total_cost < naive_cost


class TestSolverAgreementOnCalibratedMenu:
    def test_opq_no_worse_than_greedy(self, calibrated_bins):
        problem = SladeProblem.homogeneous(200, 0.92, calibrated_bins)
        opq = OPQSolver().solve(problem).total_cost
        greedy = GreedySolver().solve(problem).total_cost
        assert opq <= greedy + 1e-9

    def test_calibrated_menu_supports_high_thresholds(self, calibrated_bins):
        problem = SladeProblem.homogeneous(40, 0.99, calibrated_bins)
        result = OPQSolver().solve(problem)
        assert result.feasible
