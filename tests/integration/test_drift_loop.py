"""Live-HTTP scenario for the closed calibration loop (the ISSUE 10 gate).

One server, one client, worker accuracy decaying mid-stream:

1. a stream of solves against a calibrated menu fills the cache;
2. ``/v2/feedback`` posts probe outcomes showing the single-task bin's
   accuracy has collapsed well below its calibrated confidence;
3. the server's background sweep detects the drift, recalibrates the menu
   at the next calibration epoch, re-plans the recorded thresholds, swaps
   the active epoch, and issues targeted deletes for the stale entries;
4. the same client, still sending the *original* menu, now receives plans
   computed from the corrected confidences — so the reliability guarantee
   holds against the *true* accuracies;
5. zero request errors anywhere, and ``drift.*`` metrics tell the story.
"""

import asyncio
import threading
import time

import pytest

from repro.service import ServiceConfig
from repro.service.client import SladeHttpClient
from repro.service.transport.server import HttpSladeServer

#: Calibrated menu: the three-task bin claims 0.8 accuracy, and the
#: optimal 0.95 plan on this menu is two three-task bins per task.
BINS = [[1, 0.9, 0.10], [2, 0.85, 0.18], [3, 0.8, 0.24]]
#: What the crowd actually delivers on cardinality 3 after the drift.
TRUE_ACCURACY = 0.5
DECAYED_CARDINALITY = 3
THRESHOLD = 0.95


class DriftServerHandle:
    """An HTTP server with an aggressive drift sweep, in a loop thread."""

    def __init__(self) -> None:
        self._ready = threading.Event()
        self._stop = None
        self._loop = None
        self._error = None
        self.server = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - surfaced on exit
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        config = ServiceConfig(
            drift_window=100,
            drift_min_observations=20,
            drift_tolerance=0.05,
            drift_check_seconds=0.05,
        )
        self.server = HttpSladeServer(config=config)
        await self.server.start("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await self.server.close()

    def __enter__(self) -> "DriftServerHandle":
        self._thread.start()
        assert self._ready.wait(timeout=10), "server failed to start"
        if self._error is not None:
            raise self._error
        return self

    def __exit__(self, *_exc_info) -> None:
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join(timeout=30)
        if self._error is not None:
            raise self._error


def solve_request(request_id: str) -> dict:
    return {
        "kind": "solve_request",
        "version": 1,
        "n": 12,
        "threshold": THRESHOLD,
        "bins": BINS,
        "request_id": request_id,
    }


def wait_for(predicate, timeout: float = 15.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached before timeout")


class TestClosedCalibrationLoop:
    def test_decay_is_detected_revalidated_and_served(self):
        with DriftServerHandle() as handle:
            client = SladeHttpClient(handle.server.base_url)

            # Phase 1: steady-state traffic on the calibrated menu.
            before = [client.solve(solve_request(f"pre-{i}")) for i in range(6)]
            assert all(reply.status == 200 for reply in before)
            assert all(reply.payload["ok"] for reply in before)
            baseline_cost = before[0].payload["total_cost"]
            assert all(
                reply.payload["total_cost"] == pytest.approx(baseline_cost)
                for reply in before
            )

            # Phase 2: probe outcomes reveal the three-task bin decayed
            # to ~0.5 while traffic keeps flowing.
            feedback = {
                "bins": BINS,
                "observations": [
                    [DECAYED_CARDINALITY, index % 10 < int(TRUE_ACCURACY * 10)]
                    for index in range(40)
                ],
            }
            reply = client.feedback(feedback)
            assert reply.status == 200
            assert reply.payload["recorded"] == 40

            # Phase 3: the background sweep recalibrates (no client action).
            metrics = wait_for(
                lambda: (
                    lambda m: m if m.get("drift.recalibrations") else None
                )(client.metrics().payload)
            )
            assert metrics["drift.recalibrations"] >= 1
            assert metrics["drift.invalidated_keys"] >= 1
            assert metrics.get("drift.failed_revalidations", 0) == 0

            # Phase 4: the client still sends the original menu, but plans
            # now price the observed accuracy: reliability holds against the
            # true accuracies, and the true cost of that guarantee shows up.
            after = [client.solve(solve_request(f"post-{i}")) for i in range(6)]
            assert all(reply.status == 200 for reply in after)
            assert all(reply.payload["ok"] for reply in after)
            recalibrated_cost = after[-1].payload["total_cost"]
            assert recalibrated_cost > baseline_cost

            plan = after[-1].solve_response().plan
            reliabilities = plan.reliabilities()
            assert reliabilities, "plan carries no per-task reliabilities"
            # The plan's bins carry the corrected (= observed) confidences,
            # so these reliabilities are evaluated at the true accuracies.
            assert min(reliabilities.values()) >= THRESHOLD - 1e-9
            for assignment in plan:
                if assignment.task_bin.cardinality == DECAYED_CARDINALITY:
                    assert assignment.task_bin.confidence == pytest.approx(
                        TRUE_ACCURACY, abs=0.05
                    )

            # Phase 5: zero request errors end to end, and the loop's
            # telemetry is on /metrics.
            final = client.metrics().payload
            assert final.get("service.failures") in (None, 0)
            assert final.get("http.responses.400") is None
            assert final.get("http.responses.500") is None
            assert final["drift.observations"] == 40
            assert final["drift.monitored_menus"] == 1.0
            assert final["drift.drifted_menus"] == 0.0  # fresh monitor post-swap
            assert final["drift.revalidated_entries"] >= 1
