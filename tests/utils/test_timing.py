"""Tests for the Stopwatch helper."""

import pytest

from repro.utils.timing import Stopwatch, time_callable


class TestStopwatch:
    def test_context_manager_accumulates_time(self):
        watch = Stopwatch()
        with watch:
            sum(range(1000))
        assert watch.elapsed >= 0.0
        assert not watch.running

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()
        watch.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset_zeroes_elapsed(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.reset()
        watch.stop()

    def test_multiple_intervals_accumulate(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first


class TestTimeCallable:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_callable(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0

    def test_kwargs_forwarded(self):
        result, _ = time_callable(lambda *, value: value + 1, value=1)
        assert result == 2
