"""Tests for argument validation helpers."""

import pytest

from repro.utils.validation import (
    require_in_unit_interval,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_probability_open,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(0.5, "x") == 0.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="x"):
            require_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_positive(-1.0, "x")


class TestRequireNonNegative:
    def test_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            require_non_negative(-0.1, "x")


class TestRequireInUnitInterval:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert require_in_unit_interval(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            require_in_unit_interval(value, "x")


class TestRequireProbabilityOpen:
    def test_accepts_zero(self):
        assert require_probability_open(0.0, "p") == 0.0

    def test_rejects_exactly_one(self):
        with pytest.raises(ValueError):
            require_probability_open(1.0, "p")

    def test_accepts_near_one(self):
        assert require_probability_open(0.999, "p") == 0.999


class TestRequireNonEmpty:
    def test_accepts_non_empty(self):
        assert require_non_empty([1], "items") == [1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="items"):
            require_non_empty([], "items")
