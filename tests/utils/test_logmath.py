"""Tests for the log-space reliability arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.utils.logmath import (
    RESIDUAL_EPSILON,
    is_satisfied,
    lcm_of,
    reliability_from_residual,
    residual_from_reliability,
    safe_log1m,
)


class TestSafeLog1m:
    def test_zero_probability_gives_zero_residual(self):
        assert safe_log1m(0.0) == 0.0

    def test_known_value(self):
        assert safe_log1m(0.9) == pytest.approx(-math.log(0.1))

    def test_paper_value_for_threshold_095(self):
        # Example 5 initialises every residual to 2.996 for t = 0.95.
        assert safe_log1m(0.95) == pytest.approx(2.996, abs=1e-3)

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            safe_log1m(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            safe_log1m(-0.1)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            safe_log1m(1.5)


class TestRoundTrip:
    @given(st.floats(min_value=0.0, max_value=0.999999))
    def test_residual_reliability_round_trip(self, probability):
        residual = residual_from_reliability(probability)
        assert reliability_from_residual(residual) == pytest.approx(
            probability, abs=1e-9
        )

    @given(st.floats(min_value=0.0, max_value=20.0))
    def test_reliability_residual_round_trip(self, residual):
        # Above ~20 the reliability is within double-precision distance of 1.0
        # and the inverse transform can no longer recover the residual.
        reliability = reliability_from_residual(residual)
        assert residual_from_reliability(reliability) == pytest.approx(
            residual, rel=1e-6, abs=1e-9
        )

    def test_reliability_from_negative_residual_rejected(self):
        with pytest.raises(ValueError):
            reliability_from_residual(-0.1)

    @given(st.floats(min_value=0.0, max_value=0.999), st.floats(min_value=0.0, max_value=0.999))
    def test_residual_is_additive_over_independent_bins(self, r1, r2):
        # 1 - (1-r1)(1-r2) must equal the reliability of the summed residuals.
        combined = 1.0 - (1.0 - r1) * (1.0 - r2)
        summed = residual_from_reliability(r1) + residual_from_reliability(r2)
        assert reliability_from_residual(summed) == pytest.approx(combined, abs=1e-9)


class TestLcm:
    def test_single_value(self):
        assert lcm_of([4]) == 4

    def test_paper_example_6(self):
        # Comb = {3 x b1, 2 x b2, 1 x b3} has LCM lcm(1, 2, 3) = 6.
        assert lcm_of([1, 2, 3]) == 6

    def test_coprime_values(self):
        assert lcm_of([4, 9]) == 36

    def test_repeated_values(self):
        assert lcm_of([6, 6, 6]) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lcm_of([])

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            lcm_of([2, 0])

    @given(st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=6))
    def test_lcm_is_divisible_by_every_member(self, values):
        result = lcm_of(values)
        assert all(result % value == 0 for value in values)


class TestIsSatisfied:
    def test_zero_is_satisfied(self):
        assert is_satisfied(0.0)

    def test_small_positive_noise_is_satisfied(self):
        assert is_satisfied(RESIDUAL_EPSILON / 2)

    def test_clear_shortfall_is_not_satisfied(self):
        assert not is_satisfied(0.5)
