"""Tests for random number generator plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_child


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123).random(5)
        b = ensure_rng(123).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(7)
        assert ensure_rng(rng) is rng

    def test_numpy_integer_seed_accepted(self):
        seed = np.int64(5)
        assert isinstance(ensure_rng(seed), np.random.Generator)

    def test_invalid_source_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnChild:
    def test_child_is_independent_object(self):
        parent = ensure_rng(0)
        child = spawn_child(parent)
        assert child is not parent

    def test_children_are_deterministic_given_parent_state(self):
        a = spawn_child(ensure_rng(0)).random(3)
        b = spawn_child(ensure_rng(0)).random(3)
        assert np.allclose(a, b)
