"""Tests for the reward-sensitive worker arrival model."""

import pytest

from repro.crowd.arrival import RewardSensitiveArrivalModel


class TestRewardSensitiveArrivalModel:
    def test_rate_grows_with_reward(self):
        model = RewardSensitiveArrivalModel()
        assert model.arrival_rate(0.10) > model.arrival_rate(0.05)

    def test_rate_at_reference_cost(self):
        model = RewardSensitiveArrivalModel(base_rate_per_minute=0.4, reference_cost=0.05)
        assert model.arrival_rate(0.05) == pytest.approx(0.4)

    def test_minutes_per_bin_scales_with_cardinality(self):
        model = RewardSensitiveArrivalModel(minutes_per_question=0.5)
        assert model.minutes_per_bin(10) == pytest.approx(5.0)

    def test_completion_time_decreases_with_reward(self):
        model = RewardSensitiveArrivalModel()
        cheap = model.expected_completion_minutes(0.05, 10, assignments=10)
        pricey = model.expected_completion_minutes(0.20, 10, assignments=10)
        assert pricey < cheap

    def test_completion_time_increases_with_assignments(self):
        model = RewardSensitiveArrivalModel()
        one = model.expected_completion_minutes(0.1, 5, assignments=1)
        ten = model.expected_completion_minutes(0.1, 5, assignments=10)
        assert ten > one

    def test_jelly_like_in_time_pattern(self):
        # With the Jelly preset parameters, $0.05 supports only small bins
        # within 40 minutes while $0.10 supports cardinality 30 (Figure 3a).
        model = RewardSensitiveArrivalModel(
            base_rate_per_minute=0.39,
            reference_cost=0.05,
            elasticity=1.4,
            minutes_per_question=1.0,
        )
        assert model.completes_in_time(0.05, 14, 10, 40.0)
        assert not model.completes_in_time(0.05, 22, 10, 40.0)
        assert model.completes_in_time(0.10, 30, 10, 40.0)

    def test_invalid_cardinality_rejected(self):
        with pytest.raises(ValueError):
            RewardSensitiveArrivalModel().minutes_per_bin(0)

    def test_invalid_assignments_rejected(self):
        with pytest.raises(ValueError):
            RewardSensitiveArrivalModel().expected_completion_minutes(0.1, 5, assignments=0)

    def test_invalid_cost_rejected(self):
        with pytest.raises(ValueError):
            RewardSensitiveArrivalModel().arrival_rate(0.0)
